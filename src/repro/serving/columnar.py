"""Columnar (struct-of-arrays) fleet engine.

The event-at-a-time simulator in :mod:`repro.serving.fleet` is the
*oracle*: one Python object per queued request, one heap entry per
arrival, a linear scan over servers per dispatch.  Correct, legible —
and ~45 s per million requests, which makes the paper's fleet-scale
questions (a million-user day, ServeGen-style trace replay) painful.
This module is the same simulation re-laid-out for speed:

* **Struct-of-arrays state.**  Requests live as four aligned columns
  (:class:`repro.serving.workload.RequestBatch`); queue entries,
  servers and breakers are parallel Python lists / bytearrays indexed
  by integer id, not heap-allocated objects.  numpy handles ingestion
  (stable argsort of arrivals, model interning) and report assembly
  (stable sorts, bincounts); the decision loop itself runs on scalar
  list indexing, which beats numpy scalar access for this access
  pattern.
* **No heap traffic for arrivals.**  Arrivals are a pre-sorted column
  merged against the (much smaller) runtime event heap, removing the
  dominant ``heappush``/``heappop`` cost of the oracle.
* **Epoch-free exactness.**  Control decisions (admission control,
  circuit breakers, brownout, autoscaler ticks) fire at exactly the
  same simulated instants as in the oracle — the merge preserves the
  oracle's global ``(time, seq)`` event order, so "epoch chunking" here
  means *batched bookkeeping between decision points*, never deferred
  decisions (see ``docs/FLEET_CORE.md``).
* **Memoized latency curves, indexed free-server heaps, maintained
  sorted hedge samples** — pure-speed replacements for the oracle's
  per-event recomputation, each preserving float-op order bit-exactly.

The contract (pinned by ``tests/serving/test_engine_equivalence.py``):
:func:`simulate_fleet_columnar` produces a report whose
:meth:`ColumnarFleetReport.to_report` compares **equal** — every float
bit-identical — to the oracle's
:class:`repro.serving.fleet.FleetReport` for the same inputs.  One
assumption the oracle does not make: batch-latency functions must be
*pure* (the engine caches ``fn(batch_size)`` per pool/model/rung).

All times are **seconds** of simulation time.  Engine compatibility of
everything in this module: columnar-only (the oracle neither produces
nor consumes these types).
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry

from repro.serving.faults import (
    FAULT_FREE,
    NO_RETRIES,
    FaultSchedule,
    RecoveryPlan,
    RetryPolicy,
)
from repro.serving.fleet import (
    AutoscalerConfig,
    FailedRequest,
    FleetCompletion,
    FleetReport,
    PoolSpec,
    PoolStats,
    _validate_pools,
)
from repro.serving.policies import (
    FifoPolicy,
    ModelAffinityPolicy,
    ShortestJobFirst,
)
from repro.serving.resilience import (
    RESILIENCE_OFF,
    ResilienceConfig,
    ResilienceStats,
    ShedRequest,
)
from repro.serving.workload import Request, RequestBatch

# Terminal-state reason codes, interned once; columnar reports store
# the small ints and materialize the strings on demand.
REASON_LABELS = (
    "unroutable", "crash", "timeout",
    "shed-rate", "shed-depth", "shed-wait",
)
_R_UNROUTABLE, _R_CRASH, _R_TIMEOUT = 0, 1, 2
_R_SHED_RATE, _R_SHED_DEPTH, _R_SHED_WAIT = 3, 4, 5

# Event kinds (arrivals never enter the heap — they are a pre-sorted
# column merged against it).
_RETRY, _FREE, _CRASH, _RECOVER, _TIMEOUT = 0, 1, 2, 3, 4
_ACTIVATE, _TICK, _HEDGE, _PROBE, _BROWNOUT = 5, 6, 7, 8, 9
_CORDON, _UNCORDON, _MARKER = 10, 11, 12


@dataclass(frozen=True, eq=False)
class ColumnarFleetReport:
    """Fleet-simulation output as aligned numpy columns.

    The columnar twin of :class:`repro.serving.fleet.FleetReport`:
    completions / failures / sheds are parallel arrays (sorted by
    finish / failure / shed time with stable tie-break, exactly like
    the oracle's tuples), and :meth:`to_report` materializes the
    object form bit-identically.  :func:`repro.serving.slo.slo_report`
    consumes this type directly through its vectorized path — for
    large runs, never materialize just to compute SLOs.

    All times are seconds.  ``comp_req``/``fail_req``/``shed_req``
    index the request table columns (``req_*``); ``*_pool`` columns
    hold indices into ``pool_names`` (−1 encodes the oracle's ``""``
    pool on unroutable failures and rate-limit sheds); ``fail_reason``
    / ``shed_reason`` hold indices into :data:`REASON_LABELS`.
    """

    models: tuple[str, ...]
    pool_names: tuple[str, ...]
    req_arrival_s: np.ndarray
    req_service_s: np.ndarray
    req_model_ids: np.ndarray
    req_request_ids: np.ndarray
    comp_req: np.ndarray
    comp_pool: np.ndarray
    comp_server: np.ndarray
    comp_queued_since_s: np.ndarray
    comp_start_s: np.ndarray
    comp_finish_s: np.ndarray
    comp_attempts: np.ndarray
    comp_hedged: np.ndarray
    comp_rung: np.ndarray
    comp_quality: np.ndarray
    fail_req: np.ndarray
    fail_pool: np.ndarray
    fail_attempts: np.ndarray
    fail_reason: np.ndarray
    fail_at_s: np.ndarray
    shed_req: np.ndarray
    shed_pool: np.ndarray
    shed_attempts: np.ndarray
    shed_reason: np.ndarray
    shed_at_s: np.ndarray
    pools: tuple[PoolStats, ...]
    makespan_s: float
    offered: int
    resilience: ResilienceStats

    def __len__(self) -> int:
        return int(len(self.comp_req))

    @property
    def completed_count(self) -> int:
        """Number of successfully served requests."""
        return int(len(self.comp_req))

    @property
    def completion_rate(self) -> float:
        """Fraction of offered requests that eventually completed."""
        if self.offered == 0:
            return 0.0
        return len(self.comp_req) / self.offered

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected by admission."""
        if self.offered == 0:
            return 0.0
        return len(self.shed_req) / self.offered

    @property
    def latency_s(self) -> np.ndarray:
        """Client-observed latency per completion (finish − arrival)."""
        return self.comp_finish_s - self.req_arrival_s[self.comp_req]

    @property
    def service_s(self) -> np.ndarray:
        """Final-attempt GPU time per completion (finish − start)."""
        return self.comp_finish_s - self.comp_start_s

    @property
    def queueing_s(self) -> np.ndarray:
        """Per-completion non-service latency (latency − service)."""
        return self.latency_s - self.service_s

    def _request(self, index: int) -> Request:
        return Request(
            request_id=int(self.req_request_ids[index]),
            arrival_s=float(self.req_arrival_s[index]),
            model=self.models[int(self.req_model_ids[index])],
            service_s=float(self.req_service_s[index]),
        )

    @cached_property
    def _pools_by_name(self) -> Mapping[str, PoolStats]:
        return {stats.name: stats for stats in self.pools}

    def pool_stats(self, name: str) -> PoolStats:
        """Stats for one pool by name (same lookup as FleetReport)."""
        try:
            return self._pools_by_name[name]
        except KeyError:
            known = ", ".join(stats.name for stats in self.pools)
            raise ValueError(
                f"unknown pool {name!r}; known pools: {known}"
            ) from None

    def to_report(self) -> FleetReport:
        """Materialize the bit-identical object-form ``FleetReport``.

        Allocates one ``Request``/``FleetCompletion`` per record — fine
        for inspection and small runs, deliberately avoided by the
        vectorized SLO path for million-request outputs.
        """
        pool_of = self.pool_names
        completed = tuple(
            FleetCompletion(
                request=self._request(req),
                pool=pool_of[pool],
                server=server,
                queued_since_s=queued,
                start_s=start,
                finish_s=finish,
                attempts=attempts,
                hedged=hedged,
                rung=rung,
                quality=quality,
            )
            for req, pool, server, queued, start, finish, attempts,
            hedged, rung, quality in zip(
                self.comp_req.tolist(), self.comp_pool.tolist(),
                self.comp_server.tolist(),
                self.comp_queued_since_s.tolist(),
                self.comp_start_s.tolist(), self.comp_finish_s.tolist(),
                self.comp_attempts.tolist(), self.comp_hedged.tolist(),
                self.comp_rung.tolist(), self.comp_quality.tolist(),
            )
        )
        failed = tuple(
            FailedRequest(
                request=self._request(req),
                pool=pool_of[pool] if pool >= 0 else "",
                attempts=attempts,
                reason=REASON_LABELS[reason],
                failed_at_s=at,
            )
            for req, pool, attempts, reason, at in zip(
                self.fail_req.tolist(), self.fail_pool.tolist(),
                self.fail_attempts.tolist(), self.fail_reason.tolist(),
                self.fail_at_s.tolist(),
            )
        )
        shed = tuple(
            ShedRequest(
                request=self._request(req),
                pool=pool_of[pool] if pool >= 0 else "",
                attempts=attempts,
                reason=REASON_LABELS[reason],
                shed_at_s=at,
            )
            for req, pool, attempts, reason, at in zip(
                self.shed_req.tolist(), self.shed_pool.tolist(),
                self.shed_attempts.tolist(), self.shed_reason.tolist(),
                self.shed_at_s.tolist(),
            )
        )
        return FleetReport(
            completed=completed,
            failed=failed,
            pools=self.pools,
            makespan_s=self.makespan_s,
            offered=self.offered,
            shed=shed,
            resilience=self.resilience,
        )


def _request_columns(
    requests: Sequence[Request] | RequestBatch,
) -> RequestBatch:
    """Normalize any request representation to columns.

    Accepts a ``Sequence[Request]``, a :class:`RequestBatch`, or a
    :class:`repro.serving.traffic.TrafficTrace` (whose ``batch`` is
    already columnar — a zero-copy handoff).
    """
    from repro.serving.traffic import TrafficTrace

    if isinstance(requests, TrafficTrace):
        return requests.batch
    if isinstance(requests, RequestBatch):
        return requests
    return RequestBatch.from_requests(requests)


class _QueueProxy:
    """Read-only ``QueueView`` adapter for third-party policies.

    Built only on the generic-policy path; the built-in policies run
    on dedicated index loops and never materialize these.
    """

    __slots__ = ("request", "queued_since_s")

    def __init__(self, request: Request, queued_since_s: float):
        self.request = request
        self.queued_since_s = queued_since_s


class _ColPool:
    """Mutable per-pool engine state (columnar counterpart of _Pool)."""

    __slots__ = (
        "spec", "index", "queue", "sid0", "nserv", "last_scale_at",
        "peak_servers", "pending_activations", "rung",
        "last_rung_change", "active_count", "busy_count", "free_heap",
        "policy_mode", "spec_fns", "rung_fns", "max_batch",
    )

    def __init__(self, spec: PoolSpec, index: int, sid0: int):
        self.spec = spec
        self.index = index
        self.queue: list[int] = []
        self.sid0 = sid0
        self.nserv = spec.servers + spec.standby_servers
        self.last_scale_at = float("-inf")
        self.peak_servers = spec.servers
        self.pending_activations = 0
        self.rung = 0
        self.last_rung_change = float("-inf")
        self.active_count = spec.servers
        self.busy_count = 0
        self.free_heap: list[int] = []
        policy = spec.policy
        if type(policy) is FifoPolicy:
            self.policy_mode = 0
        elif type(policy) is ShortestJobFirst:
            self.policy_mode = 1
        elif type(policy) is ModelAffinityPolicy:
            self.policy_mode = 2
        else:
            self.policy_mode = 3
        self.spec_fns: dict[int, object] = {}
        self.rung_fns: list[dict[int, object]] = []
        self.max_batch = spec.max_batch


class _ColumnarState:
    """The merged arrival/event loop behind the columnar engine.

    Mirrors :class:`repro.serving.fleet._FleetState` handler for
    handler; every divergence is a data-structure substitution with a
    proof obligation of bit-exactness (catalogued in
    ``docs/FLEET_CORE.md``).
    """

    def __init__(
        self,
        pools: Sequence[PoolSpec],
        retry: RetryPolicy,
        faults: FaultSchedule,
        autoscaler: AutoscalerConfig | None,
        resilience: ResilienceConfig,
        batch: RequestBatch,
        telemetry: "Telemetry | None" = None,
        plan: RecoveryPlan | None = None,
    ):
        self.tel = telemetry
        self.retry = retry
        self.autoscaler = autoscaler
        self.res = resilience
        self.faults = faults
        self.plan = plan
        self.batch = batch
        self.models = batch.models
        # Request table as plain lists: the hot loop reads scalars.
        self.r_arrival = batch.arrival_s.tolist()
        self.r_service = batch.service_s.tolist()
        self.r_model = batch.model_ids.tolist()
        self.r_rid = batch.request_ids.tolist()

        model_index = {name: mid for mid, name in enumerate(self.models)}
        self.pools: list[_ColPool] = []
        self.pool_names = tuple(spec.name for spec in pools)
        nserv_total = sum(
            spec.servers + spec.standby_servers for spec in pools
        )
        # Server SoA (indexed by fleet-wide sid, pools contiguous).
        self.s_pool = [0] * nserv_total
        self.s_alive = bytearray([1]) * nserv_total
        self.s_active = bytearray(nserv_total)
        self.s_activated_at: list[float | None] = [None] * nserv_total
        self.s_active_s = [0.0] * nserv_total
        self.s_down_since: list[float | None] = [None] * nserv_total
        self.s_down_s = [0.0] * nserv_total
        self.s_busy_s = [0.0] * nserv_total
        self.s_wasted_s = [0.0] * nserv_total
        self.s_last_model = [-1] * nserv_total
        self.s_generation = [0] * nserv_total
        self.s_batch: list[list[int] | None] = [None] * nserv_total
        self.s_batch_start = [0.0] * nserv_total
        self.s_batch_model = [-1] * nserv_total
        self.s_swaps = [0] * nserv_total
        self.s_batch_nominal = [0.0] * nserv_total
        self.s_batch_rung = [0] * nserv_total
        use_breaker = resilience.breaker is not None
        self.use_breaker = use_breaker
        self.b_state = bytearray(nserv_total)  # 0 closed 1 open 2 half
        self.b_failures: list[list[float]] = [
            [] for _ in range(nserv_total)
        ] if use_breaker else []
        self.b_opened_at = [0.0] * nserv_total
        self.b_probe = bytearray(nserv_total)
        self.b_opens = [0] * nserv_total
        self.b_open_s = [0.0] * nserv_total

        sid = 0
        for pidx, spec in enumerate(pools):
            pool = _ColPool(spec, pidx, sid)
            for model, fn in spec.latency_fns.items():
                mid = model_index.get(model)
                if mid is not None:
                    pool.spec_fns[mid] = fn
            if resilience.brownout is not None:
                for rung in resilience.brownout.rungs:
                    pool.rung_fns.append({
                        model_index[model]: fn
                        for model, fn in rung.latency_fns.items()
                        if model in model_index
                    })
            for local in range(pool.nserv):
                self.s_pool[sid] = pidx
                if local < spec.servers:
                    self.s_active[sid] = 1
                    self.s_activated_at[sid] = 0.0
                    pool.free_heap.append(sid)
                sid += 1
            heapq.heapify(pool.free_heap)
            self.pools.append(pool)
        self.nserv_total = nserv_total

        # Routing: eligible pools per model id, pool-declaration order.
        self.route_pools: list[list[_ColPool]] = [
            [
                pool for pool in self.pools
                if mid in pool.spec_fns
            ]
            for mid in range(len(self.models))
        ]

        # Stragglers split per sid, preserving global schedule order so
        # "first matching window" scans agree with the oracle.
        self.straggler_by_sid: dict[int, list[tuple[float, float, float]]]
        self.straggler_by_sid = {}
        for window in faults.stragglers:
            self.straggler_by_sid.setdefault(window.server, []).append(
                (window.at_s, window.until_s, window.slowdown)
            )
        # Chaos-off fast path: skip the per-dispatch window lookup.
        self.has_stragglers = bool(self.straggler_by_sid)

        self.heap: list[tuple[float, int, int, object]] = []
        self.seq = 0
        self.latency_memo: dict[tuple[int, int, int, int], float] = {}
        self.timeout_s = retry.timeout_s

        # Entry SoA (grows; hedge copies append like arrivals).
        self.e_req: list[int] = []
        self.e_attempts: list[int] = []
        self.e_queued_since: list[float] = []
        self.e_in_queue = bytearray()
        self.e_token: list[int] = []
        self.e_pool: list[int] = []
        self.e_twin: list[int] = []
        self.e_is_hedge = bytearray()
        self.e_cancelled = bytearray()
        self.e_done = bytearray()

        # Terminal-record buffers (append order == oracle append order).
        self.c_req: list[int] = []
        self.c_pool: list[int] = []
        self.c_server: list[int] = []
        self.c_queued_since: list[float] = []
        self.c_start: list[float] = []
        self.c_finish: list[float] = []
        self.c_attempts: list[int] = []
        self.c_hedged = bytearray()
        self.c_rung: list[int] = []
        self.f_req: list[int] = []
        self.f_pool: list[int] = []
        self.f_attempts: list[int] = []
        self.f_reason: list[int] = []
        self.f_at: list[float] = []
        self.sh_req: list[int] = []
        self.sh_pool: list[int] = []
        self.sh_attempts: list[int] = []
        self.sh_reason: list[int] = []
        self.sh_at: list[float] = []

        self.last_arrival = 0.0
        admission = resilience.admission
        self.bucket_tokens = (
            admission.burst if admission is not None else 0.0
        )
        self.bucket_last = 0.0
        # Hedging: per-model latency samples kept *sorted* (insort) so
        # the running quantile never re-sorts a growing list.
        self.samples_sorted: list[list[float]] = [
            [] for _ in self.models
        ]
        self.hedges_launched = 0
        self.hedge_wins = 0
        self.hedge_wasted_s = 0.0
        ladder = resilience.brownout
        self.rung_completions = [0] * (
            1 + (len(ladder.rungs) if ladder is not None else 0)
        )
        self.rung_quality = (1.0,) + tuple(
            rung.quality for rung in ladder.rungs
        ) if ladder is not None else (1.0,)
        self.rung_changes = 0

    # -- plumbing ------------------------------------------------------

    def _push(self, time: float, kind: int, payload: object) -> None:
        self.seq += 1
        heapq.heappush(self.heap, (time, self.seq, kind, payload))

    def _new_entry(
        self, ridx: int, attempts: int, queued_since: float
    ) -> int:
        eid = len(self.e_req)
        self.e_req.append(ridx)
        self.e_attempts.append(attempts)
        self.e_queued_since.append(queued_since)
        self.e_in_queue.append(0)
        self.e_token.append(0)
        self.e_pool.append(-1)
        self.e_twin.append(-1)
        self.e_is_hedge.append(0)
        self.e_cancelled.append(0)
        self.e_done.append(0)
        return eid

    def _sid_free(self, sid: int) -> bool:
        if not (
            self.s_alive[sid] and self.s_active[sid]
            and self.s_batch[sid] is None
        ):
            return False
        if not self.use_breaker:
            return True
        state = self.b_state[sid]
        if state == 0:
            return True
        if state == 2:
            return not self.b_probe[sid]
        return False

    def _pop_free(self, pool: _ColPool) -> int | None:
        heap = pool.free_heap
        while heap:
            sid = heapq.heappop(heap)
            if self._sid_free(sid):
                return sid
        return None

    def _mark_maybe_free(self, sid: int) -> None:
        heapq.heappush(self.pools[self.s_pool[sid]].free_heap, sid)

    # -- run loop ------------------------------------------------------

    def run(self) -> ColumnarFleetReport:
        """Merge the arrival column with the event heap to completion."""
        n = len(self.r_arrival)
        offered = n
        if n:
            order = np.argsort(
                self.batch.arrival_s, kind="stable"
            )
            arr_times = self.batch.arrival_s[order].tolist()
            order_list = order.tolist()
            self.last_arrival = arr_times[-1]
        else:
            arr_times = []
            order_list = []
        # The oracle pushes every arrival first, consuming seqs 1..n in
        # input order; replicate the counter without the pushes.
        self.seq = n
        for crash in self.faults.crashes:
            if crash.server < self.nserv_total:
                self._push(
                    crash.at_s, _CRASH, (crash.server, crash.recover_s)
                )
        # Plan events consume seqs at the oracle's exact positions:
        # after crashes, before the autoscaler/brownout ticks.
        if self.plan is not None:
            for action in self.plan.actions:
                if action.server < self.nserv_total:
                    self._push(
                        action.at_s,
                        _CORDON if action.kind == "cordon"
                        else _UNCORDON,
                        action.server,
                    )
            for marker in self.plan.markers:
                self._push(marker.at_s, _MARKER, marker)
        if self.autoscaler is not None:
            self._push(self.autoscaler.check_interval_s, _TICK, None)
        if self.res.brownout is not None:
            self._push(
                self.res.brownout.check_interval_s, _BROWNOUT, None
            )
        tel = self.tel
        if tel is not None:
            tel.begin(
                self.pool_names, self.s_pool, self._sample_gauges
            )

        heap = self.heap
        handle = self._handle
        ai = 0
        pop = heapq.heappop
        while True:
            if ai < n:
                at = arr_times[ai]
                if heap:
                    head = heap[0]
                    ht = head[0]
                    if ht < at or (
                        ht == at and head[1] < order_list[ai] + 1
                    ):
                        now, _, kind, payload = pop(heap)
                        if tel is not None:
                            tel.advance(now)
                        handle(kind, now, payload)
                        continue
                ridx = order_list[ai]
                ai += 1
                if tel is not None:
                    tel.advance(at)
                self._on_arrival(at, ridx)
            elif heap:
                now, _, kind, payload = pop(heap)
                if tel is not None:
                    tel.advance(now)
                handle(kind, now, payload)
            else:
                break
        return self._build_report(offered)

    def _sample_gauges(self) -> list[tuple]:
        """One gauge tuple per pool, in ``POOL_GAUGES`` order."""
        rows = []
        for pool in self.pools:
            open_breakers = 0
            if self.use_breaker:
                b_state = self.b_state
                open_breakers = sum(
                    1 for sid in range(
                        pool.sid0, pool.sid0 + pool.nserv
                    )
                    if b_state[sid] == 1
                )
            rows.append((
                len(pool.queue),
                pool.busy_count,
                pool.active_count,
                pool.rung,
                open_breakers,
            ))
        return rows

    def _handle(self, kind: int, now: float, payload: object) -> None:
        if kind == _FREE:
            self._on_free(now, payload)
        elif kind == _TIMEOUT:
            self._on_timeout(now, payload)
        elif kind == _RETRY:
            self._on_retry(now, payload)
        elif kind == _HEDGE:
            self._on_hedge(now, payload)
        elif kind == _CRASH:
            self._on_crash(now, payload)
        elif kind == _RECOVER:
            self._on_recover(now, payload)
        elif kind == _TICK:
            self._on_tick(now)
        elif kind == _BROWNOUT:
            self._on_brownout(now)
        elif kind == _ACTIVATE:
            self._on_activate(now, payload)
        elif kind == _PROBE:
            self._on_probe(now, payload)
        elif kind == _CORDON:
            self._on_cordon(now, payload)
        elif kind == _UNCORDON:
            self._on_uncordon(now, payload)
        else:
            self._on_marker(now, payload)

    # -- event handlers (oracle handlers, SoA state) -------------------

    def _on_arrival(self, now: float, ridx: int) -> None:
        if self.tel is not None:
            self.tel.record_submit(
                self.r_rid[ridx], self.models[self.r_model[ridx]],
                now,
            )
        eid = self._new_entry(ridx, attempts=1, queued_since=now)
        self._enqueue(now, eid)
        if self.res.hedge is not None and not self.e_done[eid]:
            delay = self._hedge_delay(self.r_model[ridx])
            if delay is not None:
                self._push(now + delay, _HEDGE, eid)

    def _on_retry(self, now: float, eid: int) -> None:
        if self.e_cancelled[eid] or self.e_done[eid]:
            return
        self.e_queued_since[eid] = now
        self._enqueue(now, eid)

    def _on_free(self, now: float, payload) -> None:
        sid, generation = payload
        if (
            self.s_generation[sid] != generation
            or self.s_batch[sid] is None
        ):
            return  # aborted by a crash
        batch = self.s_batch[sid]
        start = self.s_batch_start[sid]
        duration = now - start
        self.s_busy_s[sid] += duration
        rung = self.s_batch_rung[sid]
        pool = self.pools[self.s_pool[sid]]
        hedging = self.res.hedge is not None
        for eid in batch:
            if self.e_cancelled[eid]:
                self.hedge_wasted_s += duration / len(batch)
                continue
            self.e_done[eid] = 1
            self.rung_completions[rung] += 1
            twin = self.e_twin[eid]
            if twin != -1 and self.e_is_hedge[eid]:
                self.hedge_wins += 1
            ridx = self.e_req[eid]
            if self.tel is not None:
                self.tel.record_complete(
                    self.r_rid[ridx], now, pool.spec.name, sid,
                    self.e_attempts[eid], rung,
                    hedged=twin != -1,
                    win=self.e_is_hedge[eid],
                )
            self.c_req.append(ridx)
            self.c_pool.append(pool.index)
            self.c_server.append(sid)
            self.c_queued_since.append(self.e_queued_since[eid])
            self.c_start.append(start)
            self.c_finish.append(now)
            self.c_attempts.append(self.e_attempts[eid])
            self.c_hedged.append(1 if twin != -1 else 0)
            self.c_rung.append(rung)
            if twin != -1:
                self._cancel(twin, now)
            if hedging:
                insort(
                    self.samples_sorted[self.r_model[ridx]],
                    now - self.r_arrival[ridx],
                )
        if self.use_breaker:
            self._observe_batch(sid, now, duration)
        self.s_last_model[sid] = self.s_batch_model[sid]
        self.s_batch[sid] = None
        pool.busy_count -= 1
        heapq.heappush(pool.free_heap, sid)
        self._dispatch(pool, now)

    def _on_crash(self, now: float, payload) -> None:
        sid, recover_s = payload
        if not self.s_alive[sid] or not self.s_active[sid]:
            return
        self.s_alive[sid] = 0
        self.s_down_since[sid] = now
        self.s_generation[sid] += 1
        batch = self.s_batch[sid]
        pool = self.pools[self.s_pool[sid]]
        if self.tel is not None:
            self.tel.record_server(
                now, "server_crash", sid, pool.spec.name
            )
        if batch is not None:
            self.s_wasted_s[sid] += now - self.s_batch_start[sid]
            for eid in batch:
                if self.e_cancelled[eid]:
                    continue
                self._retry_or_fail(
                    now, eid, reason=_R_CRASH, pool=pool.index
                )
            self.s_batch[sid] = None
            pool.busy_count -= 1
        if self.use_breaker:
            self._breaker_failure(sid, now)
        self._push(recover_s, _RECOVER, sid)

    def _on_recover(self, now: float, sid: int) -> None:
        if self.s_alive[sid]:
            return
        self.s_alive[sid] = 1
        if self.tel is not None:
            self.tel.record_server(
                now, "server_recover", sid,
                self.pool_names[self.s_pool[sid]],
            )
        if self.s_down_since[sid] is not None:
            self.s_down_s[sid] += now - self.s_down_since[sid]
            self.s_down_since[sid] = None
        self._mark_maybe_free(sid)
        self._dispatch(self.pools[self.s_pool[sid]], now)

    def _on_timeout(self, now: float, payload) -> None:
        eid, pidx, token = payload
        if not self.e_in_queue[eid] or self.e_token[eid] != token:
            return
        self.pools[pidx].queue.remove(eid)
        self.e_in_queue[eid] = 0
        self._retry_or_fail(now, eid, reason=_R_TIMEOUT, pool=pidx)

    def _on_activate(self, now: float, sid: int) -> None:
        self.s_active[sid] = 1
        self.s_activated_at[sid] = now
        pool = self.pools[self.s_pool[sid]]
        if self.tel is not None:
            self.tel.record_scale(
                now, "server_activate", pool.spec.name, sid
            )
        pool.pending_activations -= 1
        pool.active_count += 1
        if pool.active_count > pool.peak_servers:
            pool.peak_servers = pool.active_count
        self._mark_maybe_free(sid)
        self._dispatch(pool, now)

    def _on_tick(self, now: float) -> None:
        config = self.autoscaler
        for pool in self.pools:
            if now - pool.last_scale_at < config.cooldown_s:
                continue
            backlog = len(pool.queue) / max(1, pool.active_count)
            scalable = pool.active_count + pool.pending_activations
            if (
                backlog >= config.scale_up_backlog
                and scalable < pool.nserv
            ):
                standby = next(
                    sid for sid in range(
                        pool.sid0, pool.sid0 + pool.nserv
                    )
                    if not self.s_active[sid]
                )
                pool.pending_activations += 1
                pool.last_scale_at = now
                if self.tel is not None:
                    self.tel.record_scale(
                        now, "scale_up", pool.spec.name, standby
                    )
                self._push(now + config.startup_s, _ACTIVATE, standby)
            elif (
                backlog <= config.scale_down_backlog
                and pool.active_count > pool.spec.min_servers
            ):
                idle = next(
                    (
                        sid for sid in range(
                            pool.sid0 + pool.nserv - 1,
                            pool.sid0 - 1, -1,
                        )
                        if self._sid_free(sid)
                    ),
                    None,
                )
                if idle is not None:
                    self.s_active[idle] = 0
                    pool.active_count -= 1
                    if self.tel is not None:
                        self.tel.record_scale(
                            now, "scale_down", pool.spec.name, idle
                        )
                    if self.s_activated_at[idle] is not None:
                        self.s_active_s[idle] += (
                            now - self.s_activated_at[idle]
                        )
                        self.s_activated_at[idle] = None
                    pool.last_scale_at = now
        pending = (
            any(pool.queue for pool in self.pools)
            or any(pool.busy_count for pool in self.pools)
            or any(pool.pending_activations for pool in self.pools)
            or now < self.last_arrival
        )
        if pending:
            self._push(now + config.check_interval_s, _TICK, None)

    def _on_cordon(self, now: float, sid: int) -> None:
        if not self.s_active[sid]:
            return  # already cordoned / never promoted
        self.s_active[sid] = 0
        pool = self.pools[self.s_pool[sid]]
        pool.active_count -= 1
        if self.tel is not None:
            self.tel.record_server(
                now, "server_cordon", sid, pool.spec.name
            )
        if self.s_activated_at[sid] is not None:
            self.s_active_s[sid] += now - self.s_activated_at[sid]
            self.s_activated_at[sid] = None

    def _on_uncordon(self, now: float, sid: int) -> None:
        if self.s_active[sid]:
            return  # promotion raced an autoscaler activate
        self.s_active[sid] = 1
        self.s_activated_at[sid] = now
        pool = self.pools[self.s_pool[sid]]
        pool.active_count += 1
        if self.tel is not None:
            self.tel.record_server(
                now, "server_uncordon", sid, pool.spec.name
            )
        if pool.active_count > pool.peak_servers:
            pool.peak_servers = pool.active_count
        self._mark_maybe_free(sid)
        self._dispatch(pool, now)

    def _on_marker(self, now: float, marker) -> None:
        # Observational only — state is never read or written here.
        if self.tel is not None:
            self.tel.record_domain(
                now, marker.kind, marker.domain, marker.event
            )

    def _on_hedge(self, now: float, eid: int) -> None:
        if (
            self.e_done[eid] or self.e_cancelled[eid]
            or self.e_twin[eid] != -1
        ):
            return
        pool = self._route_hedge(eid)
        if pool is None:
            return
        copy = self._new_entry(
            self.e_req[eid], attempts=self.e_attempts[eid],
            queued_since=now,
        )
        self.e_is_hedge[copy] = 1
        self.e_twin[copy] = eid
        self.e_twin[eid] = copy
        self.hedges_launched += 1
        if self.tel is not None:
            self.tel.record_hedge(
                self.r_rid[self.e_req[eid]], now, pool.spec.name
            )
        self._place(now, copy, pool)

    def _on_probe(self, now: float, sid: int) -> None:
        if self.b_state[sid] != 1:
            return
        if now < (
            self.b_opened_at[sid] + self.res.breaker.cooldown_s - 1e-12
        ):
            return
        self.b_state[sid] = 2
        self.b_probe[sid] = 0
        self.b_open_s[sid] += now - self.b_opened_at[sid]
        if self.tel is not None:
            self.tel.record_breaker(
                now, sid, self.pool_names[self.s_pool[sid]],
                "half_open",
            )
        self._mark_maybe_free(sid)
        self._dispatch(self.pools[self.s_pool[sid]], now)

    def _on_brownout(self, now: float) -> None:
        config = self.res.brownout
        for pool in self.pools:
            backlog = len(pool.queue) / max(1, pool.active_count)
            if now - pool.last_rung_change < config.dwell_s:
                continue
            if (
                backlog >= config.step_down_backlog
                and pool.rung < len(config.rungs)
            ):
                pool.rung += 1
                pool.last_rung_change = now
                self.rung_changes += 1
                if self.tel is not None:
                    self.tel.record_rung(
                        now, pool.spec.name, pool.rung, +1
                    )
            elif backlog <= config.step_up_backlog and pool.rung > 0:
                pool.rung -= 1
                pool.last_rung_change = now
                self.rung_changes += 1
                if self.tel is not None:
                    self.tel.record_rung(
                        now, pool.spec.name, pool.rung, -1
                    )
        pending = (
            any(pool.queue for pool in self.pools)
            or any(pool.busy_count for pool in self.pools)
            or any(pool.rung > 0 for pool in self.pools)
            or now < self.last_arrival
        )
        if pending:
            self._push(now + config.check_interval_s, _BROWNOUT, None)

    # -- mechanics -----------------------------------------------------

    def _load(self, pool: _ColPool) -> float:
        return (
            (len(pool.queue) + pool.busy_count)
            / max(1, pool.active_count)
        )

    def _route(self, mid: int) -> _ColPool | None:
        eligible = self.route_pools[mid]
        if not eligible:
            return None
        best = eligible[0]
        if len(eligible) == 1:
            return best
        best_load = self._load(best)
        for pool in eligible[1:]:
            load = self._load(pool)
            if load < best_load:
                best = pool
                best_load = load
        return best

    def _enqueue(self, now: float, eid: int) -> None:
        admission = self.res.admission
        ridx = self.e_req[eid]
        if (
            admission is not None
            and admission.rate_per_s is not None
            and self.e_attempts[eid] == 1
            and not self._bucket_admits(now)
        ):
            self._shed(now, eid, reason=_R_SHED_RATE, pool=-1)
            return
        mid = self.r_model[ridx]
        pool = self._route(mid)
        if pool is None:
            self.f_req.append(ridx)
            self.f_pool.append(-1)
            self.f_attempts.append(self.e_attempts[eid])
            self.f_reason.append(_R_UNROUTABLE)
            self.f_at.append(now)
            self.e_done[eid] = 1
            if self.tel is not None:
                self.tel.record_fail(
                    self.r_rid[ridx], now, "", "unroutable",
                    self.e_attempts[eid],
                )
            return
        if admission is not None:
            if (
                admission.max_queue_depth is not None
                and len(pool.queue) >= admission.max_queue_depth
            ):
                self._shed(
                    now, eid, reason=_R_SHED_DEPTH, pool=pool.index
                )
                return
            budget = admission.budget_for(self.models[mid])
            if budget is not None:
                estimate = self._load(pool) * self._latency(pool, mid, 1)
                if estimate > budget:
                    self._shed(
                        now, eid, reason=_R_SHED_WAIT, pool=pool.index
                    )
                    return
        self._place(now, eid, pool)

    def _place(self, now: float, eid: int, pool: _ColPool) -> None:
        self.e_in_queue[eid] = 1
        self.e_token[eid] += 1
        self.e_pool[eid] = pool.index
        pool.queue.append(eid)
        if self.tel is not None:
            self.tel.record_admit(
                self.r_rid[self.e_req[eid]], now, pool.spec.name,
                self.e_attempts[eid], self.e_is_hedge[eid],
            )
        if self.timeout_s is not None:
            self._push(
                now + self.timeout_s, _TIMEOUT,
                (eid, pool.index, self.e_token[eid]),
            )
        self._dispatch(pool, now)

    def _bucket_admits(self, now: float) -> bool:
        admission = self.res.admission
        self.bucket_tokens = min(
            admission.burst,
            self.bucket_tokens
            + (now - self.bucket_last) * admission.rate_per_s,
        )
        self.bucket_last = now
        if self.bucket_tokens < 1.0:
            return False
        self.bucket_tokens -= 1.0
        return True

    def _shed(
        self, now: float, eid: int, *, reason: int, pool: int
    ) -> None:
        if self._twin_alive(eid):
            self.e_cancelled[eid] = 1
            if self.tel is not None:
                self.tel.record_cancel(
                    self.r_rid[self.e_req[eid]], now
                )
            return
        self.e_done[eid] = 1
        self.sh_req.append(self.e_req[eid])
        self.sh_pool.append(pool)
        self.sh_attempts.append(self.e_attempts[eid])
        self.sh_reason.append(reason)
        self.sh_at.append(now)
        if self.tel is not None:
            self.tel.record_shed(
                self.r_rid[self.e_req[eid]], now,
                self.pool_names[pool] if pool >= 0 else "",
                REASON_LABELS[reason],
            )

    def _twin_alive(self, eid: int) -> bool:
        twin = self.e_twin[eid]
        return (
            twin != -1
            and not self.e_done[twin]
            and not self.e_cancelled[twin]
        )

    def _cancel(self, eid: int, now: float) -> None:
        self.e_cancelled[eid] = 1
        if self.e_in_queue[eid]:
            self.e_in_queue[eid] = 0
            pidx = self.e_pool[eid]
            if pidx != -1:
                self.pools[pidx].queue.remove(eid)
        if self.tel is not None:
            self.tel.record_cancel(self.r_rid[self.e_req[eid]], now)

    def _hedge_delay(self, mid: int) -> float | None:
        config = self.res.hedge
        if config.delay_s is not None:
            return config.delay_s
        ordered = self.samples_sorted[mid]
        if len(ordered) < config.min_samples:
            return None
        index = max(
            0,
            min(
                len(ordered) - 1,
                round(config.quantile / 100.0 * len(ordered)) - 1,
            ),
        )
        return ordered[index]

    def _route_hedge(self, eid: int) -> _ColPool | None:
        eligible = self.route_pools[self.r_model[self.e_req[eid]]]
        home = self.e_pool[eid]
        others = [pool for pool in eligible if pool.index != home]
        candidates = others or eligible
        if not candidates:
            return None
        best = candidates[0]
        best_load = self._load(best)
        for pool in candidates[1:]:
            load = self._load(pool)
            if load < best_load:
                best = pool
                best_load = load
        return best

    def _rung_for(self, pool: _ColPool, mid: int) -> int:
        if pool.rung > 0 and mid in pool.rung_fns[pool.rung - 1]:
            return pool.rung
        return 0

    def _latency(self, pool: _ColPool, mid: int, size: int) -> float:
        rung = self._rung_for(pool, mid)
        key = (pool.index, mid, rung, size)
        value = self.latency_memo.get(key)
        if value is None:
            fn = (
                pool.rung_fns[rung - 1][mid] if rung > 0
                else pool.spec_fns[mid]
            )
            value = fn(size)
            self.latency_memo[key] = value
        return value

    def _observe_batch(
        self, sid: int, now: float, duration: float
    ) -> None:
        config = self.res.breaker
        nominal = self.s_batch_nominal[sid]
        slow = (
            config.slow_factor is not None
            and nominal > 0.0
            and duration > config.slow_factor * nominal
        )
        if slow:
            self._breaker_failure(sid, now)
        elif self.b_state[sid] == 2:
            self.b_state[sid] = 0
            self.b_probe[sid] = 0
            self.b_failures[sid].clear()
            if self.tel is not None:
                self.tel.record_breaker(
                    now, sid, self.pool_names[self.s_pool[sid]],
                    "closed",
                )

    def _breaker_failure(self, sid: int, now: float) -> None:
        config = self.res.breaker
        cutoff = now - config.window_s
        failures = [
            at for at in self.b_failures[sid] if at > cutoff
        ]
        failures.append(now)
        self.b_failures[sid] = failures
        state = self.b_state[sid]
        tripped = state == 2 or (
            state == 0 and len(failures) >= config.failure_threshold
        )
        if tripped:
            self.b_state[sid] = 1
            self.b_opened_at[sid] = now
            self.b_opens[sid] += 1
            self.b_probe[sid] = 0
            if self.tel is not None:
                self.tel.record_breaker(
                    now, sid, self.pool_names[self.s_pool[sid]],
                    "open",
                )
            self._push(now + config.cooldown_s, _PROBE, sid)

    def _retry_or_fail(
        self, now: float, eid: int, *, reason: int, pool: int
    ) -> None:
        if self.e_cancelled[eid] or self.e_done[eid]:
            return
        attempts = self.e_attempts[eid]
        if attempts >= self.retry.max_attempts:
            if self._twin_alive(eid):
                self.e_cancelled[eid] = 1
                if self.tel is not None:
                    self.tel.record_cancel(
                        self.r_rid[self.e_req[eid]], now
                    )
                return
            self.e_done[eid] = 1
            self.f_req.append(self.e_req[eid])
            self.f_pool.append(pool)
            self.f_attempts.append(attempts)
            self.f_reason.append(reason)
            self.f_at.append(now)
            if self.tel is not None:
                self.tel.record_fail(
                    self.r_rid[self.e_req[eid]], now,
                    self.pool_names[pool] if pool >= 0 else "",
                    REASON_LABELS[reason], attempts,
                )
            return
        backoff = self.retry.backoff_for(
            attempts, self.r_rid[self.e_req[eid]]
        )
        self.e_attempts[eid] = attempts + 1
        if self.tel is not None:
            self.tel.record_retry(
                self.r_rid[self.e_req[eid]], now,
                REASON_LABELS[reason], backoff, attempts + 1,
            )
        self._push(now + backoff, _RETRY, eid)

    def _select_indices(
        self, pool: _ColPool, sid: int, now: float
    ) -> tuple[list[int], int]:
        """Pick batch queue positions; returns ``(positions, model)``.

        Built-in policies run as index loops over entry ids (no object
        churn); any other policy gets the oracle's object protocol via
        :class:`_QueueProxy` views.
        """
        queue = pool.queue
        mode = pool.policy_mode
        r_model = self.r_model
        e_req = self.e_req
        if mode == 2:
            last = self.s_last_model[sid]
            if last != -1:
                picked = self._same_model(pool, last)
                if picked:
                    return picked, last
            mode = 0
        if mode == 0:
            mid = r_model[e_req[queue[0]]]
            return self._same_model(pool, mid), mid
        if mode == 1:
            r_service = self.r_service
            queued_since = self.e_queued_since
            best = 0
            ridx = e_req[queue[0]]
            best_key = (r_service[ridx], queued_since[queue[0]])
            for pos in range(1, len(queue)):
                eid = queue[pos]
                key = (r_service[e_req[eid]], queued_since[eid])
                if key < best_key:
                    best = pos
                    best_key = key
            mid = r_model[e_req[queue[best]]]
            return self._same_model(pool, mid), mid
        # Generic policy: oracle protocol over materialized views.
        views = [
            _QueueProxy(
                self.batch.request(e_req[eid]),
                self.e_queued_since[eid],
            )
            for eid in queue
        ]
        indices = pool.spec.policy.select(
            views, now=now, max_batch=pool.max_batch,
            last_model=(
                self.models[self.s_last_model[sid]]
                if self.s_last_model[sid] != -1 else None
            ),
        )
        if not indices:
            return [], -1
        mid = r_model[e_req[queue[indices[0]]]]
        if any(
            r_model[e_req[queue[i]]] != mid for i in indices
        ) or len(indices) > pool.max_batch:
            raise ValueError(
                f"policy {pool.spec.policy.name!r} returned an "
                "invalid batch"
            )
        return indices, mid

    def _same_model(self, pool: _ColPool, mid: int) -> list[int]:
        """FIFO same-model pick, one slot per request id (hedge dedup)."""
        picked: list[int] = []
        seen: set[int] = set()
        max_batch = pool.max_batch
        r_model = self.r_model
        r_rid = self.r_rid
        e_req = self.e_req
        for pos, eid in enumerate(pool.queue):
            if len(picked) == max_batch:
                break
            ridx = e_req[eid]
            if r_model[ridx] != mid:
                continue
            rid = r_rid[ridx]
            if rid in seen:
                continue
            seen.add(rid)
            picked.append(pos)
        return picked

    def _dispatch(self, pool: _ColPool, now: float) -> None:
        queue = pool.queue
        while queue:
            sid = self._pop_free(pool)
            if sid is None:
                return
            indices, mid = self._select_indices(pool, sid, now)
            if not indices:
                heapq.heappush(pool.free_heap, sid)
                return
            batch = [queue[pos] for pos in indices]
            for pos in sorted(indices, reverse=True):
                queue.pop(pos)
            in_queue = self.e_in_queue
            for eid in batch:
                in_queue[eid] = 0
            nominal = self._latency(pool, mid, len(batch))
            factor = 1.0
            if self.has_stragglers:
                windows = self.straggler_by_sid.get(sid)
                if windows is not None:
                    for at, until, slowdown in windows:
                        if at <= now < until:
                            factor = slowdown
                            break
            latency = nominal * factor
            last = self.s_last_model[sid]
            if last != -1 and last != mid:
                latency += pool.spec.swap_cost_s
                nominal += pool.spec.swap_cost_s
                self.s_swaps[sid] += 1
            self.s_batch[sid] = batch
            self.s_batch_start[sid] = now
            self.s_batch_model[sid] = mid
            self.s_batch_nominal[sid] = nominal
            self.s_batch_rung[sid] = self._rung_for(pool, mid)
            if self.tel is not None:
                for eid in batch:
                    self.tel.record_dispatch(
                        self.r_rid[self.e_req[eid]], now,
                        pool.spec.name, sid, len(batch),
                        self.s_batch_rung[sid],
                        self.e_is_hedge[eid],
                    )
            pool.busy_count += 1
            if self.use_breaker and self.b_state[sid] == 2:
                self.b_probe[sid] = 1
            self._push(
                now + latency, _FREE, (sid, self.s_generation[sid])
            )

    # -- report assembly ----------------------------------------------

    def _build_report(self, offered: int) -> ColumnarFleetReport:
        candidates = [self.last_arrival]
        if self.c_finish:
            candidates.append(max(self.c_finish))
        if self.f_at:
            candidates.append(max(self.f_at))
        if self.sh_at:
            candidates.append(max(self.sh_at))
        makespan = max(candidates)
        if self.tel is not None:
            self.tel.finish(makespan)

        breaker_open_s = 0.0
        breaker_opens = 0
        if self.use_breaker:
            for sid in range(self.nserv_total):
                breaker_opens += self.b_opens[sid]
                breaker_open_s += self.b_open_s[sid]
                if self.b_state[sid] == 1:
                    breaker_open_s += max(
                        0.0, makespan - self.b_opened_at[sid]
                    )
        stats = ResilienceStats(
            shed=len(self.sh_req),
            hedges_launched=self.hedges_launched,
            hedge_wins=self.hedge_wins,
            hedge_wasted_s=self.hedge_wasted_s,
            breaker_opens=breaker_opens,
            breaker_open_s=breaker_open_s,
            rung_completions=tuple(self.rung_completions),
            rung_changes=self.rung_changes,
        )

        c_finish = np.asarray(self.c_finish, dtype=np.float64)
        c_order = np.argsort(c_finish, kind="stable")
        c_pool = np.asarray(self.c_pool, dtype=np.int64)
        c_rung = np.asarray(self.c_rung, dtype=np.int64)
        f_at = np.asarray(self.f_at, dtype=np.float64)
        f_order = np.argsort(f_at, kind="stable")
        sh_at = np.asarray(self.sh_at, dtype=np.float64)
        sh_order = np.argsort(sh_at, kind="stable")
        sh_pool = np.asarray(self.sh_pool, dtype=np.int64)

        npools = len(self.pools)
        comp_per_pool = np.bincount(c_pool, minlength=npools)
        shed_per_pool = np.bincount(
            sh_pool + 1, minlength=npools + 1
        )[1:]
        pool_stats = tuple(
            self._pool_stats(
                pool, makespan,
                int(comp_per_pool[pool.index]),
                int(shed_per_pool[pool.index]),
            )
            for pool in self.pools
        )
        rung_quality = np.asarray(self.rung_quality, dtype=np.float64)
        return ColumnarFleetReport(
            models=self.models,
            pool_names=self.pool_names,
            req_arrival_s=self.batch.arrival_s,
            req_service_s=self.batch.service_s,
            req_model_ids=self.batch.model_ids,
            req_request_ids=self.batch.request_ids,
            comp_req=np.asarray(self.c_req, dtype=np.int64)[c_order],
            comp_pool=c_pool[c_order],
            comp_server=np.asarray(
                self.c_server, dtype=np.int64
            )[c_order],
            comp_queued_since_s=np.asarray(
                self.c_queued_since, dtype=np.float64
            )[c_order],
            comp_start_s=np.asarray(
                self.c_start, dtype=np.float64
            )[c_order],
            comp_finish_s=c_finish[c_order],
            comp_attempts=np.asarray(
                self.c_attempts, dtype=np.int64
            )[c_order],
            comp_hedged=np.frombuffer(
                bytes(self.c_hedged), dtype=np.uint8
            ).astype(bool)[c_order],
            comp_rung=c_rung[c_order],
            comp_quality=rung_quality[c_rung][c_order],
            fail_req=np.asarray(self.f_req, dtype=np.int64)[f_order],
            fail_pool=np.asarray(self.f_pool, dtype=np.int64)[f_order],
            fail_attempts=np.asarray(
                self.f_attempts, dtype=np.int64
            )[f_order],
            fail_reason=np.asarray(
                self.f_reason, dtype=np.int64
            )[f_order],
            fail_at_s=f_at[f_order],
            shed_req=np.asarray(self.sh_req, dtype=np.int64)[sh_order],
            shed_pool=sh_pool[sh_order],
            shed_attempts=np.asarray(
                self.sh_attempts, dtype=np.int64
            )[sh_order],
            shed_reason=np.asarray(
                self.sh_reason, dtype=np.int64
            )[sh_order],
            shed_at_s=sh_at[sh_order],
            pools=pool_stats,
            makespan_s=makespan,
            offered=offered,
            resilience=stats,
        )

    def _pool_stats(
        self, pool: _ColPool, makespan: float, completed: int, shed: int
    ) -> PoolStats:
        sids = range(pool.sid0, pool.sid0 + pool.nserv)
        busy = sum(self.s_busy_s[sid] for sid in sids)
        wasted = sum(self.s_wasted_s[sid] for sid in sids)
        swaps = sum(self.s_swaps[sid] for sid in sids)
        down = 0.0
        capacity = 0.0
        for sid in sids:
            server_down = self.s_down_s[sid]
            if self.s_down_since[sid] is not None:
                server_down += max(
                    0.0, makespan - self.s_down_since[sid]
                )
            down += server_down
            active = self.s_active_s[sid]
            if self.s_activated_at[sid] is not None:
                active += max(0.0, makespan - self.s_activated_at[sid])
            capacity += max(0.0, active - server_down)
        return PoolStats(
            name=pool.spec.name,
            machine=pool.spec.machine,
            servers=pool.spec.servers,
            peak_servers=pool.peak_servers,
            completed=completed,
            busy_s=busy,
            wasted_s=wasted,
            down_s=down,
            capacity_s=capacity,
            swaps=swaps,
            shed=shed,
        )


def simulate_fleet_columnar(
    requests: Sequence[Request] | RequestBatch,
    pools: Sequence[PoolSpec],
    *,
    retry: RetryPolicy = NO_RETRIES,
    faults: FaultSchedule = FAULT_FREE,
    autoscaler: AutoscalerConfig | None = None,
    resilience: ResilienceConfig = RESILIENCE_OFF,
    telemetry: "Telemetry | None" = None,
    plan: RecoveryPlan | None = None,
) -> ColumnarFleetReport:
    """Run the columnar fleet engine to completion.

    Semantics are exactly :func:`repro.serving.fleet.simulate_fleet`
    (the oracle) — same routing, policies, faults, retries, autoscaler
    and resilience behavior, same determinism contract — returning a
    :class:`ColumnarFleetReport` whose :meth:`~ColumnarFleetReport
    .to_report` is bit-identical to the oracle's output.  Requires
    *pure* batch-latency functions (results are memoized per
    pool/model/rung/batch-size).  Prefer this engine above ~50 k
    requests; prefer ``simulate_fleet(..., engine="auto")`` to choose
    automatically.

    ``telemetry`` takes a fresh :class:`repro.obs.Telemetry`; the
    emitted spans, fleet events and samples are byte-identical to the
    oracle's for the same inputs, and passing a collector never
    changes the simulation outcome.
    """
    _validate_pools(pools)
    batch = _request_columns(requests)
    state = _ColumnarState(
        pools, retry, faults, autoscaler, resilience, batch,
        telemetry=telemetry, plan=plan,
    )
    return state.run()
