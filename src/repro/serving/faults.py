"""Fault injection for the fleet simulator.

A characterization study can pretend servers never die; a deployable
system cannot.  This module defines the fault events the fleet
simulator understands — full crashes with a recovery time, and
stragglers (a server that keeps serving but at a slowdown multiplier,
the gray-failure mode that dominates real incident load) — plus the
retry/timeout policy that governs what happens to requests caught in a
fault.  Schedules are generated deterministically from a seed (same
contract as :mod:`repro.serving.workload`: one ``random.Random(seed)``
consumed in a fixed order), so a fault scenario is a reproducible,
diffable artifact rather than a flake.

Semantics, as implemented by :mod:`repro.serving.fleet`:

* **Crash** — at ``at_s`` the server drops its in-flight batch; those
  requests re-enter the queue (one retry attempt consumed, re-arriving
  after ``RetryPolicy.backoff_s``).  The server is unavailable until
  ``at_s + downtime_s``.
* **Straggler** — batches *launched* inside the window take
  ``slowdown``× their nominal latency.  Already-running batches are
  unaffected (the slowdown is applied at launch, like a clock-throttle
  taking effect between kernels).
* **Timeout** — a request whose queueing delay exceeds
  ``RetryPolicy.timeout_s`` abandons the queue; it retries (after
  backoff) while attempts remain, else it is recorded as failed.

Engine compatibility: fault schedules and retry policies drive **both**
fleet engines identically — the deterministic backoff jitter is seeded
per request id, not per engine, so retry timing matches bit-for-bit.
All times are seconds (``_s`` suffix), rates are per hour where named
so (``crash_rate_per_hour``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Crash:
    """A full server failure with bounded recovery.

    Attributes:
        server: fleet-wide server id the fault targets.
        at_s: simulation time the server dies.
        downtime_s: how long until the server rejoins its pool.
    """

    server: int
    at_s: float
    downtime_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.downtime_s <= 0:
            raise ValueError("invalid crash timing")

    @property
    def recover_s(self) -> float:
        """Absolute time the server comes back."""
        return self.at_s + self.downtime_s


@dataclass(frozen=True)
class Straggler:
    """A slow-but-alive server window (gray failure).

    Attributes:
        server: fleet-wide server id the fault targets.
        at_s: window start.
        duration_s: window length.
        slowdown: latency multiplier for batches launched inside the
            window (must be > 1).
    """

    server: int
    at_s: float
    duration_s: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.duration_s <= 0:
            raise ValueError("invalid straggler timing")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must exceed 1")

    @property
    def until_s(self) -> float:
        """Absolute time the window closes."""
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class RetryPolicy:
    """What happens to requests caught in a fault or a deep queue.

    The defaults (``multiplier=1.0``, ``jitter=0.0``) reproduce the
    original fixed-backoff behaviour exactly — recorded golden traces
    only change where a scenario opts into exponential backoff or
    jitter.

    Attributes:
        max_retries: additional attempts after the first (0 = fail on
            first fault).
        backoff_s: base delay before a retried request re-enters the
            queue (client backoff).
        timeout_s: maximum queueing delay before a request abandons its
            attempt; ``None`` disables queue timeouts.
        multiplier: exponential growth factor per failed attempt; the
            n-th failure backs off ``backoff_s * multiplier**(n-1)``.
        max_backoff_s: cap on any single backoff delay (``None`` =
            uncapped).
        jitter: in ``[0, 1]`` — blend weight of deterministic
            decorrelated jitter (seeded from the request id, so the
            reproducibility contract survives): 0 is the pure
            exponential schedule, 1 is pure decorrelated jitter.
    """

    max_retries: int = 2
    backoff_s: float = 1.0
    timeout_s: float | None = None
    multiplier: float = 1.0
    max_backoff_s: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.backoff_s < 0:
            raise ValueError("invalid retry policy")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive when set")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff_s is not None and self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive when set")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def max_attempts(self) -> int:
        """Total tries a request gets (first attempt + retries)."""
        return self.max_retries + 1

    def backoff_for(self, failures: int, request_id: int) -> float:
        """Backoff before the attempt following failure ``failures``.

        Deterministic: the jitter stream is seeded from the request id
        alone, so a request backs off identically across runs (and
        across unrelated schedule changes — the draws of one request
        never perturb another's).  The jittered delay follows the
        decorrelated-jitter recursion ``d_n = uniform(base, 3 *
        d_{n-1})`` capped at ``max_backoff_s``; the returned delay is
        the ``jitter``-weighted blend of the exponential schedule and
        that draw.  With the defaults this returns ``backoff_s``
        bit-exactly.
        """
        if failures < 1:
            raise ValueError("failures must be >= 1")
        cap = (
            self.max_backoff_s if self.max_backoff_s is not None
            else float("inf")
        )
        # Clamp the exponent before exponentiating: float ** raises
        # OverflowError near 2**1024, and chaos campaigns legitimately
        # retry a request hundreds of times.  Below the clamp the value
        # is bit-identical to the unguarded arithmetic.
        exponent = failures - 1
        if exponent > _MAX_BACKOFF_DOUBLINGS and self.multiplier > 1.0:
            exponent = _MAX_BACKOFF_DOUBLINGS
        base = min(cap, self.backoff_s * self.multiplier ** exponent)
        if self.jitter == 0.0 or self.backoff_s == 0.0:
            return base
        # Tuple-of-ints seeds hash deterministically (PYTHONHASHSEED
        # only salts str/bytes), so this is stable across processes.
        rng = random.Random(0x5F3759DF ^ (request_id * 0x9E3779B97F4A7C15))
        delay = self.backoff_s
        for _ in range(min(failures, _MAX_BACKOFF_DOUBLINGS)):
            delay = min(
                cap,
                rng.uniform(
                    self.backoff_s, max(self.backoff_s, 3.0 * delay)
                ),
            )
        return (1.0 - self.jitter) * base + self.jitter * delay


_MAX_BACKOFF_DOUBLINGS = 64
"""Exponent clamp inside :meth:`RetryPolicy.backoff_for`.

``multiplier ** (failures - 1)`` overflows a float once ``failures``
reaches a few hundred (chaos campaigns and hypothesis runs legitimately
produce such counts); past 64 doublings the un-capped delay already
exceeds any practical ``max_backoff_s``, so clamping the exponent first
changes nothing observable while keeping the arithmetic finite.
"""


NO_RETRIES = RetryPolicy(max_retries=0, backoff_s=0.0, timeout_s=None)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered fault scenario for one simulation run."""

    crashes: tuple[Crash, ...] = ()
    stragglers: tuple[Straggler, ...] = ()

    def __post_init__(self) -> None:
        for events in (self.crashes, self.stragglers):
            times = [event.at_s for event in events]
            if times != sorted(times):
                raise ValueError("fault events must be time-ordered")

    @property
    def is_empty(self) -> bool:
        """True when the schedule injects nothing (the control run)."""
        return not self.crashes and not self.stragglers

    def for_server(self, server: int) -> "FaultSchedule":
        """The sub-schedule targeting one server.

        Empty schedules short-circuit to ``self`` — the chaos-off fast
        path allocates nothing per call.
        """
        if not self.crashes and not self.stragglers:
            return self
        return FaultSchedule(
            crashes=tuple(
                crash for crash in self.crashes if crash.server == server
            ),
            stragglers=tuple(
                event for event in self.stragglers
                if event.server == server
            ),
        )


FAULT_FREE = FaultSchedule()


CONTROL_KINDS = ("cordon", "uncordon")
"""Valid :class:`ControlAction` kinds.

``cordon`` drains a server: it stops taking new batches but finishes
the one in flight (and, unlike a crash, loses no work).  ``uncordon``
returns a cordoned or cold-standby server to service — promotion of a
warm standby is an ``uncordon`` of a server that started inactive.
"""

MARKER_KINDS = ("domain_down", "domain_detected", "domain_up")
"""Valid :class:`DomainMarker` kinds (domain-transition telemetry)."""


@dataclass(frozen=True)
class ControlAction:
    """One scheduled orchestration action on one server.

    Attributes:
        at_s: simulation time the action fires.
        kind: one of :data:`CONTROL_KINDS`.
        server: fleet-wide server id the action targets.
    """

    at_s: float
    kind: str
    server: int

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.server < 0:
            raise ValueError("invalid control action")
        if self.kind not in CONTROL_KINDS:
            raise ValueError(
                f"unknown control kind {self.kind!r}; "
                f"known: {CONTROL_KINDS}"
            )


@dataclass(frozen=True)
class DomainMarker:
    """A domain-transition annotation the engines emit to telemetry.

    Markers are purely observational: they never read or write
    simulation state, so a plan with markers and no actions produces a
    bit-identical report to ``plan=None`` (the extra no-op heap events
    only advance the telemetry clock).

    Attributes:
        at_s: simulation time of the transition.
        kind: one of :data:`MARKER_KINDS`.
        domain: domain label (``"zone:2"``, ``"rack:0"``).
        event: campaign event kind that caused it (``"zone_outage"``).
    """

    at_s: float
    kind: str
    domain: str
    event: str

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("marker time must be non-negative")
        if self.kind not in MARKER_KINDS:
            raise ValueError(
                f"unknown marker kind {self.kind!r}; "
                f"known: {MARKER_KINDS}"
            )


@dataclass(frozen=True)
class RecoveryPlan:
    """A compiled orchestration schedule for one simulation run.

    Produced by :func:`repro.serving.domains.compile_campaign` from a
    domain topology plus an
    :class:`~repro.serving.domains.OrchestrationConfig`; consumed by
    both fleet engines via ``simulate_fleet(..., plan=...)``.  Because
    fault schedules are known inputs, recovery orchestration compiles
    to *scheduled* control actions — warm-standby promotion at
    detection time, staggered re-admission after recovery — rather
    than runtime feedback, which keeps both engines bit-identical with
    zero new decision logic.
    """

    actions: tuple[ControlAction, ...] = ()
    markers: tuple[DomainMarker, ...] = ()

    def __post_init__(self) -> None:
        times = [action.at_s for action in self.actions]
        if times != sorted(times):
            raise ValueError("control actions must be time-ordered")
        times = [marker.at_s for marker in self.markers]
        if times != sorted(times):
            raise ValueError("markers must be time-ordered")

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.actions and not self.markers


def generate_faults(
    *,
    servers: int,
    duration_s: float,
    seed: int = 0,
    crash_rate_per_hour: float = 0.0,
    mean_downtime_s: float = 60.0,
    straggler_rate_per_hour: float = 0.0,
    mean_straggler_s: float = 120.0,
    slowdown: float = 3.0,
) -> FaultSchedule:
    """Draw a deterministic fault schedule for a fleet.

    Crashes and stragglers are independent Poisson processes *per
    server* with the given hourly rates; downtimes and straggler
    windows are exponential around their means.  Draw order (the
    seeding contract): first the crash process for every server in
    ascending server-id order (arrival, then downtime, repeated), then
    the straggler process for every server (arrival, then duration) —
    so the same seed always yields the same schedule, and enabling
    stragglers does not perturb the crash times.
    """
    if servers <= 0 or duration_s <= 0:
        raise ValueError("servers and duration must be positive")
    if crash_rate_per_hour < 0 or straggler_rate_per_hour < 0:
        raise ValueError("fault rates must be non-negative")
    if mean_downtime_s <= 0 or mean_straggler_s <= 0:
        raise ValueError("mean fault durations must be positive")
    if slowdown <= 1.0:
        raise ValueError("slowdown must exceed 1")
    rng = random.Random(seed)
    crashes: list[Crash] = []
    stragglers: list[Straggler] = []
    if crash_rate_per_hour > 0:
        for server in range(servers):
            clock = 0.0
            while True:
                clock += rng.expovariate(crash_rate_per_hour / 3600.0)
                if clock >= duration_s:
                    break
                # Advance the clock by the *stored* (clamped) downtime:
                # the next crash draw starts after the recovery window
                # the simulator will actually observe, so consecutive
                # crashes on one server can never overlap.
                downtime = max(rng.expovariate(1.0 / mean_downtime_s), 1.0)
                crashes.append(
                    Crash(
                        server=server, at_s=clock, downtime_s=downtime,
                    )
                )
                clock += downtime
    for server in range(servers):
        if straggler_rate_per_hour > 0:
            clock = 0.0
            while True:
                clock += rng.expovariate(straggler_rate_per_hour / 3600.0)
                if clock >= duration_s:
                    break
                window = max(rng.expovariate(1.0 / mean_straggler_s), 1.0)
                stragglers.append(
                    Straggler(
                        server=server, at_s=clock,
                        duration_s=window, slowdown=slowdown,
                    )
                )
                clock += window
    crashes.sort(key=lambda event: (event.at_s, event.server))
    stragglers.sort(key=lambda event: (event.at_s, event.server))
    return FaultSchedule(
        crashes=tuple(crashes), stragglers=tuple(stragglers)
    )
