"""Fault injection for the fleet simulator.

A characterization study can pretend servers never die; a deployable
system cannot.  This module defines the fault events the fleet
simulator understands — full crashes with a recovery time, and
stragglers (a server that keeps serving but at a slowdown multiplier,
the gray-failure mode that dominates real incident load) — plus the
retry/timeout policy that governs what happens to requests caught in a
fault.  Schedules are generated deterministically from a seed (same
contract as :mod:`repro.serving.workload`: one ``random.Random(seed)``
consumed in a fixed order), so a fault scenario is a reproducible,
diffable artifact rather than a flake.

Semantics, as implemented by :mod:`repro.serving.fleet`:

* **Crash** — at ``at_s`` the server drops its in-flight batch; those
  requests re-enter the queue (one retry attempt consumed, re-arriving
  after ``RetryPolicy.backoff_s``).  The server is unavailable until
  ``at_s + downtime_s``.
* **Straggler** — batches *launched* inside the window take
  ``slowdown``× their nominal latency.  Already-running batches are
  unaffected (the slowdown is applied at launch, like a clock-throttle
  taking effect between kernels).
* **Timeout** — a request whose queueing delay exceeds
  ``RetryPolicy.timeout_s`` abandons the queue; it retries (after
  backoff) while attempts remain, else it is recorded as failed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Crash:
    """A full server failure with bounded recovery.

    Attributes:
        server: fleet-wide server id the fault targets.
        at_s: simulation time the server dies.
        downtime_s: how long until the server rejoins its pool.
    """

    server: int
    at_s: float
    downtime_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.downtime_s <= 0:
            raise ValueError("invalid crash timing")

    @property
    def recover_s(self) -> float:
        """Absolute time the server comes back."""
        return self.at_s + self.downtime_s


@dataclass(frozen=True)
class Straggler:
    """A slow-but-alive server window (gray failure).

    Attributes:
        server: fleet-wide server id the fault targets.
        at_s: window start.
        duration_s: window length.
        slowdown: latency multiplier for batches launched inside the
            window (must be > 1).
    """

    server: int
    at_s: float
    duration_s: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.duration_s <= 0:
            raise ValueError("invalid straggler timing")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must exceed 1")

    @property
    def until_s(self) -> float:
        """Absolute time the window closes."""
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class RetryPolicy:
    """What happens to requests caught in a fault or a deep queue.

    Attributes:
        max_retries: additional attempts after the first (0 = fail on
            first fault).
        backoff_s: fixed delay before a retried request re-enters the
            queue (client backoff).
        timeout_s: maximum queueing delay before a request abandons its
            attempt; ``None`` disables queue timeouts.
    """

    max_retries: int = 2
    backoff_s: float = 1.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.backoff_s < 0:
            raise ValueError("invalid retry policy")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive when set")

    @property
    def max_attempts(self) -> int:
        """Total tries a request gets (first attempt + retries)."""
        return self.max_retries + 1


NO_RETRIES = RetryPolicy(max_retries=0, backoff_s=0.0, timeout_s=None)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered fault scenario for one simulation run."""

    crashes: tuple[Crash, ...] = ()
    stragglers: tuple[Straggler, ...] = ()

    def __post_init__(self) -> None:
        for events in (self.crashes, self.stragglers):
            times = [event.at_s for event in events]
            if times != sorted(times):
                raise ValueError("fault events must be time-ordered")

    @property
    def is_empty(self) -> bool:
        """True when the schedule injects nothing (the control run)."""
        return not self.crashes and not self.stragglers

    def for_server(self, server: int) -> "FaultSchedule":
        """The sub-schedule targeting one server."""
        return FaultSchedule(
            crashes=tuple(
                crash for crash in self.crashes if crash.server == server
            ),
            stragglers=tuple(
                event for event in self.stragglers
                if event.server == server
            ),
        )


FAULT_FREE = FaultSchedule()


def generate_faults(
    *,
    servers: int,
    duration_s: float,
    seed: int = 0,
    crash_rate_per_hour: float = 0.0,
    mean_downtime_s: float = 60.0,
    straggler_rate_per_hour: float = 0.0,
    mean_straggler_s: float = 120.0,
    slowdown: float = 3.0,
) -> FaultSchedule:
    """Draw a deterministic fault schedule for a fleet.

    Crashes and stragglers are independent Poisson processes *per
    server* with the given hourly rates; downtimes and straggler
    windows are exponential around their means.  Draw order (the
    seeding contract): first the crash process for every server in
    ascending server-id order (arrival, then downtime, repeated), then
    the straggler process for every server (arrival, then duration) —
    so the same seed always yields the same schedule, and enabling
    stragglers does not perturb the crash times.
    """
    if servers <= 0 or duration_s <= 0:
        raise ValueError("servers and duration must be positive")
    if crash_rate_per_hour < 0 or straggler_rate_per_hour < 0:
        raise ValueError("fault rates must be non-negative")
    if mean_downtime_s <= 0 or mean_straggler_s <= 0:
        raise ValueError("mean fault durations must be positive")
    if slowdown <= 1.0:
        raise ValueError("slowdown must exceed 1")
    rng = random.Random(seed)
    crashes: list[Crash] = []
    stragglers: list[Straggler] = []
    if crash_rate_per_hour > 0:
        for server in range(servers):
            clock = 0.0
            while True:
                clock += rng.expovariate(crash_rate_per_hour / 3600.0)
                if clock >= duration_s:
                    break
                downtime = rng.expovariate(1.0 / mean_downtime_s)
                crashes.append(
                    Crash(
                        server=server, at_s=clock,
                        downtime_s=max(downtime, 1.0),
                    )
                )
                clock += downtime
    for server in range(servers):
        if straggler_rate_per_hour > 0:
            clock = 0.0
            while True:
                clock += rng.expovariate(straggler_rate_per_hour / 3600.0)
                if clock >= duration_s:
                    break
                window = rng.expovariate(1.0 / mean_straggler_s)
                stragglers.append(
                    Straggler(
                        server=server, at_s=clock,
                        duration_s=max(window, 1.0), slowdown=slowdown,
                    )
                )
                clock += window
    crashes.sort(key=lambda event: (event.at_s, event.server))
    stragglers.sort(key=lambda event: (event.at_s, event.server))
    return FaultSchedule(
        crashes=tuple(crashes), stragglers=tuple(stragglers)
    )
