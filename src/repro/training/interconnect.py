"""Interconnect specifications for multi-GPU training.

The paper trains with Fully Sharded Data Parallelism over nodes of
8 A100s (Section III, "Hardware Systems").  FSDP's cost is dominated by
collectives, so the model needs per-link bandwidths for intra-node
(NVLink/NVSwitch) and inter-node (InfiniBand) communication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidths and latencies of a GPU cluster fabric.

    Attributes:
        intra_node_bandwidth: per-GPU NVLink bandwidth, bytes/s each way.
        inter_node_bandwidth: per-GPU network bandwidth, bytes/s.
        gpus_per_node: GPUs sharing the NVLink domain.
        collective_latency_s: fixed latency per collective launch.
    """

    name: str
    intra_node_bandwidth: float
    inter_node_bandwidth: float
    gpus_per_node: int = 8
    collective_latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.intra_node_bandwidth <= 0 or self.inter_node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    def algorithm_bandwidth(self, world_size: int) -> float:
        """Effective per-GPU bandwidth for ring-style collectives.

        Within one node the NVLink bandwidth applies; across nodes the
        slowest link (the network) bounds the ring.
        """
        if world_size <= 0:
            raise ValueError("world size must be positive")
        if world_size <= self.gpus_per_node:
            return self.intra_node_bandwidth
        return self.inter_node_bandwidth

    def all_gather_time(self, payload_bytes: float, world_size: int) -> float:
        """Ring all-gather: each GPU receives (w-1)/w of the payload."""
        if world_size <= 1:
            return 0.0
        wire = payload_bytes * (world_size - 1) / world_size
        return (
            self.collective_latency_s
            + wire / self.algorithm_bandwidth(world_size)
        )

    def reduce_scatter_time(
        self, payload_bytes: float, world_size: int
    ) -> float:
        """Ring reduce-scatter moves the same volume as all-gather."""
        return self.all_gather_time(payload_bytes, world_size)

    def all_reduce_time(self, payload_bytes: float, world_size: int) -> float:
        """All-reduce = reduce-scatter + all-gather."""
        return self.all_gather_time(
            payload_bytes, world_size
        ) + self.reduce_scatter_time(payload_bytes, world_size)


# A100 SXM pod: NVSwitch ~300 GB/s/GPU each way; 8x200 Gb/s HDR IB
# shared per node -> ~25 GB/s per GPU.
DGX_A100 = InterconnectSpec(
    name="DGX-A100",
    intra_node_bandwidth=300e9,
    inter_node_bandwidth=25e9,
)

# H100 SXM pod: NVLink4 ~450 GB/s/GPU; 8x400 Gb/s NDR -> ~50 GB/s/GPU.
DGX_H100 = InterconnectSpec(
    name="DGX-H100",
    intra_node_bandwidth=450e9,
    inter_node_bandwidth=50e9,
)


def nodes_for(world_size: int, spec: InterconnectSpec) -> int:
    """Node count for a world size on this fabric."""
    return math.ceil(world_size / spec.gpus_per_node)
