"""Training memory accounting.

Figure 1's second observation — TTI/TTV training runs at ~10 points
higher HBM utilization than LLM training — comes from how the two
workload classes spend memory: LLMs shard enormous parameter/optimizer
state over many GPUs, while TTI models are small but carry huge
*activations* (high-resolution feature maps and attention matrices that
scale O(L^4), Section V).  This module estimates both sides from first
principles.

Mixed-precision Adam accounting per parameter (bytes):
    fp16 weights (2) + fp16 grads (2) + fp32 master weights (4)
    + fp32 momentum (4) + fp32 variance (4) = 16 bytes/param,
sharded by the FSDP world size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.module import Module
from repro.ir.trace import Trace

BYTES_PER_PARAM_TRAINING = 16  # fp16 weights+grads, fp32 master+Adam
ACTIVATION_CHECKPOINT_FRACTION = 0.3
"""Fraction of forward activations kept live with standard selective
checkpointing (the rest are recomputed in backward)."""


@dataclass(frozen=True)
class TrainingMemoryEstimate:
    """Per-GPU memory footprint of one training configuration."""

    model_state_bytes: float
    activation_bytes: float
    workspace_bytes: float

    @property
    def total_bytes(self) -> float:
        return (
            self.model_state_bytes
            + self.activation_bytes
            + self.workspace_bytes
        )

    def utilization(self, gpu: GPUSpec = A100_80GB) -> float:
        """Fraction of HBM used (can exceed 1.0 = does not fit)."""
        return self.total_bytes / gpu.dram_capacity


def activation_bytes_from_trace(
    trace: Trace, checkpoint_fraction: float = ACTIVATION_CHECKPOINT_FRACTION
) -> float:
    """Live activation estimate: checkpointed fraction of all forward
    writes (every kernel output is a candidate residual)."""
    if not 0.0 < checkpoint_fraction <= 1.0:
        raise ValueError("checkpoint fraction must be in (0, 1]")
    total_writes = sum(event.op.write_bytes() for event in trace)
    return checkpoint_fraction * total_writes


def estimate_training_memory(
    model: Module,
    forward_trace: Trace,
    *,
    world_size: int,
    batch_per_gpu: int = 1,
    checkpoint_fraction: float = ACTIVATION_CHECKPOINT_FRACTION,
    workspace_bytes: float = 4e9,
) -> TrainingMemoryEstimate:
    """Per-GPU training memory under FSDP.

    Model/optimizer state shards across the world; activations are per
    GPU and scale with the local batch.
    """
    if world_size <= 0 or batch_per_gpu <= 0:
        raise ValueError("world size and batch must be positive")
    params = model.param_count()
    model_state = params * BYTES_PER_PARAM_TRAINING / world_size
    activations = (
        activation_bytes_from_trace(forward_trace, checkpoint_fraction)
        * batch_per_gpu
    )
    return TrainingMemoryEstimate(
        model_state_bytes=model_state,
        activation_bytes=activations,
        workspace_bytes=workspace_bytes,
    )


def minimum_gpus_for_state(
    model: Module, gpu: GPUSpec = A100_80GB, state_budget_fraction: float = 0.6
) -> int:
    """GPUs needed just to shard model+optimizer state.

    The Figure 1 mechanism in reverse: a 70B LLM *requires* a large
    world size for its state, while a 1-3B TTI model's GPU count is set
    by throughput, not capacity — hence the 14x GPUs-per-parameter gap.
    """
    if not 0.0 < state_budget_fraction <= 1.0:
        raise ValueError("budget fraction must be in (0, 1]")
    state = model.param_count() * BYTES_PER_PARAM_TRAINING
    budget = gpu.dram_capacity * state_budget_fraction
    import math

    return max(1, math.ceil(state / budget))
