"""FSDP training-step cost model.

The paper trains every model with Fully Sharded Data Parallelism over
multi-node A100 clusters (Section III).  One FSDP step per layer-group:

* forward: all-gather the shard's parameters, run forward compute;
* backward: all-gather again, run backward compute (~2x forward FLOPs),
  reduce-scatter gradients.

Compute comes from the same kernel cost models as inference; the
backward pass is derived from the forward trace (each GEMM/conv has a
data-gradient and a weight-gradient counterpart).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.trace import Trace
from repro.training.interconnect import DGX_A100, InterconnectSpec

BACKWARD_COMPUTE_MULTIPLIER = 2.0
"""dgrad + wgrad are each roughly one forward's FLOPs for GEMM/conv;
with selective recompute the multiplier in practice is ~2.0-2.5."""

RECOMPUTE_FRACTION = 0.7
"""Fraction of the forward re-executed during backward under the
checkpointing policy assumed in repro.training.memory."""


@dataclass(frozen=True)
class FsdpStepCost:
    """Wall-clock decomposition of one FSDP training step (per GPU)."""

    forward_compute_s: float
    backward_compute_s: float
    recompute_s: float
    all_gather_s: float
    reduce_scatter_s: float
    overlap_fraction: float

    @property
    def compute_s(self) -> float:
        return (
            self.forward_compute_s
            + self.backward_compute_s
            + self.recompute_s
        )

    @property
    def communication_s(self) -> float:
        return self.all_gather_s + self.reduce_scatter_s

    @property
    def exposed_communication_s(self) -> float:
        """Communication not hidden behind compute."""
        hidden = min(
            self.communication_s * self.overlap_fraction, self.compute_s
        )
        return self.communication_s - hidden

    @property
    def step_time_s(self) -> float:
        return self.compute_s + self.exposed_communication_s

    @property
    def communication_fraction(self) -> float:
        return self.exposed_communication_s / self.step_time_s


def fsdp_step_cost(
    forward_trace: Trace,
    param_count: int,
    *,
    world_size: int,
    interconnect: InterconnectSpec = DGX_A100,
    layer_groups: int = 32,
    overlap_fraction: float = 0.7,
    dtype_bytes: int = 2,
) -> FsdpStepCost:
    """Estimate one training step from a single-GPU forward trace.

    Args:
        forward_trace: inference/forward trace of the model at the
            training batch size.
        param_count: total trainable parameters.
        world_size: FSDP world size (data-parallel degree).
        layer_groups: FSDP wrapping granularity — each group triggers
            its own collectives (latency term).
        overlap_fraction: how much communication hides behind compute.
    """
    if world_size <= 0:
        raise ValueError("world size must be positive")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap fraction must be in [0, 1]")
    forward = forward_trace.total_time_s
    backward = forward * BACKWARD_COMPUTE_MULTIPLIER
    recompute = forward * RECOMPUTE_FRACTION
    param_bytes = float(param_count * dtype_bytes)
    group_bytes = param_bytes / max(1, layer_groups)
    # Two all-gathers (forward + backward) and one reduce-scatter
    # (fp32 grads are reduced in fp16 here, matching common practice).
    all_gather = 2 * sum(
        interconnect.all_gather_time(group_bytes, world_size)
        for _ in range(layer_groups)
    )
    reduce_scatter = sum(
        interconnect.reduce_scatter_time(group_bytes, world_size)
        for _ in range(layer_groups)
    )
    return FsdpStepCost(
        forward_compute_s=forward,
        backward_compute_s=backward,
        recompute_s=recompute,
        all_gather_s=all_gather,
        reduce_scatter_s=reduce_scatter,
        overlap_fraction=overlap_fraction,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """Throughput at one world size."""

    world_size: int
    step_time_s: float
    samples_per_second: float
    communication_fraction: float
    scaling_efficiency: float


def scaling_sweep(
    forward_trace: Trace,
    param_count: int,
    world_sizes: list[int],
    *,
    batch_per_gpu: int = 1,
    interconnect: InterconnectSpec = DGX_A100,
    gpu: GPUSpec = A100_80GB,
) -> list[ScalingPoint]:
    """Weak-scaling sweep: global throughput vs world size."""
    del gpu  # reserved for device-dependent compute scaling
    if not world_sizes:
        raise ValueError("need at least one world size")
    points: list[ScalingPoint] = []
    baseline_per_gpu: float | None = None
    for world_size in sorted(world_sizes):
        cost = fsdp_step_cost(
            forward_trace, param_count, world_size=world_size,
            interconnect=interconnect,
        )
        throughput = world_size * batch_per_gpu / cost.step_time_s
        per_gpu = throughput / world_size
        if baseline_per_gpu is None:
            baseline_per_gpu = per_gpu
        points.append(
            ScalingPoint(
                world_size=world_size,
                step_time_s=cost.step_time_s,
                samples_per_second=throughput,
                communication_fraction=cost.communication_fraction,
                scaling_efficiency=per_gpu / baseline_per_gpu,
            )
        )
    return points
