"""Training-side characterization: FSDP cost, memory, interconnects.

The paper's Figure 1 observations (14x GPUs per parameter, ~10pp higher
memory utilization for TTI/TTV) are fleet aggregates; this package lets
the same quantities be derived from the model suite itself.
"""

from repro.training.fsdp import (
    BACKWARD_COMPUTE_MULTIPLIER,
    FsdpStepCost,
    ScalingPoint,
    fsdp_step_cost,
    scaling_sweep,
)
from repro.training.interconnect import (
    DGX_A100,
    DGX_H100,
    InterconnectSpec,
    nodes_for,
)
from repro.training.memory import (
    BYTES_PER_PARAM_TRAINING,
    TrainingMemoryEstimate,
    activation_bytes_from_trace,
    estimate_training_memory,
    minimum_gpus_for_state,
)

__all__ = [
    "BACKWARD_COMPUTE_MULTIPLIER",
    "BYTES_PER_PARAM_TRAINING",
    "DGX_A100",
    "DGX_H100",
    "FsdpStepCost",
    "InterconnectSpec",
    "ScalingPoint",
    "TrainingMemoryEstimate",
    "activation_bytes_from_trace",
    "estimate_training_memory",
    "fsdp_step_cost",
    "minimum_gpus_for_state",
    "nodes_for",
    "scaling_sweep",
]
