"""Shared machinery for kernel cost models.

Every kernel model produces a :class:`repro.ir.trace.KernelCost` from the
same recipe: a compute-bound time (FLOPs over derated peak throughput),
a memory-bound time (bytes over locality-derated bandwidth), and a fixed
launch overhead.  The kernel executes at ``max(compute, memory)`` —
i.e. a roofline with shape-dependent efficiency, which is the level of
fidelity the paper's observations depend on (tile quantization is what
makes decode-shaped GEMMs slow; cache residency is what makes Flash
Attention's benefit sequence-length dependent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.memory import AccessPattern, MemorySystem
from repro.hw.spec import GPUSpec
from repro.ir.dtypes import DType
from repro.ir.trace import KernelCost


@dataclass(frozen=True)
class TuningConstants:
    """Calibration knobs for the cost models.

    These are the honest degrees of freedom of the analytical model; the
    ablation benchmarks perturb them to show which conclusions are
    sensitive to which constant.
    """

    gemm_base_utilization: float = 0.85
    conv_base_utilization: float = 0.72
    flash_base_utilization: float = 0.70
    vector_utilization: float = 0.75
    bandwidth_utilization: float = 0.85
    min_utilization: float = 0.01
    l2_residency_fraction: float = 0.5
    temporal_locality_derate: float = 6.0
    """Sustained-bandwidth penalty for temporal-attention kernels.

    The Figure 12 measurement (reproduced by our cache simulator) shows
    temporal attention's GEMM/softmax kernels run at ~10x lower L1 hit
    rates than spatial attention: every request goes to L2/HBM, so the
    kernels sustain a fraction of streaming bandwidth.  This constant is
    that fraction's inverse; the Figure 11 ablation sweeps it."""
    norm_bandwidth_derate: float = 2.0
    """Normalization kernels (GroupNorm especially) are latency-bound at
    inference batch sizes: two dependent reduction phases, fp32 math on
    fp16 data, and little blocking.  They sustain roughly half of
    streaming bandwidth, which is what puts GroupNorm at the paper's
    4-11% of diffusion-model time."""
    norm_derate_threshold_bytes: float = 256e6
    """Above this working set a normalization kernel has enough rows in
    flight to stream at full bandwidth; the derate only applies below."""
    gemm_tile_m: int = 128
    gemm_tile_n: int = 128
    gemm_tile_k: int = 32
    flash_tile_q: int = 128
    flash_tile_kv: int = 64


DEFAULT_TUNING = TuningConstants()


def tile_quantization(
    m: int, n: int, k: int, tile_m: int, tile_n: int, tile_k: int
) -> float:
    """Fraction of issued MACs that are useful after tile padding.

    A GEMM is executed in ``tile_m x tile_n x tile_k`` chunks; dimensions
    that do not fill a tile still pay for the whole tile.  Decode-shaped
    GEMMs (m=1) therefore run at ~1/tile_m of peak — the mechanism behind
    the paper's prefill/decode asymmetry (Section IV-B).
    """
    padded = (
        math.ceil(m / tile_m) * tile_m
        * math.ceil(n / tile_n) * tile_n
        * math.ceil(k / tile_k) * tile_k
    )
    return (m * n * k) / padded


def wave_efficiency(ctas: int, sm_count: int) -> float:
    """SM occupancy loss from partial final waves (wave quantization)."""
    if ctas <= 0:
        return 1.0
    waves = math.ceil(ctas / sm_count)
    return ctas / (waves * sm_count)


class CostModelBase:
    """Base class holding the GPU spec, memory system and tuning."""

    def __init__(self, spec: GPUSpec, tuning: TuningConstants = DEFAULT_TUNING):
        self.spec = spec
        self.tuning = tuning
        self.memory = MemorySystem(
            spec, residency_fraction=tuning.l2_residency_fraction
        )

    def build_cost(
        self,
        *,
        flops: float,
        compute_peak: float,
        utilization: float,
        moved_bytes: float,
        pattern: AccessPattern | None = None,
        launches: int = 1,
        bandwidth_derate: float = 1.0,
    ) -> KernelCost:
        """Assemble a roofline cost from its components.

        ``bandwidth_derate`` divides achieved bandwidth; kernels with
        pathological locality (temporal attention, Figure 12) pass the
        tuning constant here.
        """
        utilization = max(self.tuning.min_utilization, min(1.0, utilization))
        compute_time = flops / (compute_peak * utilization) if flops else 0.0
        if pattern is None:
            pattern = AccessPattern(working_set_bytes=moved_bytes)
        bandwidth = (
            self.memory.effective_bandwidth(pattern)
            * self.tuning.bandwidth_utilization
            / max(1.0, bandwidth_derate)
        )
        memory_time = moved_bytes / bandwidth if moved_bytes else 0.0
        launch_time = launches * self.spec.kernel_launch_overhead_s
        body = max(compute_time, memory_time)
        if body == 0.0:
            limiter = "launch"
        elif compute_time >= memory_time:
            limiter = "compute"
        else:
            limiter = "memory"
        return KernelCost(
            time_s=body + launch_time,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            launch_time_s=launch_time,
            flops=flops,
            moved_bytes=moved_bytes,
            limiter=limiter,
        )

    def locality_derate(self, op: "object") -> float:
        """Bandwidth derate for this op's attention locality class."""
        from repro.ir.ops import AttentionKind

        info = getattr(op, "attention", None)
        if info is not None and info.kind is AttentionKind.TEMPORAL:
            return self.tuning.temporal_locality_derate
        return 1.0

    def matmul_peak(self, dtype: DType) -> float:
        """Peak GEMM throughput for ``dtype`` on this GPU."""
        return self.spec.peak_flops_for(dtype)

    def vector_peak(self) -> float:
        """Derated CUDA-core throughput for non-GEMM arithmetic."""
        return self.spec.vector_flops * self.tuning.vector_utilization
