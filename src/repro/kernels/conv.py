"""Convolution kernel cost model (implicit GEMM).

Convolution is the operator the paper finds *becomes* the bottleneck of
diffusion-based TTI models once Flash Attention removes the attention
bottleneck (up to 44% of execution time, Section IV-A), and it is the
operator whose execution time scales fastest with image size (Figure 9).

cuDNN lowers convolutions to implicit GEMM on tensor cores: the output
pixels form the M dimension, output channels form N, and the unrolled
receptive field (Cin * kh * kw) forms K.  We reuse the GEMM tiling
efficiency model on that shape.
"""

from __future__ import annotations

import math

from repro.hw.memory import AccessPattern
from repro.ir.ops import Conv2d, Conv3d
from repro.ir.trace import KernelCost
from repro.kernels.base import CostModelBase, tile_quantization, wave_efficiency


class ConvCostModel(CostModelBase):
    """Times 2D and 3D convolutions via their implicit-GEMM shape."""

    def _implicit_gemm_dims(self, op: Conv2d | Conv3d) -> tuple[int, int, int]:
        if isinstance(op, Conv3d):
            m = op.batch * op.frames * op.out_h * op.out_w
            k = op.in_channels * op.kt * op.kh * op.kw
        else:
            m = op.batch * op.out_h * op.out_w
            k = (op.in_channels // op.groups) * op.kh * op.kw
        return m, op.out_channels, k

    def utilization(self, op: Conv2d | Conv3d) -> float:
        """Tensor-core efficiency of the implicit-GEMM lowering."""
        tuning = self.tuning
        m, n, k = self._implicit_gemm_dims(op)
        quant = tile_quantization(
            m, n, k,
            tuning.gemm_tile_m, tuning.gemm_tile_n, tuning.gemm_tile_k,
        )
        ctas = math.ceil(m / tuning.gemm_tile_m) * math.ceil(
            n / tuning.gemm_tile_n
        )
        wave = wave_efficiency(ctas, self.spec.sm_count)
        base = (
            tuning.conv_base_utilization
            if op.dtype.tensor_core
            else tuning.vector_utilization
        )
        return base * quant * wave

    def estimate(self, op: Conv2d | Conv3d) -> KernelCost:
        """Roofline cost of one convolution launch."""
        pattern = AccessPattern(working_set_bytes=op.total_bytes())
        return self.build_cost(
            flops=op.flops(),
            compute_peak=self.matmul_peak(op.dtype),
            utilization=self.utilization(op),
            moved_bytes=op.total_bytes(),
            pattern=pattern,
            launches=1,
        )
