"""Attention kernel analysis: lowering shapes and cache behaviour.

Two jobs live here:

1. :func:`attention_matmul_flops` / :func:`similarity_matrix_bytes` —
   the shape algebra shared by the analytical studies (Figures 11/13 use
   "the two main matmul operations" as their FLOP definition).

2. :func:`simulate_attention_cache` — the stand-in for the paper's
   Nsight Compute measurements (Figure 12).  It synthesizes the address
   streams the GEMM / softmax / elementwise kernels inside an attention
   module issue, and replays them through the set-associative cache
   simulator in :mod:`repro.hw.cache`.

   The model is built on how hits actually arise in these kernels:

   * **GEMM** requests are fully coalesced 128-byte lines; L1 hits come
     from *temporal reuse* — an SM re-reading the K operand for each
     query tile it processes.  Spatial attention (long sequences, many
     query tiles per batch) re-reads K constantly; temporal attention
     (sequence = frame count, a single query tile) never does.  This is
     the mechanism behind the ~10x L1 hit-rate gap.
   * **Softmax** hits come from the second (normalization) pass
     re-reading rows.  Long spatial rows spill registers and make that
     second pass through L1; short temporal rows (tens of frames) are
     register-resident, so every line is touched exactly once.
   * **Elementwise** kernels stream their operand once; their L2 hit
     rate is set by whether the producer kernel's output is still
     L2-resident — which favours the *small* temporal tensors, matching
     the paper's observation that temporal L2 hit rates for
     softmax/elementwise are the same or higher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.cache import SetAssociativeCache
from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.dtypes import FP16, FP32, DType
from repro.ir.ops import AttentionInfo


def attention_matmul_flops(
    batch: int, num_heads: int, seq_q: int, seq_kv: int, head_dim: int
) -> float:
    """FLOPs of the two attention matmuls (QK^T and PV).

    This is the paper's Figure 11/13 FLOP definition ("calculated by the
    two main matmul operations in Attention for simplicity").
    """
    return 4.0 * batch * num_heads * seq_q * seq_kv * head_dim


def similarity_matrix_bytes(
    batch: int,
    num_heads: int,
    seq_q: int,
    seq_kv: int,
    dtype: DType = FP16,
) -> float:
    """Bytes of the materialized N x N similarity matrix."""
    return float(batch * num_heads * seq_q * seq_kv * dtype.size)


@dataclass(frozen=True)
class KernelCacheRates:
    """Hit rates for one kernel class, as Nsight Compute would report."""

    l1_hit_rate: float
    l2_hit_rate: float


@dataclass(frozen=True)
class AttentionCacheReport:
    """Per-kernel cache hit rates for one attention configuration."""

    gemm: KernelCacheRates
    softmax: KernelCacheRates
    elementwise: KernelCacheRates

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Nested {kernel: {level: hit rate}} mapping."""
        return {
            "gemm": {
                "l1": self.gemm.l1_hit_rate, "l2": self.gemm.l2_hit_rate,
            },
            "softmax": {
                "l1": self.softmax.l1_hit_rate, "l2": self.softmax.l2_hit_rate,
            },
            "elementwise": {
                "l1": self.elementwise.l1_hit_rate,
                "l2": self.elementwise.l2_hit_rate,
            },
        }


# Rows shorter than this (bytes) stay in registers through the softmax,
# so the normalization pass issues no second read. PyTorch's dispatch
# uses a warp-level single-pass softmax for short rows.
SOFTMAX_REGISTER_THRESHOLD_BYTES = 8192

_LINE = 128


class _SimMachine:
    """A few simulated SM-private L1s sharing one L2."""

    def __init__(self, spec: GPUSpec, num_sms: int):
        self.num_sms = num_sms
        self.l1s = [SetAssociativeCache(spec.l1_per_sm) for _ in range(num_sms)]
        self.l2 = SetAssociativeCache(spec.l2)

    def access(self, sm: int, line_address: int) -> None:
        # Inlined SetAssociativeCache.access for both levels: this runs
        # millions of times per Figure 12 simulation, where the extra
        # call layers would dominate the wall time.  Mirrors the logic
        # in repro.hw.cache exactly (same counters, same LRU updates).
        l1 = self.l1s[sm % self.num_sms]
        line = line_address // l1._line_bytes
        tag, index = divmod(line, l1._num_sets)
        entries = l1._sets[index]
        l1._accesses += 1
        if tag in entries:
            del entries[tag]
            entries[tag] = None
            l1._hits += 1
            return
        if len(entries) >= l1._associativity:
            del entries[next(iter(entries))]
        entries[tag] = None
        l2 = self.l2
        line = line_address // l2._line_bytes
        tag, index = divmod(line, l2._num_sets)
        entries = l2._sets[index]
        l2._accesses += 1
        if tag in entries:
            del entries[tag]
            entries[tag] = None
            l2._hits += 1
            return
        if len(entries) >= l2._associativity:
            del entries[next(iter(entries))]
        entries[tag] = None

    def warm_l2(self, line_address: int) -> None:
        """Install a line in L2 (producer-kernel write), not counted."""
        self.l2.access(line_address)

    def finish_warmup(self) -> None:
        """Zero counters after warm-up so rates reflect the kernel only."""
        self.l2.clear_stats()
        for l1 in self.l1s:
            l1.clear_stats()

    def rates(self) -> KernelCacheRates:
        accesses = sum(c.stats.accesses for c in self.l1s)
        hits = sum(c.stats.hits for c in self.l1s)
        l1 = hits / accesses if accesses else 0.0
        l2 = self.l2.stats.hit_rate
        return KernelCacheRates(l1_hit_rate=l1, l2_hit_rate=l2)


def _lines(base: int, num_bytes: int) -> range:
    """Line addresses covering ``num_bytes`` starting at ``base``."""
    first = base // _LINE
    last = (base + num_bytes + _LINE - 1) // _LINE
    return range(first * _LINE, last * _LINE, _LINE)


def _k_tile_lines(
    base: int,
    tile_start: int,
    tile_rows: int,
    seq_kv: int,
    head_dim: int,
    stride_bytes: int,
    dtype: DType,
) -> list[int]:
    """Line addresses of one K tile (rows ``tile_start..+tile_rows``).

    Contiguous layout packs rows back to back; a strided (temporal) view
    places successive sequence positions ``stride_bytes`` apart.
    """
    row_bytes = head_dim * dtype.size
    rows = min(tile_rows, seq_kv - tile_start)
    if stride_bytes <= row_bytes:
        return list(_lines(base + tile_start * row_bytes, rows * row_bytes))
    addresses: list[int] = []
    for row in range(tile_start, tile_start + rows):
        addresses.extend(_lines(base + row * stride_bytes, row_bytes))
    return addresses


# CTAs co-resident on one SM. Co-resident CTAs walk the K operand in
# near lock-step; when they share a batch-head (spatial attention: many
# query tiles per batch), the trailing CTAs hit lines the leader just
# fetched. Temporal attention has one query tile per batch-head, so
# co-resident CTAs never share data.
_CORESIDENT_CTAS = 4


def _simulate_gemm(
    info: AttentionInfo,
    spec: GPUSpec,
    num_sms: int,
    tile_q: int,
    tile_kv: int,
    max_groups: int,
) -> KernelCacheRates:
    machine = _SimMachine(spec, num_sms)
    dtype = FP16
    tiles_q = max(1, math.ceil(info.seq_q / tile_q))
    tiles_kv = max(1, math.ceil(info.seq_kv / tile_kv))
    row_bytes = info.head_dim * dtype.size
    # Spread each batch-head's K far apart so streams never alias.
    kv_span = info.seq_kv * max(info.element_stride_bytes, row_bytes)
    region = 1 << max(kv_span - 1, 1).bit_length()
    q_region_base = 1 << 44  # Q lives far away from K.

    batch_heads = info.batch * info.num_heads
    needed_bh = min(
        batch_heads,
        (max_groups * _CORESIDENT_CTAS) // tiles_q + 1,
    )
    ctas = [
        (bh, qt) for bh in range(needed_bh) for qt in range(tiles_q)
    ]
    q_tile_bytes = tile_q * row_bytes
    for group_index, start in enumerate(range(0, len(ctas), _CORESIDENT_CTAS)):
        if group_index >= max_groups:
            break
        sm = group_index % num_sms
        members = ctas[start:start + _CORESIDENT_CTAS]
        for bh, qt in members:
            q_base = q_region_base + (bh * tiles_q + qt) * q_tile_bytes
            for address in _lines(q_base, q_tile_bytes):
                machine.access(sm, address)
        for kvt in range(tiles_kv):
            for bh, qt in members:
                for address in _k_tile_lines(
                    bh * region, kvt * tile_kv, tile_kv,
                    info.seq_kv, info.head_dim,
                    info.element_stride_bytes, dtype,
                ):
                    machine.access(sm, address)
    return machine.rates()


def _simulate_softmax(
    info: AttentionInfo,
    spec: GPUSpec,
    num_sms: int,
    s_dtype: DType,
    max_rows: int,
) -> KernelCacheRates:
    machine = _SimMachine(spec, num_sms)
    row_bytes = info.seq_kv * s_dtype.size
    two_pass = row_bytes > SOFTMAX_REGISTER_THRESHOLD_BYTES
    total_rows = info.batch * info.num_heads * info.seq_q
    rows = min(total_rows, max_rows)
    # Sample rows uniformly across the similarity matrix so the fraction
    # falling in the L2-warm tail (most recent QK^T writes) is faithful.
    step = max(1, total_rows // rows)
    sampled = list(range(0, total_rows, step))[:rows]
    s_bytes_total = total_rows * row_bytes
    warm_bytes = min(s_bytes_total, spec.l2.capacity_bytes)
    warm_start = s_bytes_total - warm_bytes
    for row in sampled:
        if row * row_bytes >= warm_start:
            for address in _lines(row * row_bytes, row_bytes):
                machine.warm_l2(address)
    machine.finish_warmup()
    for index, row in enumerate(sampled):
        sm = index % num_sms
        base = row * row_bytes
        passes = 2 if two_pass else 1
        for _ in range(passes):
            for address in _lines(base, row_bytes):
                machine.access(sm, address)
    return machine.rates()


def _simulate_elementwise(
    info: AttentionInfo,
    spec: GPUSpec,
    num_sms: int,
    s_dtype: DType,
    max_lines: int,
) -> KernelCacheRates:
    machine = _SimMachine(spec, num_sms)
    tensor_bytes = int(
        info.batch * info.num_heads * info.seq_q * info.seq_kv * s_dtype.size
    )
    total_lines = max(1, tensor_bytes // _LINE)
    lines = min(total_lines, max_lines)
    # Sample lines uniformly so the L2-warm tail fraction is faithful.
    step = max(1, total_lines // lines)
    sampled = list(range(0, total_lines, step))[:lines]
    warm_lines = min(total_lines, spec.l2.capacity_bytes // _LINE)
    warm_start_line = total_lines - warm_lines
    for line in sampled:
        if line >= warm_start_line:
            machine.warm_l2(line * _LINE)
    machine.finish_warmup()
    # Broadcast scale vector re-read per chunk gives both variants a
    # small amount of genuine L1 reuse.
    broadcast_base = 1 << 45
    for index, line in enumerate(sampled):
        sm = index % num_sms
        machine.access(sm, line * _LINE)
        if index % 8 == 0:
            machine.access(sm, broadcast_base + (index // 1024) * _LINE)
    return machine.rates()


def simulate_attention_cache(
    info: AttentionInfo,
    spec: GPUSpec = A100_80GB,
    *,
    s_dtype: DType = FP32,
    num_sms: int = 4,
    max_groups: int = 24,
    max_rows: int = 2048,
    max_lines: int = 65536,
) -> AttentionCacheReport:
    """Replay an attention module's kernels through the cache simulator.

    Args:
        info: the attention configuration (spatial attention passes a
            contiguous layout; temporal attention passes the strided
            layout of Figure 10).
        spec: GPU whose cache geometry to simulate.
        s_dtype: precision of the materialized similarity matrix
            (PyTorch upcasts to FP32 in the baseline path).
        num_sms: simulated SM count; hit rates converge quickly.
        max_groups / max_rows / max_lines: trace-size caps per kernel.

    Returns:
        Hit rates per kernel class, comparable to the Figure 12 bars.
    """
    tile_q, tile_kv = 128, 64
    return AttentionCacheReport(
        gemm=_simulate_gemm(info, spec, num_sms, tile_q, tile_kv, max_groups),
        softmax=_simulate_softmax(info, spec, num_sms, s_dtype, max_rows),
        elementwise=_simulate_elementwise(
            info, spec, num_sms, s_dtype, max_lines
        ),
    )
