"""Normalization / softmax / elementwise kernel cost models.

These kernels are pure bandwidth: their time is the number of passes
over their operand divided by the bandwidth of wherever that operand
lives.  GroupNorm's 4-11% share of diffusion-model time (Figure 6) and
the softmax cost of baseline attention both come straight from this
model.
"""

from __future__ import annotations

from repro.hw.memory import AccessPattern
from repro.ir.ops import Elementwise, Embedding, GroupNorm, LayerNorm, Resample, Softmax, Transpose
from repro.ir.trace import KernelCost
from repro.kernels.base import CostModelBase

BandwidthOp = (
    Softmax | GroupNorm | LayerNorm | Elementwise | Embedding | Resample | Transpose
)


class BandwidthCostModel(CostModelBase):
    """Times memory-bound kernels."""

    def access_pattern(self, op: BandwidthOp) -> AccessPattern:
        """Locality of the kernel's streaming operand."""
        stride = 0
        if op.attention is not None:
            stride = op.attention.element_stride_bytes
        return AccessPattern(
            working_set_bytes=op.total_bytes(),
            element_stride_bytes=stride,
            element_bytes=op.dtype.size,
        )

    def estimate(self, op: BandwidthOp) -> KernelCost:
        """Bandwidth-bound cost of one launch."""
        derate = self.locality_derate(op)
        if (
            isinstance(op, (GroupNorm, LayerNorm))
            and op.total_bytes() < self.tuning.norm_derate_threshold_bytes
        ):
            derate *= self.tuning.norm_bandwidth_derate
        return self.build_cost(
            flops=op.flops(),
            compute_peak=self.vector_peak(),
            utilization=1.0,
            moved_bytes=op.total_bytes(),
            pattern=self.access_pattern(op),
            launches=1,
            bandwidth_derate=derate,
        )
