"""Cost-model dispatch: one entry point for the execution context."""

from __future__ import annotations

from repro.hw.spec import GPUSpec
from repro.ir.ops import (
    Conv2d,
    Conv3d,
    Elementwise,
    Embedding,
    FusedAttention,
    Gemm,
    GroupNorm,
    LayerNorm,
    Op,
    Resample,
    Softmax,
    Transpose,
)
from repro.ir.trace import KernelCost
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.kernels.conv import ConvCostModel
from repro.kernels.flash_attention import FlashAttentionCostModel
from repro.kernels.gemm import GemmCostModel
from repro.kernels.normalization import BandwidthCostModel


class CostEstimator:
    """Routes each operator to its kernel cost model."""

    def __init__(self, spec: GPUSpec, tuning: TuningConstants = DEFAULT_TUNING):
        self.spec = spec
        self.tuning = tuning
        self.gemm = GemmCostModel(spec, tuning)
        self.conv = ConvCostModel(spec, tuning)
        self.flash = FlashAttentionCostModel(spec, tuning)
        self.bandwidth = BandwidthCostModel(spec, tuning)

    def estimate(self, op: Op) -> KernelCost:
        """Cost one operator launch via its kernel model."""
        if isinstance(op, Gemm):
            return self.gemm.estimate(op)
        if isinstance(op, (Conv2d, Conv3d)):
            return self.conv.estimate(op)
        if isinstance(op, FusedAttention):
            return self.flash.estimate(op)
        if isinstance(
            op,
            (Softmax, GroupNorm, LayerNorm, Elementwise, Embedding, Resample,
             Transpose),
        ):
            return self.bandwidth.estimate(op)
        raise TypeError(f"no cost model for operator type {type(op).__name__}")


class CachingCostEstimator(CostEstimator):
    """Cost estimator with operator memoization.

    Operators are frozen (hashable) dataclasses and model traces repeat
    the same shapes thousands of times, so costing is a dictionary hit
    after the first occurrence.  The distributed executor leans on this:
    re-pricing a 40k-event trace for every rank of an 8-way partition
    touches only a few hundred distinct shapes.
    """

    def __init__(self, spec: GPUSpec, tuning: TuningConstants = DEFAULT_TUNING):
        super().__init__(spec, tuning)
        self._cache: dict[Op, KernelCost] = {}

    def estimate(self, op: Op) -> KernelCost:
        """Cost one operator launch, memoized by operator value."""
        cached = self._cache.get(op)
        if cached is None:
            cached = super().estimate(op)
            self._cache[op] = cached
        return cached

    def cache_size(self) -> int:
        """Distinct operator shapes priced so far."""
        return len(self._cache)
