"""Cost-model dispatch: one entry point for the execution context."""

from __future__ import annotations

from repro.hw.spec import GPUSpec
from repro.ir.ops import (
    Conv2d,
    Conv3d,
    Elementwise,
    Embedding,
    FusedAttention,
    Gemm,
    GroupNorm,
    LayerNorm,
    Op,
    Resample,
    Softmax,
    Transpose,
)
from repro.ir.trace import KernelCost
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.kernels.cache import (
    GLOBAL_COST_CACHE,
    caching_disabled_by_env,
    machine_token,
)
from repro.kernels.conv import ConvCostModel
from repro.kernels.flash_attention import FlashAttentionCostModel
from repro.kernels.gemm import GemmCostModel
from repro.kernels.normalization import BandwidthCostModel


class CostEstimator:
    """Routes each operator to its kernel cost model.

    Costs are memoized in the process-wide
    :data:`repro.kernels.cache.GLOBAL_COST_CACHE`, content-addressed on
    (operator, GPU spec, tuning), so every estimator pricing the same
    machine shares one table.  Pass ``use_cache=False`` (or set
    ``REPRO_NO_CACHE=1``) to price every operator from scratch.
    """

    def __init__(
        self,
        spec: GPUSpec,
        tuning: TuningConstants = DEFAULT_TUNING,
        *,
        use_cache: bool | None = None,
    ):
        self.spec = spec
        self.tuning = tuning
        self.gemm = GemmCostModel(spec, tuning)
        self.conv = ConvCostModel(spec, tuning)
        self.flash = FlashAttentionCostModel(spec, tuning)
        self.bandwidth = BandwidthCostModel(spec, tuning)
        if use_cache is None:
            use_cache = not caching_disabled_by_env()
        self.cache_token = machine_token(spec, tuning) if use_cache else None
        if use_cache:
            # Bound methods resolved once: estimate() is the hottest
            # call in the simulator and runs a few hundred thousand
            # times per experiment sweep.
            self._bucket = GLOBAL_COST_CACHE.bucket(self.cache_token)
            self._get_or_compute = GLOBAL_COST_CACHE.get_or_compute
            self._count_hit = GLOBAL_COST_CACHE.count_hit

    def compute_estimate(self, op: Op) -> KernelCost:
        """Price one operator launch via its kernel model (uncached)."""
        if isinstance(op, Gemm):
            return self.gemm.estimate(op)
        if isinstance(op, (Conv2d, Conv3d)):
            return self.conv.estimate(op)
        if isinstance(op, FusedAttention):
            return self.flash.estimate(op)
        if isinstance(
            op,
            (Softmax, GroupNorm, LayerNorm, Elementwise, Embedding, Resample,
             Transpose),
        ):
            return self.bandwidth.estimate(op)
        raise TypeError(f"no cost model for operator type {type(op).__name__}")

    def estimate(self, op: Op) -> KernelCost:
        """Cost one operator launch (shared-cache hit after the first)."""
        if self.cache_token is None:
            return self.compute_estimate(op)
        cost = self._bucket.get(op)
        if cost is None:
            return self._get_or_compute(
                self.cache_token, op, self.compute_estimate
            )
        self._count_hit()
        return cost

    def cache_size(self) -> int:
        """Distinct operator shapes priced for this machine so far."""
        if self.cache_token is None:
            return 0
        return len(GLOBAL_COST_CACHE.bucket(self.cache_token))


class CachingCostEstimator(CostEstimator):
    """Backwards-compatible alias for the (now always caching) estimator.

    Earlier revisions memoized per instance; the cache now lives in
    :data:`repro.kernels.cache.GLOBAL_COST_CACHE` so the profiler, the
    distributed sharder and the fleet simulator share hits.  The name is
    kept because the distributed layer and external callers construct it
    directly.
    """

