"""GEMM kernel cost model.

Linear layers are the paper's headline bottleneck for transformer-based
TTI models (up to 49% of execution time after Flash Attention), so the
GEMM model carries the most calibration weight.  It is a roofline with
two shape effects layered on top:

* **tile quantization** — dimensions are padded to the kernel's tile
  shape, so skinny GEMMs (autoregressive decode: m=1) waste almost all
  issued math;
* **wave quantization** — the CTA grid rarely divides the SM count.
"""

from __future__ import annotations

import math

from repro.hw.memory import AccessPattern
from repro.ir.ops import Gemm
from repro.ir.trace import KernelCost
from repro.kernels.base import CostModelBase, tile_quantization, wave_efficiency


class GemmCostModel(CostModelBase):
    """Times a (batched) GEMM on the configured GPU."""

    def utilization(self, op: Gemm) -> float:
        """Fraction of peak matmul throughput this shape achieves."""
        tuning = self.tuning
        quant = tile_quantization(
            op.m, op.n, op.k,
            tuning.gemm_tile_m, tuning.gemm_tile_n, tuning.gemm_tile_k,
        )
        ctas = (
            math.ceil(op.m / tuning.gemm_tile_m)
            * math.ceil(op.n / tuning.gemm_tile_n)
            * op.batch
        )
        wave = wave_efficiency(ctas, self.spec.sm_count)
        base = (
            tuning.gemm_base_utilization
            if op.dtype.tensor_core
            else tuning.vector_utilization
        )
        return base * quant * wave

    def access_pattern(self, op: Gemm) -> AccessPattern:
        """Working set decides the residence level of the traffic.

        The attention similarity matrix written by QK^T (and re-read by
        PV) is the interesting case: when it spills past L2 the GEMM runs
        at HBM bandwidth, which is the traffic Flash Attention removes.
        """
        working_set = op.read_bytes() + op.write_bytes()
        stride = 0
        if op.attention is not None:
            stride = op.attention.element_stride_bytes
        return AccessPattern(
            working_set_bytes=working_set,
            element_stride_bytes=stride,
            element_bytes=op.dtype.size,
        )

    def estimate(self, op: Gemm) -> KernelCost:
        """Roofline cost of one (batched) GEMM launch."""
        peak = self.matmul_peak(op.dtype)
        return self.build_cost(
            flops=op.flops(),
            compute_peak=peak,
            utilization=self.utilization(op),
            moved_bytes=op.total_bytes(),
            pattern=self.access_pattern(op),
            launches=1,
            bandwidth_derate=self.locality_derate(op),
        )
