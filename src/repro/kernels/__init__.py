"""GPU kernel cost models and kernel-level analyses."""

from repro.kernels.attention import (
    AttentionCacheReport,
    KernelCacheRates,
    attention_matmul_flops,
    similarity_matrix_bytes,
    simulate_attention_cache,
)
from repro.kernels.base import (
    DEFAULT_TUNING,
    CostModelBase,
    TuningConstants,
    tile_quantization,
    wave_efficiency,
)
from repro.kernels.conv import ConvCostModel
from repro.kernels.estimator import CachingCostEstimator, CostEstimator
from repro.kernels.flash_attention import FlashAttentionCostModel
from repro.kernels.gemm import GemmCostModel
from repro.kernels.normalization import BandwidthCostModel

__all__ = [
    "AttentionCacheReport",
    "BandwidthCostModel",
    "CachingCostEstimator",
    "ConvCostModel",
    "CostEstimator",
    "CostModelBase",
    "DEFAULT_TUNING",
    "FlashAttentionCostModel",
    "GemmCostModel",
    "KernelCacheRates",
    "TuningConstants",
    "attention_matmul_flops",
    "similarity_matrix_bytes",
    "simulate_attention_cache",
    "tile_quantization",
    "wave_efficiency",
]
