"""Flash Attention (V2) fused-kernel cost model.

Flash Attention tiles the attention computation so the N x N similarity
matrix never round-trips to HBM: traffic drops from O(N^2) to the O(N)
Q/K/V/O tensors, and the 3-5 kernel launches of baseline attention
collapse to one.  FLOPs are unchanged.  This is precisely the
optimization whose end-to-end effect the paper measures in Table II and
whose kernel-level speedup it finds to be 1.1-2.5x greater for
diffusion models (prefill-shaped, large N) than for transformer TTI
models (decode-shaped, N_q small) — an asymmetry that emerges naturally
from this traffic model.
"""

from __future__ import annotations

import math

from repro.hw.memory import AccessPattern
from repro.ir.ops import FusedAttention
from repro.ir.trace import KernelCost
from repro.kernels.base import CostModelBase, wave_efficiency


class FlashAttentionCostModel(CostModelBase):
    """Times a fused (Flash) attention kernel."""

    def utilization(self, op: FusedAttention) -> float:
        """Tensor-core efficiency of the fused kernel.

        Tiles are ``flash_tile_q x flash_tile_kv``; short query or key
        sequences pay padding, exactly as skinny GEMMs do.  The softmax
        rescaling between tiles costs a further fixed fraction, folded
        into the base utilization constant.
        """
        tuning = self.tuning
        tile_q = tuning.flash_tile_q
        tile_kv = tuning.flash_tile_kv
        quant_q = op.seq_q / (math.ceil(op.seq_q / tile_q) * tile_q)
        quant_kv = op.seq_kv / (math.ceil(op.seq_kv / tile_kv) * tile_kv)
        # Head dims below 64 under-fill the MMA fragments.
        quant_d = min(1.0, op.head_dim / 64)
        ctas = op.batch * op.num_heads * math.ceil(op.seq_q / tile_q)
        wave = wave_efficiency(ctas, self.spec.sm_count)
        return (
            tuning.flash_base_utilization * quant_q * quant_kv * quant_d * wave
        )

    def access_pattern(self, op: FusedAttention) -> AccessPattern:
        """Locality of the fused kernel's Q/K/V/O streams."""
        stride = 0
        if op.attention is not None:
            stride = op.attention.element_stride_bytes
        return AccessPattern(
            working_set_bytes=op.total_bytes(),
            element_stride_bytes=stride,
            element_bytes=op.dtype.size,
        )

    def estimate(self, op: FusedAttention) -> KernelCost:
        """Roofline cost of one fused attention launch."""
        return self.build_cost(
            flops=op.flops(),
            compute_peak=self.matmul_peak(op.dtype),
            utilization=self.utilization(op),
            moved_bytes=op.total_bytes(),
            pattern=self.access_pattern(op),
            launches=1,
            bandwidth_derate=self.locality_derate(op),
        )
