"""Process-wide kernel-cost cache.

Every ``profile()``, sweep and fleet step prices operators through the
same roofline formulas, and the formulas are pure functions of
``(operator, GPU spec, tuning constants)``.  This module memoizes them
once per process so the profiler, the distributed sharder and the fleet
simulator all share one table: re-pricing a 40k-event trace on a machine
that has been seen before is a dictionary walk, not a model evaluation.

Keys are *content-addressed*: a machine token is built from every field
of the :class:`~repro.hw.spec.GPUSpec` and
:class:`~repro.kernels.base.TuningConstants` that the cost models read,
so two spec objects with equal content share entries and a spec with any
field changed (a mutated machine registry entry, an ablation's perturbed
tuning constant) can never alias a stale cost.  Explicit invalidation
exists for the registry-replacement path
(:func:`repro.distributed.registry.register_machine` with
``replace=True``) and for tests.

The cache is transparent by construction — hit and miss return the same
frozen :class:`~repro.ir.trace.KernelCost` value — and the property
tests in ``tests/kernels/test_cost_cache_properties.py`` verify exactly
that.  Set ``REPRO_NO_CACHE=1`` to disable every caching layer (this
one, subgraph replay and the profile cache) and fall back to the
uncached paths; the determinism suite diffs the two modes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.hw.spec import GPUSpec
    from repro.ir.ops import Op
    from repro.ir.trace import KernelCost
    from repro.kernels.base import TuningConstants

#: Environment variable that disables all caching layers when set to a
#: non-empty value other than ``0``.
NO_CACHE_ENV = "REPRO_NO_CACHE"

MachineToken = tuple


def caching_disabled_by_env() -> bool:
    """True when ``REPRO_NO_CACHE`` requests uncached execution."""
    value = os.environ.get(NO_CACHE_ENV, "")
    return value not in ("", "0")


def machine_token(spec: "GPUSpec", tuning: "TuningConstants") -> MachineToken:
    """Content fingerprint of one (GPU spec, tuning) pricing context.

    The token starts with the spec name so per-machine invalidation can
    match buckets without holding spec references.
    """
    return (
        spec.name,
        spec.sm_count,
        tuple(sorted(spec.peak_flops.items())),
        spec.vector_flops,
        spec.dram_bandwidth,
        spec.dram_capacity,
        spec.l2,
        spec.l1_per_sm,
        spec.kernel_launch_overhead_s,
        tuning,
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters surfaced by :meth:`KernelCostCache.stats`."""

    hits: int
    misses: int
    entries: int
    machines: int

    @property
    def lookups(self) -> int:
        """Total number of cost lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class KernelCostCache:
    """Two-level memo table: machine token -> operator -> cost."""

    def __init__(self) -> None:
        self._machines: dict[MachineToken, dict["Op", "KernelCost"]] = {}
        self._hits = 0
        self._misses = 0

    def bucket(self, token: MachineToken) -> dict["Op", "KernelCost"]:
        """The op->cost table for one machine token (created on demand)."""
        table = self._machines.get(token)
        if table is None:
            table = self._machines[token] = {}
        return table

    def get_or_compute(
        self,
        token: MachineToken,
        op: "Op",
        compute: Callable[["Op"], "KernelCost"],
    ) -> "KernelCost":
        """Cached cost of ``op`` under ``token``; prices it on a miss."""
        table = self.bucket(token)
        cost = table.get(op)
        if cost is None:
            self._misses += 1
            cost = compute(op)
            table[op] = cost
        else:
            self._hits += 1
        return cost

    def count_hit(self) -> None:
        """Record a hit served from a bucket reference (fast path)."""
        self._hits += 1

    # -- invalidation ------------------------------------------------------

    def invalidate_machine(self, name: str) -> int:
        """Drop every entry priced on a GPU spec named ``name``.

        Returns the number of entries dropped.  Called by the machine
        registry when a machine is replaced, so costs priced on the old
        spec cannot survive the swap even if a stale estimator keeps its
        token alive.
        """
        dropped = 0
        for token in [t for t in self._machines if t[0] == name]:
            dropped += len(self._machines.pop(token))
        return dropped

    def invalidate_spec(self, spec: "GPUSpec") -> int:
        """Drop entries for any tuning paired with ``spec``'s name."""
        return self.invalidate_machine(spec.name)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._machines.clear()
        self._hits = 0
        self._misses = 0

    # -- introspection -----------------------------------------------------

    def stats(self) -> CacheStats:
        """Current hit/miss counters and table sizes."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=sum(len(t) for t in self._machines.values()),
            machines=len(self._machines),
        )


#: The process-wide cache instance shared by every ``CostEstimator``.
GLOBAL_COST_CACHE = KernelCostCache()


def cost_cache_stats() -> CacheStats:
    """Stats API: counters of the shared kernel-cost cache."""
    return GLOBAL_COST_CACHE.stats()


def clear_cost_cache() -> None:
    """Reset the shared kernel-cost cache (tests, ablations)."""
    GLOBAL_COST_CACHE.clear()
