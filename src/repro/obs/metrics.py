"""Time-series metric types sampled on simulated-time ticks.

The :class:`repro.obs.telemetry.Telemetry` collector samples fleet
state lazily at every multiple of its ``sample_interval_s``: the
simulation state is piecewise-constant between events, so a sample at
boundary ``t`` is taken the moment the event clock first passes ``t``
and reflects the state after every event at or before ``t`` — no
sampling events ever enter the simulation heap (which would perturb
event sequence numbers and change outcomes).  A final sample lands
exactly at the run's makespan, so every series covers the full run
and never extends past it.

Two series shapes come out:

* :class:`MetricSeries` — a scalar per sample time.  ``counter``
  metrics are cumulative and monotone non-decreasing (completions,
  sheds, breaker opens); ``gauge`` metrics are instantaneous levels
  (queue depth, busy servers, brownout rung).
* :class:`HistogramSeries` — a bucket-count row per sample *window*:
  the observations (completion latencies) that fell in
  ``(previous sample, this sample]``, bucketed against fixed edges.
"""

from __future__ import annotations

from dataclasses import dataclass

METRIC_KINDS = ("counter", "gauge")
"""The two scalar series kinds."""


def bucket_index(edges: tuple[float, ...], value: float) -> int:
    """The histogram bucket a value falls in.

    ``edges`` are the ascending upper bounds of the first
    ``len(edges)`` buckets; values above the last edge land in the
    overflow bucket ``len(edges)`` — a histogram row therefore has
    ``len(edges) + 1`` counts.
    """
    for index, edge in enumerate(edges):
        if value <= edge:
            return index
    return len(edges)


@dataclass(frozen=True)
class MetricSeries:
    """One named scalar time series (counter or gauge).

    ``times`` are strictly increasing sample timestamps; ``values``
    is aligned.  Counters are cumulative totals at the sample time;
    gauges are the instantaneous level at the sample time.
    """

    name: str
    kind: str
    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValueError(
                f"unknown metric kind {self.kind!r}; "
                f"known: {METRIC_KINDS}"
            )
        if len(self.times) != len(self.values):
            raise ValueError("times and values must align")

    @property
    def final(self) -> float:
        """The last sampled value (0.0 for an empty series)."""
        return self.values[-1] if self.values else 0.0

    @property
    def peak(self) -> float:
        """The largest sampled value (0.0 for an empty series)."""
        return max(self.values) if self.values else 0.0

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last sample at or before ``t``.

        Returns 0.0 before the first sample — counters start at zero
        and gauges are unobserved until the first boundary.
        """
        value = 0.0
        for ts, sampled in zip(self.times, self.values):
            if ts > t:
                break
            value = sampled
        return value

    def first_time_above(self, threshold: float) -> float | None:
        """Earliest sample time with ``value > threshold``, if any."""
        for ts, sampled in zip(self.times, self.values):
            if sampled > threshold:
                return ts
        return None


@dataclass(frozen=True)
class HistogramSeries:
    """A windowed histogram: one bucket-count row per sample window.

    Row ``i`` counts the observations recorded in the half-open
    window ``(times[i-1], times[i]]`` (from simulation start for the
    first row), bucketed against ``edges`` as in
    :func:`bucket_index`; each row has ``len(edges) + 1`` counts
    (the last is overflow).
    """

    name: str
    edges: tuple[float, ...]
    times: tuple[float, ...]
    counts: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be ascending")
        if len(self.times) != len(self.counts):
            raise ValueError("times and count rows must align")
        width = len(self.edges) + 1
        if any(len(row) != width for row in self.counts):
            raise ValueError(
                f"each count row needs {width} buckets"
            )

    @property
    def total(self) -> int:
        """Total observations across every window."""
        return sum(sum(row) for row in self.counts)

    def totals(self) -> tuple[int, ...]:
        """Per-bucket totals summed over every window."""
        width = len(self.edges) + 1
        sums = [0] * width
        for row in self.counts:
            for index, count in enumerate(row):
                sums[index] += count
        return tuple(sums)
