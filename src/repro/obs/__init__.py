"""Fleet observability: spans, metrics, exporters and alerts.

The fleet engines (:mod:`repro.serving.fleet` and
:mod:`repro.serving.columnar`) are deterministic black boxes between
"workload in" and "FleetReport out" — admission decisions, breaker
trips, hedge cancellations, brownout rung changes and autoscaler
actions all happen invisibly.  This package is the flight recorder:

* :class:`Telemetry` — the collector both engines emit into when a
  ``simulate_fleet(..., telemetry=...)`` kwarg is passed.  Zero
  overhead when absent (every hook is an ``if telemetry is None``
  guard) and **purely observational** when present: a telemetry-on
  run produces a bit-identical ``FleetReport`` to a telemetry-off
  run, because the collector never schedules events or touches
  simulation state.
* :class:`~repro.obs.spans.RequestSpan` — per-request timestamped
  state transitions (submit → admit/shed → dispatch →
  complete/retry/hedge/cancel) with the pool/server/rung involved.
* :class:`~repro.obs.metrics.MetricSeries` /
  :class:`~repro.obs.metrics.HistogramSeries` — counters, gauges and
  windowed latency histograms sampled on simulated-time ticks.
* :mod:`repro.obs.export` — versioned, byte-deterministic JSONL
  telemetry traces (same canonical-bytes discipline as
  ``TrafficTrace``), gated in CI by
  ``tools/check_telemetry_schema.py``.
* :mod:`repro.obs.perfetto` — Chrome-trace/Perfetto export rendering
  a fleet run as per-server lanes with request slices, instant
  events and counter tracks.
* :mod:`repro.obs.alerts` — multi-window SLO burn-rate alert rules
  (Google-SRE style) evaluated over the recorded spans.

``python -m repro.obs`` summarizes and queries saved telemetry files.
See ``docs/OBSERVABILITY.md`` for the span schema, metric names and
alert semantics.  All times are simulated seconds (``_s`` suffix).
"""

from repro.obs.alerts import (
    DEFAULT_RULES,
    AlertFiring,
    BurnRateRule,
    evaluate_alerts,
)
from repro.obs.export import (
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    dumps_telemetry,
    load_telemetry,
    loads_telemetry,
    save_telemetry,
)
from repro.obs.metrics import HistogramSeries, MetricSeries
from repro.obs.perfetto import (
    save_chrome_telemetry,
    telemetry_to_chrome_trace,
)
from repro.obs.spans import (
    SPAN_STATES,
    TERMINAL_STATES,
    RequestSpan,
    SpanEvent,
    validate_span,
)
from repro.obs.telemetry import FleetEvent, Telemetry, TelemetryLog

__all__ = [
    "AlertFiring",
    "BurnRateRule",
    "DEFAULT_RULES",
    "FleetEvent",
    "HistogramSeries",
    "MetricSeries",
    "RequestSpan",
    "SPAN_STATES",
    "SpanEvent",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_VERSION",
    "TERMINAL_STATES",
    "Telemetry",
    "TelemetryLog",
    "dumps_telemetry",
    "evaluate_alerts",
    "load_telemetry",
    "loads_telemetry",
    "save_chrome_telemetry",
    "save_telemetry",
    "telemetry_to_chrome_trace",
    "validate_span",
]
