"""Multi-window SLO burn-rate alert rules over telemetry streams.

Implements the Google-SRE multi-window, multi-burn-rate alerting
pattern: the **burn rate** at time ``t`` over a trailing window ``w``
is ``(bad / (good + bad)) / (1 - objective)`` — how many times faster
than sustainable the error budget was spent in that window (1.0 means
exactly on budget).  A rule fires when *both* its long window (the
significance test) and its short window (the "is it still happening"
reset) exceed the threshold, which pages quickly on fast burns
without staying red for hours after recovery.

"Good" events are completions within the model's deadline; "bad"
events are late completions, failures and admission sheds — the same
goodput definition :mod:`repro.serving.slo` reports, evaluated here
per terminal-event timestamp from the recorded spans so the burn is
a *time series*, not a run-level aggregate.  Windows with no traffic
burn nothing.

Evaluation is deterministic: burn rates are computed at every
multiple of ``step_s`` across the run (plus the makespan) and
consecutive firing steps merge into one :class:`AlertFiring`
interval.  :func:`repro.serving.slo.render_alerts` renders firings
next to the SLO tables; the ``alerts`` subcommand of
``python -m repro.obs`` evaluates them from a saved telemetry file.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.obs.telemetry import TelemetryLog


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Attributes:
        name: rule label (appears in firings and reports).
        objective: goodput objective the error budget derives from
            (0.999 = three nines).
        long_window_s: trailing window whose burn must exceed the
            threshold for significance.
        short_window_s: shorter window that must *also* exceed it,
            so recovered incidents stop firing quickly.
        threshold: burn-rate multiple that fires the rule (14.4 with
            a 1h/5m pair is the classic "2% of a 30-day budget in
            one hour" page).
        severity: free-form label (``"page"``, ``"ticket"``).
    """

    name: str
    objective: float = 0.999
    long_window_s: float = 3600.0
    short_window_s: float = 300.0
    threshold: float = 14.4
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if not 0.0 < self.short_window_s <= self.long_window_s:
            raise ValueError(
                "need 0 < short_window_s <= long_window_s"
            )
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")


DEFAULT_RULES = (
    BurnRateRule(
        name="fast-burn", objective=0.999,
        long_window_s=3600.0, short_window_s=300.0,
        threshold=14.4, severity="page",
    ),
    BurnRateRule(
        name="slow-burn", objective=0.999,
        long_window_s=6.0 * 3600.0, short_window_s=1800.0,
        threshold=6.0, severity="ticket",
    ),
)
"""The SRE-book 1h/5m page and 6h/30m ticket rule pair.

Sized for day-scale simulations; shorter runs should scale the
windows down with the run (the obs1 experiment uses minute-scale
windows over a ~half-hour spike).
"""


@dataclass(frozen=True)
class AlertFiring:
    """One contiguous interval during which a rule fired.

    ``peak_burn`` is the largest long-window burn rate observed at
    any evaluation step inside the interval.
    """

    rule: str
    severity: str
    start_s: float
    end_s: float
    peak_burn: float

    @property
    def duration_s(self) -> float:
        """How long the rule stayed firing."""
        return self.end_s - self.start_s


class _BurnSeries:
    """Prefix-summed good/bad terminal events for window queries."""

    def __init__(self, terminals: list[tuple[float, bool]]):
        terminals.sort(key=lambda item: item[0])
        self.times = [ts for ts, _ in terminals]
        self.good_prefix = [0]
        self.bad_prefix = [0]
        for _, good in terminals:
            self.good_prefix.append(
                self.good_prefix[-1] + (1 if good else 0)
            )
            self.bad_prefix.append(
                self.bad_prefix[-1] + (0 if good else 1)
            )

    def burn(self, t: float, window_s: float, objective: float) -> float:
        """Burn rate over the half-open window ``(t - w, t]``."""
        lo = bisect_right(self.times, t - window_s)
        hi = bisect_right(self.times, t)
        good = self.good_prefix[hi] - self.good_prefix[lo]
        bad = self.bad_prefix[hi] - self.bad_prefix[lo]
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - objective)


def _terminals(
    log: TelemetryLog, deadlines: Mapping[str, float] | float
) -> list[tuple[float, bool]]:
    """(timestamp, good?) per settled request from the spans."""
    out: list[tuple[float, bool]] = []
    for span in log.spans:
        terminal = span.terminal
        if terminal is None:
            continue
        if terminal.state == "complete":
            if isinstance(deadlines, Mapping):
                deadline = deadlines.get(span.model)
                if deadline is None:
                    raise ValueError(
                        f"no deadline for model {span.model!r}"
                    )
            else:
                deadline = deadlines
            good = (
                terminal.ts_s - span.submitted_at_s <= deadline
            )
        else:
            good = False
        out.append((terminal.ts_s, good))
    return out


def evaluate_alerts(
    log: TelemetryLog,
    deadlines: Mapping[str, float] | float,
    rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    *,
    step_s: float | None = None,
) -> tuple[AlertFiring, ...]:
    """Evaluate burn-rate rules over a telemetry log.

    ``deadlines`` maps model name to its latency deadline in seconds
    (a scalar applies to every model), exactly as in
    :func:`repro.serving.slo.slo_report`.  Burn rates are evaluated
    at every multiple of ``step_s`` (default: the log's sampling
    interval) from 0 through the makespan; a rule fires at a step
    when both its windows exceed its threshold, and consecutive
    firing steps merge into one interval per rule.  Firings are
    returned ordered by rule declaration, then start time.
    """
    if step_s is None:
        step_s = log.sample_interval_s
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    series = _BurnSeries(_terminals(log, deadlines))
    steps: list[float] = []
    k = 0
    while k * step_s < log.makespan_s:
        steps.append(k * step_s)
        k += 1
    steps.append(log.makespan_s)
    firings: list[AlertFiring] = []
    for rule in rules:
        start: float | None = None
        last: float = 0.0
        peak = 0.0
        for t in steps:
            long_burn = series.burn(
                t, rule.long_window_s, rule.objective
            )
            short_burn = series.burn(
                t, rule.short_window_s, rule.objective
            )
            firing = (
                long_burn > rule.threshold
                and short_burn > rule.threshold
            )
            if firing:
                if start is None:
                    start = t
                    peak = long_burn
                else:
                    peak = max(peak, long_burn)
                last = t
            elif start is not None:
                firings.append(AlertFiring(
                    rule=rule.name, severity=rule.severity,
                    start_s=start, end_s=last, peak_burn=peak,
                ))
                start = None
        if start is not None:
            firings.append(AlertFiring(
                rule=rule.name, severity=rule.severity,
                start_s=start, end_s=last, peak_burn=peak,
            ))
    return tuple(firings)
