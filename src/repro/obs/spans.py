"""Request spans: per-request timestamped state transitions.

A span is the request-centric view of a fleet run — every state the
request moved through, with the simulated timestamp and the
pool/server/rung involved.  Hedged requests keep **one** span per
request id: the duplicate copy's events carry ``hedge: 1`` attributes
and the losing copy contributes a single ``cancel`` event, so the
span reads as one client-visible request with an internal race.

The well-formedness contract (pinned by a hypothesis property suite
and re-checked independently by ``tools/check_telemetry_schema.py``):

* the first event is ``submit`` and timestamps are monotone
  non-decreasing;
* exactly one terminal event (:data:`TERMINAL_STATES`) appears;
* after the terminal event only ``cancel`` events may follow (the
  losing hedge copy settles in the same event cascade that completed
  the winner — never earlier than the terminal timestamp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

SPAN_STATES = (
    "submit",
    "admit",
    "dispatch",
    "complete",
    "retry",
    "hedge",
    "cancel",
    "shed",
    "fail",
)
"""Every state a span event may carry, in rough lifecycle order.

``submit`` is the arrival; ``admit`` is a successful enqueue (one per
attempt — retries and hedge copies re-admit); ``dispatch`` is batch
launch on a server; ``retry`` is an abandoned attempt (crash or
timeout) with backoff scheduled; ``hedge`` marks the duplicate copy
being launched; ``cancel`` marks a copy losing the hedge race (or
being superseded while its twin survives); ``complete``/``fail``/
``shed`` are the request's terminal states.
"""

TERMINAL_STATES = ("complete", "fail", "shed")
"""States that settle a request; exactly one appears per span."""


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped state transition inside a request span.

    ``attrs`` is a small read-only mapping of strings/ints/floats —
    the pool, server, rung, attempt count or reason involved in the
    transition (see ``docs/OBSERVABILITY.md`` for the per-state
    attribute schema).  Treat it as immutable.
    """

    ts_s: float
    state: str
    attrs: Mapping[str, object]


@dataclass(frozen=True)
class RequestSpan:
    """The full recorded lifecycle of one request.

    Events are in simulation processing order, which is also
    timestamp order (the well-formedness property).  ``request_id``
    and ``model`` identify the request; hedged copies share the span.
    """

    request_id: int
    model: str
    events: tuple[SpanEvent, ...]

    @property
    def terminal(self) -> SpanEvent | None:
        """The terminal event, or ``None`` for a malformed span."""
        for event in self.events:
            if event.state in TERMINAL_STATES:
                return event
        return None

    @property
    def state(self) -> str:
        """The span's terminal state (``"open"`` if none recorded)."""
        terminal = self.terminal
        return terminal.state if terminal is not None else "open"

    @property
    def submitted_at_s(self) -> float:
        """Arrival timestamp (the ``submit`` event's time)."""
        return self.events[0].ts_s

    @property
    def latency_s(self) -> float | None:
        """Submit-to-terminal latency; ``None`` for open spans."""
        terminal = self.terminal
        if terminal is None:
            return None
        return terminal.ts_s - self.submitted_at_s

    def first(self, state: str) -> SpanEvent | None:
        """The first event with the given state, if any."""
        for event in self.events:
            if event.state == state:
                return event
        return None

    def all(self, state: str) -> tuple[SpanEvent, ...]:
        """Every event with the given state, in order."""
        return tuple(
            event for event in self.events if event.state == state
        )


def validate_span(span: RequestSpan) -> list[str]:
    """Check span well-formedness; returns human-readable violations.

    An empty list means the span satisfies the contract documented in
    the module docstring.  This is the reference implementation the
    property suite asserts against and
    ``tools/check_telemetry_schema.py`` mirrors line-by-line.
    """
    errors: list[str] = []
    if not span.events:
        return [f"span {span.request_id}: no events"]
    if span.events[0].state != "submit":
        errors.append(
            f"span {span.request_id}: first event is "
            f"{span.events[0].state!r}, not 'submit'"
        )
    terminal_at: float | None = None
    terminal_count = 0
    last_ts = span.events[0].ts_s
    for event in span.events:
        if event.state not in SPAN_STATES:
            errors.append(
                f"span {span.request_id}: unknown state "
                f"{event.state!r}"
            )
        if event.ts_s < last_ts:
            errors.append(
                f"span {span.request_id}: timestamp {event.ts_s} "
                f"goes backwards (previous {last_ts})"
            )
        last_ts = event.ts_s
        if terminal_at is not None and event.state != "cancel":
            errors.append(
                f"span {span.request_id}: {event.state!r} event "
                f"after terminal state"
            )
        if event.state in TERMINAL_STATES:
            terminal_count += 1
            terminal_at = event.ts_s
    if terminal_count != 1:
        errors.append(
            f"span {span.request_id}: {terminal_count} terminal "
            f"events (want exactly 1)"
        )
    return errors
