"""Render a fleet telemetry log as a Perfetto/Chrome trace.

Extends the single-GPU op-trace export
(:mod:`repro.profiler.trace_export`) to fleet scale: each **pool**
becomes a process, each **server** a thread lane inside it, each
dispatched request copy a complete (``"X"``) slice from its dispatch
to the event that ended the attempt (completion, crash retry, or
hedge cancellation).  Fleet control-plane events (breaker trips, rung
changes, autoscaler actions, crashes) appear as instant events on the
server or pool they touched, and per-pool gauge series become counter
tracks — so queue buildup, breaker flapping and tail latency line up
on one zoomable timeline.

Open the output at https://ui.perfetto.dev (or chrome://tracing).
Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.telemetry import TelemetryLog

_SLICE_END_STATES = ("complete", "retry", "fail", "cancel")

_COUNTER_GAUGES = ("queue_depth", "busy_servers", "breaker_open")


def _instant_scope(event_kind: str) -> str:
    """Instant-event scope: thread for server events, else process."""
    return (
        "t" if event_kind.startswith(("breaker", "server"))
        else "p"
    )


def telemetry_to_chrome_trace(log: TelemetryLog) -> dict:
    """Serialize a telemetry log as Chrome-trace JSON.

    Lanes: ``pid`` = pool index (process named after the pool),
    ``tid`` = fleet-wide server id (thread named ``server <id>``).
    Request slices carry the request id, batch size, rung, attempt
    flavor and hedge flag in ``args``; an attempt with no recorded
    end (a copy still in flight at makespan) closes at the makespan.
    """
    events: list[dict[str, Any]] = []
    pool_index = {name: idx for idx, name in enumerate(log.pools)}
    for idx, name in enumerate(log.pools):
        events.append({
            "name": "process_name", "ph": "M", "pid": idx,
            "args": {"name": f"pool {name}"},
        })
    for sid, pidx in enumerate(log.server_pools):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pidx,
            "tid": sid, "args": {"name": f"server {sid}"},
        })
    for span in log.spans:
        span_events = span.events
        for index, event in enumerate(span_events):
            if event.state != "dispatch":
                continue
            end = log.makespan_s
            end_state = "open"
            for later in span_events[index + 1:]:
                if later.state in _SLICE_END_STATES:
                    end = later.ts_s
                    end_state = later.state
                    break
            attrs = event.attrs
            events.append({
                "name": span.model,
                "cat": "request",
                "ph": "X",
                "pid": pool_index[attrs["pool"]],
                "tid": int(attrs["server"]),
                "ts": event.ts_s * 1e6,
                "dur": (end - event.ts_s) * 1e6,
                "args": {
                    "request": span.request_id,
                    "batch": int(attrs["batch"]),
                    "rung": int(attrs["rung"]),
                    "hedge": int(attrs["hedge"]),
                    "outcome": end_state,
                },
            })
    for fleet_event in log.events:
        scope = _instant_scope(fleet_event.kind)
        attrs = fleet_event.attrs
        pidx = pool_index.get(attrs.get("pool", ""), 0)
        events.append({
            "name": fleet_event.kind,
            "cat": "fleet",
            "ph": "i",
            "s": scope,
            "pid": pidx,
            "tid": int(attrs.get("server", 0)),
            "ts": fleet_event.ts_s * 1e6,
            "args": {
                key: value for key, value in attrs.items()
            },
        })
    for series in log.series:
        if series.kind != "gauge":
            continue
        _, pool, gauge = series.name.split(".", 2)
        if gauge not in _COUNTER_GAUGES:
            continue
        pidx = pool_index[pool]
        for ts, value in zip(series.times, series.values):
            events.append({
                "name": gauge,
                "cat": "metrics",
                "ph": "C",
                "pid": pidx,
                "tid": 0,
                "ts": ts * 1e6,
                "args": {"value": value},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_telemetry(
    log: TelemetryLog, path: str | Path
) -> Path:
    """Write the Chrome-trace JSON for a telemetry log to disk."""
    path = Path(path)
    path.write_text(json.dumps(telemetry_to_chrome_trace(log)))
    return path
