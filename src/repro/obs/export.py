"""Versioned, byte-deterministic JSONL telemetry traces.

Same canonical-bytes discipline as the traffic-trace format
(:mod:`repro.serving.traffic`): every line is one JSON record with
sorted keys and compact separators, line 1 is a header carrying the
schema id, version and record counts, and
``dumps -> loads -> dumps`` is a byte identity.  A telemetry file is
therefore diffable, hashable and CI-gateable —
``tools/check_telemetry_schema.py`` validates the format
independently of this serializer, so a serializer bug cannot
self-certify.

Record kinds, in file order:

* ``header`` — schema/version, sampling interval, makespan, pool
  names, server-to-pool map, record counts, free-form ``meta``.
* ``span`` — one per request, sorted by request id; events are
  ``[ts_s, state, attrs]`` triples.
* ``event`` — fleet control-plane events in processing order.
* ``series`` — one per metric, sorted by name, with aligned
  ``times``/``values`` arrays.
* ``histogram`` — windowed histograms with bucket ``edges`` and one
  count row per sample window.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import HistogramSeries, MetricSeries
from repro.obs.spans import RequestSpan, SpanEvent
from repro.obs.telemetry import FleetEvent, TelemetryLog

TELEMETRY_SCHEMA = "repro-telemetry"
"""Schema identifier written into every telemetry header record."""

TELEMETRY_VERSION = 1
"""Current telemetry format version."""


def _canonical(obj: object) -> str:
    """One canonical JSON line: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def dumps_telemetry(log: TelemetryLog) -> str:
    """Serialize a telemetry log to canonical JSONL bytes.

    The output is byte-deterministic: the same simulation (same
    workload, pools, faults, resilience and telemetry config)
    produces the same string in any process — pinned by a subprocess
    determinism test.
    """
    lines = [_canonical({
        "kind": "header",
        "schema": TELEMETRY_SCHEMA,
        "version": TELEMETRY_VERSION,
        "sample_interval_s": log.sample_interval_s,
        "makespan_s": log.makespan_s,
        "pools": list(log.pools),
        "server_pools": list(log.server_pools),
        "num_spans": len(log.spans),
        "num_events": len(log.events),
        "num_series": len(log.series),
        "num_histograms": len(log.histograms),
        "meta": dict(log.meta),
    })]
    for span in log.spans:
        lines.append(_canonical({
            "kind": "span",
            "request": span.request_id,
            "model": span.model,
            "events": [
                [event.ts_s, event.state, dict(event.attrs)]
                for event in span.events
            ],
        }))
    for event in log.events:
        lines.append(_canonical({
            "kind": "event",
            "ts_s": event.ts_s,
            "event": event.kind,
            "attrs": dict(event.attrs),
        }))
    for series in log.series:
        lines.append(_canonical({
            "kind": "series",
            "name": series.name,
            "metric": series.kind,
            "times": list(series.times),
            "values": list(series.values),
        }))
    for histogram in log.histograms:
        lines.append(_canonical({
            "kind": "histogram",
            "name": histogram.name,
            "edges": list(histogram.edges),
            "times": list(histogram.times),
            "counts": [list(row) for row in histogram.counts],
        }))
    return "\n".join(lines) + "\n"


def loads_telemetry(text: str) -> TelemetryLog:
    """Parse a telemetry JSONL string back into a TelemetryLog.

    Validates the header contract (schema id, version, record
    counts); ``dumps_telemetry(loads_telemetry(s)) == s`` for any
    string this module wrote.
    """
    lines = [line for line in text.splitlines() if line]
    if not lines:
        raise ValueError("empty telemetry file")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise ValueError("first telemetry record must be the header")
    if header.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"unknown telemetry schema {header.get('schema')!r}"
        )
    if header.get("version") != TELEMETRY_VERSION:
        raise ValueError(
            f"unsupported telemetry version "
            f"{header.get('version')!r} (expected "
            f"{TELEMETRY_VERSION})"
        )
    spans: list[RequestSpan] = []
    events: list[FleetEvent] = []
    series: list[MetricSeries] = []
    histograms: list[HistogramSeries] = []
    for line in lines[1:]:
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "span":
            spans.append(RequestSpan(
                request_id=int(record["request"]),
                model=record["model"],
                events=tuple(
                    SpanEvent(float(ts), state, attrs)
                    for ts, state, attrs in record["events"]
                ),
            ))
        elif kind == "event":
            events.append(FleetEvent(
                ts_s=float(record["ts_s"]),
                kind=record["event"],
                attrs=record["attrs"],
            ))
        elif kind == "series":
            series.append(MetricSeries(
                name=record["name"],
                kind=record["metric"],
                times=tuple(float(t) for t in record["times"]),
                values=tuple(float(v) for v in record["values"]),
            ))
        elif kind == "histogram":
            histograms.append(HistogramSeries(
                name=record["name"],
                edges=tuple(float(e) for e in record["edges"]),
                times=tuple(float(t) for t in record["times"]),
                counts=tuple(
                    tuple(int(c) for c in row)
                    for row in record["counts"]
                ),
            ))
        else:
            raise ValueError(f"unknown record kind {kind!r}")
    for label, got, want in (
        ("span", len(spans), header["num_spans"]),
        ("event", len(events), header["num_events"]),
        ("series", len(series), header["num_series"]),
        ("histogram", len(histograms), header["num_histograms"]),
    ):
        if got != want:
            raise ValueError(
                f"header promised {want} {label} records, file has "
                f"{got}"
            )
    return TelemetryLog(
        pools=tuple(header["pools"]),
        server_pools=tuple(
            int(p) for p in header["server_pools"]
        ),
        sample_interval_s=float(header["sample_interval_s"]),
        makespan_s=float(header["makespan_s"]),
        spans=tuple(spans),
        events=tuple(events),
        series=tuple(series),
        histograms=tuple(histograms),
        meta=dict(header["meta"]),
    )


def save_telemetry(log: TelemetryLog, path: str | Path) -> Path:
    """Write a telemetry log as JSONL; returns the path written."""
    path = Path(path)
    path.write_text(dumps_telemetry(log))
    return path


def load_telemetry(path: str | Path) -> TelemetryLog:
    """Read a telemetry JSONL file written by :func:`save_telemetry`."""
    return loads_telemetry(Path(path).read_text())
