"""``python -m repro.obs`` — summarize and query telemetry files.

Subcommands over a saved telemetry JSONL file
(:func:`repro.obs.export.save_telemetry`):

* ``summary FILE`` — header facts, counter totals, span terminal
  states, fleet-event counts.
* ``spans FILE [--request N] [--state S] [--limit K]`` — print
  request spans event by event.
* ``metrics FILE [--name NAME]`` — list series, or print one
  series' samples.
* ``alerts FILE --deadline M=S ... [--objective ...]`` — evaluate
  burn-rate rules and print firings.
* ``perfetto FILE -o OUT.json`` — write the Chrome-trace rendering
  for https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.obs.alerts import BurnRateRule, evaluate_alerts
from repro.obs.export import load_telemetry
from repro.obs.perfetto import save_chrome_telemetry
from repro.obs.telemetry import FLEET_COUNTERS, TelemetryLog


def _parse_deadlines(
    pairs: list[str],
) -> dict[str, float] | float:
    """``model=seconds`` pairs, or a single bare scalar."""
    if len(pairs) == 1 and "=" not in pairs[0]:
        return float(pairs[0])
    deadlines: dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"deadline {pair!r} is not model=seconds"
            )
        model, _, value = pair.partition("=")
        deadlines[model] = float(value)
    return deadlines


def _summary(log: TelemetryLog) -> str:
    lines = [
        f"pools: {', '.join(log.pools)} "
        f"({len(log.server_pools)} servers)",
        f"makespan: {log.makespan_s:.2f} s, sampled every "
        f"{log.sample_interval_s:g} s "
        f"({len(log.series[0].times) if log.series else 0} samples)",
    ]
    states = Counter(span.state for span in log.spans)
    terminal = ", ".join(
        f"{state}={count}" for state, count in sorted(states.items())
    )
    lines.append(f"spans: {len(log.spans)} ({terminal})")
    counters = ", ".join(
        f"{name}={log.counter_final(name):g}"
        for name in FLEET_COUNTERS
    )
    lines.append(f"counters: {counters}")
    kinds = Counter(event.kind for event in log.events)
    if kinds:
        lines.append("fleet events: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())
        ))
    else:
        lines.append("fleet events: none")
    return "\n".join(lines)


def _spans(log: TelemetryLog, args: argparse.Namespace) -> str:
    spans = log.spans
    if args.request is not None:
        spans = (log.span(args.request),)
    if args.state is not None:
        spans = tuple(
            span for span in spans if span.state == args.state
        )
    lines: list[str] = []
    for span in spans[: args.limit]:
        lines.append(
            f"request {span.request_id} ({span.model}) -> "
            f"{span.state}"
        )
        for event in span.events:
            attrs = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.attrs.items())
            )
            lines.append(
                f"  {event.ts_s:10.3f}  {event.state:<9} {attrs}"
            )
    shown = min(len(spans), args.limit)
    lines.append(f"({shown} of {len(spans)} spans shown)")
    return "\n".join(lines)


def _metrics(log: TelemetryLog, args: argparse.Namespace) -> str:
    if args.name is None:
        lines = [
            f"{series.kind:<8} {series.name} "
            f"(final {series.final:g}, peak {series.peak:g})"
            for series in log.series
        ]
        lines.extend(
            f"histogram {histogram.name} "
            f"({histogram.total} observations)"
            for histogram in log.histograms
        )
        return "\n".join(lines)
    series = log.series_named(args.name)
    return "\n".join(
        f"{ts:10.3f}  {value:g}"
        for ts, value in zip(series.times, series.values)
    )


def _alerts(log: TelemetryLog, args: argparse.Namespace) -> str:
    deadlines = _parse_deadlines(args.deadline)
    rule = BurnRateRule(
        name="cli", objective=args.objective,
        long_window_s=args.long_window,
        short_window_s=args.short_window,
        threshold=args.threshold,
    )
    firings = evaluate_alerts(log, deadlines, (rule,))
    if not firings:
        return "no firings"
    return "\n".join(
        f"{firing.rule} [{firing.severity}] "
        f"{firing.start_s:.1f}s..{firing.end_s:.1f}s "
        f"(peak burn {firing.peak_burn:.1f}x)"
        for firing in firings
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize and query fleet telemetry files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="header facts and record counts"
    )
    p_summary.add_argument("file")

    p_spans = sub.add_parser("spans", help="print request spans")
    p_spans.add_argument("file")
    p_spans.add_argument("--request", type=int, default=None)
    p_spans.add_argument("--state", default=None)
    p_spans.add_argument("--limit", type=int, default=10)

    p_metrics = sub.add_parser(
        "metrics", help="list series or print one"
    )
    p_metrics.add_argument("file")
    p_metrics.add_argument("--name", default=None)

    p_alerts = sub.add_parser(
        "alerts", help="evaluate a burn-rate rule"
    )
    p_alerts.add_argument("file")
    p_alerts.add_argument(
        "--deadline", action="append", required=True,
        help="model=seconds (repeatable) or one bare scalar",
    )
    p_alerts.add_argument("--objective", type=float, default=0.999)
    p_alerts.add_argument(
        "--long-window", type=float, default=300.0
    )
    p_alerts.add_argument(
        "--short-window", type=float, default=60.0
    )
    p_alerts.add_argument(
        "--threshold", type=float, default=10.0
    )

    p_perfetto = sub.add_parser(
        "perfetto", help="write a Chrome-trace rendering"
    )
    p_perfetto.add_argument("file")
    p_perfetto.add_argument("-o", "--output", required=True)

    args = parser.parse_args(argv)
    log = load_telemetry(args.file)
    if args.command == "summary":
        print(_summary(log))
    elif args.command == "spans":
        print(_spans(log, args))
    elif args.command == "metrics":
        print(_metrics(log, args))
    elif args.command == "alerts":
        print(_alerts(log, args))
    elif args.command == "perfetto":
        path = save_chrome_telemetry(log, args.output)
        print(f"wrote {path}")
    return 0
