"""The telemetry collector both fleet engines emit into.

Pass a fresh :class:`Telemetry` to ``simulate_fleet(...,
telemetry=...)``; after the run, :meth:`Telemetry.log` returns the
immutable :class:`TelemetryLog` (spans, fleet events, metric series,
histograms).  The collector is **purely observational**:

* it never pushes events onto the simulation heap (heap sequence
  numbers are tie-breakers — a single extra push would reorder
  simultaneous events and change outcomes), sampling instead lazily
  at metric boundaries the event clock passes;
* it only ever *reads* engine state, through a sampler closure the
  engine binds at start;
* record methods normalize everything to plain ints/floats/strings,
  so the oracle and columnar engines — which call them with
  ``bool``/``bytearray``-flavored values — produce byte-identical
  logs for the same simulation.

Both properties are pinned: a hypothesis suite asserts telemetry-on
vs telemetry-off runs produce identical ``FleetCompletion`` streams
on both engines, and a subprocess test asserts telemetry bytes are
deterministic across fresh interpreters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.obs.metrics import (
    HistogramSeries,
    MetricSeries,
    bucket_index,
)
from repro.obs.spans import RequestSpan, SpanEvent

DEFAULT_SAMPLE_INTERVAL_S = 5.0
"""Default simulated seconds between metric samples."""

DEFAULT_HISTOGRAM_EDGES_S = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)
"""Default latency-histogram bucket upper bounds (seconds)."""

POOL_GAUGES = (
    "queue_depth", "busy_servers", "active_servers", "rung",
    "breaker_open",
)
"""Per-pool gauge fields, in sampler tuple order.

Each becomes a series named ``pool.<pool>.<field>``: queued requests,
servers running a batch, servers taking traffic, current brownout
rung, and servers with an open breaker.
"""

FLEET_COUNTERS = (
    "completed", "failed", "shed", "retries", "hedges_launched",
    "breaker_opens", "rung_changes",
)
"""Cumulative fleet-wide counters, each a ``fleet.<name>`` series."""

FLEET_EVENT_KINDS = (
    "breaker_open", "breaker_half_open", "breaker_close",
    "rung_change", "scale_up", "scale_down", "server_activate",
    "server_crash", "server_recover", "server_cordon",
    "server_uncordon", "domain_down", "domain_detected", "domain_up",
)
"""Every kind a :class:`FleetEvent` may carry.

``server_cordon``/``server_uncordon`` are recovery-orchestration
control actions (:mod:`repro.serving.domains`); the ``domain_*`` kinds
are failure-domain transitions emitted from
:class:`~repro.serving.faults.DomainMarker` plan entries.
"""

LATENCY_HISTOGRAM = "fleet.latency_s"
"""Name of the windowed completion-latency histogram."""


@dataclass(frozen=True)
class FleetEvent:
    """One fleet-level control-plane event (not tied to a request).

    ``kind`` is one of :data:`FLEET_EVENT_KINDS`; ``attrs`` names the
    server/pool/rung involved.  Events appear in simulation
    processing order (timestamps are monotone non-decreasing).
    """

    ts_s: float
    kind: str
    attrs: Mapping[str, object]


@dataclass(frozen=True)
class TelemetryLog:
    """Everything one instrumented fleet run recorded.

    ``pools`` are pool names in declaration order; ``server_pools``
    maps each fleet-wide server id to its pool index.  ``spans`` are
    sorted by request id, ``events`` in processing order, ``series``
    sorted by name.  The log is a pure value: exporters
    (:mod:`repro.obs.export`, :mod:`repro.obs.perfetto`) and alert
    evaluation (:mod:`repro.obs.alerts`) consume it without touching
    the engines.
    """

    pools: tuple[str, ...]
    server_pools: tuple[int, ...]
    sample_interval_s: float
    makespan_s: float
    spans: tuple[RequestSpan, ...]
    events: tuple[FleetEvent, ...]
    series: tuple[MetricSeries, ...]
    histograms: tuple[HistogramSeries, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def span(self, request_id: int) -> RequestSpan:
        """The span for one request id (error names the valid range)."""
        for span in self.spans:
            if span.request_id == request_id:
                return span
        raise ValueError(
            f"no span for request {request_id} "
            f"({len(self.spans)} spans recorded)"
        )

    def series_named(self, name: str) -> MetricSeries:
        """One metric series by name; the error lists what exists."""
        for series in self.series:
            if series.name == name:
                return series
        known = ", ".join(series.name for series in self.series)
        raise ValueError(
            f"unknown series {name!r}; known series: {known}"
        )

    def histogram_named(self, name: str) -> HistogramSeries:
        """One histogram by name; the error lists what exists."""
        for histogram in self.histograms:
            if histogram.name == name:
                return histogram
        known = ", ".join(h.name for h in self.histograms)
        raise ValueError(
            f"unknown histogram {name!r}; known: {known}"
        )

    def counter_final(self, name: str) -> float:
        """Final value of a ``fleet.<name>`` counter."""
        return self.series_named(f"fleet.{name}").final

    def events_named(self, kind: str) -> tuple[FleetEvent, ...]:
        """Every fleet event of one kind, in processing order."""
        return tuple(
            event for event in self.events if event.kind == kind
        )

    def breaker_open_intervals(
        self,
    ) -> dict[int, tuple[tuple[float, float], ...]]:
        """Per-server ``(open, close)`` breaker intervals.

        An interval opens at a ``breaker_open`` event and closes at
        the matching ``breaker_half_open`` transition (the server
        takes no traffic while fully open); a breaker still open at
        the end of the run closes at the makespan.
        """
        opened: dict[int, float] = {}
        intervals: dict[int, list[tuple[float, float]]] = {}
        for event in self.events:
            if event.kind == "breaker_open":
                opened[int(event.attrs["server"])] = event.ts_s
            elif event.kind == "breaker_half_open":
                server = int(event.attrs["server"])
                start = opened.pop(server, None)
                if start is not None:
                    intervals.setdefault(server, []).append(
                        (start, event.ts_s)
                    )
        for server, start in sorted(opened.items()):
            intervals.setdefault(server, []).append(
                (start, self.makespan_s)
            )
        return {
            server: tuple(spans)
            for server, spans in sorted(intervals.items())
        }


def _materialize(raw: tuple) -> SpanEvent:
    """Expand one compact ``(state, ts, *raw)`` tuple to a SpanEvent.

    The ``record_*`` hot path appends plain tuples (no dataclass or
    dict allocation per engine event); this builds the public
    attribute mapping once, at :meth:`Telemetry.log` time.
    """
    state = raw[0]
    ts = raw[1]
    if state == "admit":
        _, _, pool, attempt, hedge = raw
        attrs = {
            "pool": pool, "attempt": int(attempt),
            "hedge": 1 if hedge else 0,
        }
    elif state == "dispatch":
        _, _, pool, server, batch, rung, hedge = raw
        attrs = {
            "pool": pool, "server": int(server),
            "batch": int(batch), "rung": int(rung),
            "hedge": 1 if hedge else 0,
        }
    elif state == "complete":
        _, _, pool, server, attempts, rung, hedged, win = raw
        attrs = {
            "pool": pool, "server": int(server),
            "attempts": int(attempts), "rung": int(rung),
            "hedged": 1 if hedged else 0,
            "hedge_win": 1 if win else 0,
        }
    elif state == "retry":
        _, _, reason, backoff_s, attempt = raw
        attrs = {
            "reason": reason, "backoff_s": float(backoff_s),
            "attempt": int(attempt),
        }
    elif state == "fail":
        _, _, pool, reason, attempts = raw
        attrs = {
            "pool": pool, "reason": reason,
            "attempts": int(attempts),
        }
    elif state == "shed":
        _, _, pool, reason = raw
        attrs = {"pool": pool, "reason": reason}
    elif state == "hedge":
        attrs = {"pool": raw[2]}
    else:  # submit / cancel carry no attributes
        attrs = {}
    return SpanEvent(ts, state, attrs)


class Telemetry:
    """Mutable per-run collector; one simulation per instance.

    Construct with the sampling interval and histogram edges, pass to
    ``simulate_fleet(..., telemetry=...)``, then read :meth:`log`.
    The engine-facing half (:meth:`begin` / :meth:`advance` /
    ``record_*`` / :meth:`finish`) is called by the fleet engines
    only; user code never needs it.
    """

    def __init__(
        self,
        *,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        histogram_edges_s: Sequence[float] = DEFAULT_HISTOGRAM_EDGES_S,
        meta: Mapping[str, object] | None = None,
    ):
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        edges = tuple(float(edge) for edge in histogram_edges_s)
        if list(edges) != sorted(edges) or not edges:
            raise ValueError("histogram edges must be ascending")
        self.sample_interval_s = sample_interval_s
        self.histogram_edges_s = edges
        self.meta = dict(meta) if meta is not None else {}
        self._began = False
        self._finished = False
        self._makespan = 0.0
        self._pools: tuple[str, ...] = ()
        self._server_pools: tuple[int, ...] = ()
        self._sampler: Callable[[], list[tuple]] | None = None
        self._next_k = 0
        self._next_t = 0.0
        self._sample_times: list[float] = []
        self._gauge_rows: list[list[tuple]] = []
        self._counter_rows: list[tuple[int, ...]] = []
        self._counters = dict.fromkeys(FLEET_COUNTERS, 0)
        self._window = [0] * (len(edges) + 1)
        self._hist_rows: list[tuple[int, ...]] = []
        self._span_model: dict[int, str] = {}
        # Hot path: compact (state, ts, *raw) tuples per request;
        # SpanEvent objects and attr dicts materialize in log().
        self._span_raw: dict[int, list[tuple]] = {}
        self._events: list[FleetEvent] = []

    # -- engine-facing lifecycle --------------------------------------

    def begin(
        self,
        pools: Sequence[str],
        server_pools: Sequence[int],
        sampler: Callable[[], list[tuple]],
    ) -> None:
        """Bind one simulation's pools and state sampler (engine API).

        ``sampler`` returns one tuple per pool, ordered as
        :data:`POOL_GAUGES`.  A collector is single-use: binding a
        second simulation raises instead of silently merging runs.
        """
        if self._began:
            raise RuntimeError(
                "this Telemetry already recorded a simulation; "
                "construct a fresh collector per run"
            )
        self._began = True
        self._pools = tuple(pools)
        self._server_pools = tuple(int(p) for p in server_pools)
        self._sampler = sampler

    def advance(self, now: float) -> None:
        """Emit samples for every boundary strictly before ``now``.

        Engines call this before handling each event; simulation
        state is piecewise-constant between events, so the sample at
        boundary ``t < now`` reflects the state after every event at
        or before ``t``.
        """
        while self._next_t < now:
            self._emit(self._next_t)

    def finish(self, makespan_s: float) -> None:
        """Emit trailing samples and seal the run (engine API).

        The makespan (the last terminal event) can precede the last
        *simulation* event — drain-phase probes and scale checks run
        after it, and :meth:`advance` may have emitted boundaries past
        the makespan along the way.  Those rows are folded into one
        final sample taken exactly at the makespan, so a sealed log
        never samples beyond its own end.
        """
        while self._next_t < makespan_s:
            self._emit(self._next_t)
        folded = [0] * len(self._window)
        while (
            self._sample_times
            and self._sample_times[-1] > makespan_s
        ):
            self._sample_times.pop()
            self._gauge_rows.pop()
            self._counter_rows.pop()
            for index, count in enumerate(self._hist_rows.pop()):
                folded[index] += count
        if (
            not self._sample_times
            or self._sample_times[-1] < makespan_s
        ):
            for index, count in enumerate(folded):
                self._window[index] += count
            self._emit(makespan_s)
        self._makespan = makespan_s
        self._finished = True

    def _emit(self, t: float) -> None:
        self._sample_times.append(t)
        assert self._sampler is not None
        self._gauge_rows.append(self._sampler())
        counters = self._counters
        self._counter_rows.append(
            tuple(counters[name] for name in FLEET_COUNTERS)
        )
        self._hist_rows.append(tuple(self._window))
        for index in range(len(self._window)):
            self._window[index] = 0
        self._next_k += 1
        self._next_t = self._next_k * self.sample_interval_s

    # -- span records (engine API) ------------------------------------

    def record_submit(self, rid: int, model: str, now: float) -> None:
        """A request arrived."""
        rid = int(rid)
        self._span_model[rid] = model
        self._span_raw[rid] = [("submit", now)]

    def record_admit(
        self, rid: int, now: float, pool: str, attempt: int,
        hedge: object,
    ) -> None:
        """A copy of the request joined a pool queue."""
        self._span_raw[rid].append(
            ("admit", now, pool, attempt, hedge)
        )

    def record_dispatch(
        self, rid: int, now: float, pool: str, server: int,
        batch: int, rung: int, hedge: object,
    ) -> None:
        """A copy launched in a batch on a server."""
        self._span_raw[rid].append(
            ("dispatch", now, pool, server, batch, rung, hedge)
        )

    def record_complete(
        self, rid: int, now: float, pool: str, server: int,
        attempts: int, rung: int, hedged: object, win: object,
    ) -> None:
        """The request finished successfully (terminal)."""
        events = self._span_raw[rid]
        events.append(
            ("complete", now, pool, server, attempts, rung, hedged,
             win)
        )
        self._counters["completed"] += 1
        latency = now - events[0][1]
        self._window[
            bucket_index(self.histogram_edges_s, latency)
        ] += 1

    def record_retry(
        self, rid: int, now: float, reason: str, backoff_s: float,
        attempt: int,
    ) -> None:
        """An attempt was abandoned; the next one is scheduled."""
        self._span_raw[rid].append(
            ("retry", now, reason, backoff_s, attempt)
        )
        self._counters["retries"] += 1

    def record_fail(
        self, rid: int, now: float, pool: str, reason: str,
        attempts: int,
    ) -> None:
        """The request exhausted its attempts (terminal)."""
        self._span_raw[rid].append(
            ("fail", now, pool, reason, attempts)
        )
        self._counters["failed"] += 1

    def record_shed(
        self, rid: int, now: float, pool: str, reason: str
    ) -> None:
        """Admission control rejected the request (terminal)."""
        self._span_raw[rid].append(("shed", now, pool, reason))
        self._counters["shed"] += 1

    def record_hedge(self, rid: int, now: float, pool: str) -> None:
        """A duplicate copy was launched onto ``pool``."""
        self._span_raw[rid].append(("hedge", now, pool))
        self._counters["hedges_launched"] += 1

    def record_cancel(self, rid: int, now: float) -> None:
        """One copy lost the hedge race (its twin settles the span)."""
        self._span_raw[rid].append(("cancel", now))

    # -- fleet events (engine API) ------------------------------------

    def record_breaker(
        self, now: float, server: int, pool: str, state: str
    ) -> None:
        """A circuit breaker changed state (open/half_open/closed)."""
        kind = {
            "open": "breaker_open",
            "half_open": "breaker_half_open",
            "closed": "breaker_close",
        }[state]
        self._events.append(
            FleetEvent(now, kind, {
                "server": int(server), "pool": pool,
            })
        )
        if state == "open":
            self._counters["breaker_opens"] += 1

    def record_rung(
        self, now: float, pool: str, rung: int, direction: int
    ) -> None:
        """A pool stepped down (+1) or up (−1) its brownout ladder."""
        self._events.append(
            FleetEvent(now, "rung_change", {
                "pool": pool, "rung": int(rung),
                "direction": int(direction),
            })
        )
        self._counters["rung_changes"] += 1

    def record_scale(
        self, now: float, kind: str, pool: str, server: int
    ) -> None:
        """An autoscaler action (scale_up/scale_down/server_activate)."""
        self._events.append(
            FleetEvent(now, kind, {
                "pool": pool, "server": int(server),
            })
        )

    def record_server(
        self, now: float, kind: str, server: int, pool: str
    ) -> None:
        """A server transition (crash/recover/cordon/uncordon)."""
        self._events.append(
            FleetEvent(now, kind, {
                "server": int(server), "pool": pool,
            })
        )

    def record_domain(
        self, now: float, kind: str, domain: str, event: str
    ) -> None:
        """A failure-domain transition (domain_down/detected/up)."""
        self._events.append(
            FleetEvent(now, kind, {
                "domain": domain, "event": event,
            })
        )

    # -- output -------------------------------------------------------

    def log(self) -> TelemetryLog:
        """The immutable telemetry log of the finished run."""
        if not self._finished:
            raise RuntimeError(
                "telemetry is not finished; run the simulation "
                "(simulate_fleet(..., telemetry=this)) first"
            )
        spans = tuple(
            RequestSpan(
                request_id=rid,
                model=self._span_model[rid],
                events=tuple(
                    _materialize(raw) for raw in raw_events
                ),
            )
            for rid, raw_events in sorted(self._span_raw.items())
        )
        series: list[MetricSeries] = []
        times = tuple(self._sample_times)
        for index, name in enumerate(FLEET_COUNTERS):
            series.append(MetricSeries(
                name=f"fleet.{name}",
                kind="counter",
                times=times,
                values=tuple(
                    float(row[index]) for row in self._counter_rows
                ),
            ))
        for pidx, pool in enumerate(self._pools):
            for gidx, gauge in enumerate(POOL_GAUGES):
                series.append(MetricSeries(
                    name=f"pool.{pool}.{gauge}",
                    kind="gauge",
                    times=times,
                    values=tuple(
                        float(row[pidx][gidx])
                        for row in self._gauge_rows
                    ),
                ))
        series.sort(key=lambda entry: entry.name)
        histogram = HistogramSeries(
            name=LATENCY_HISTOGRAM,
            edges=self.histogram_edges_s,
            times=times,
            counts=tuple(self._hist_rows),
        )
        return TelemetryLog(
            pools=self._pools,
            server_pools=self._server_pools,
            sample_interval_s=self.sample_interval_s,
            makespan_s=self._makespan,
            spans=spans,
            events=tuple(self._events),
            series=tuple(series),
            histograms=(histogram,),
            meta=dict(self.meta),
        )
