"""Memory-system model: effective bandwidth as a function of locality.

The kernel cost models in ``repro.kernels`` are rooflines with one
refinement: the bandwidth that bounds a kernel depends on *where* its
working set lives.  A baseline-attention softmax over a similarity
matrix that fits in L2 streams at L2 bandwidth; one that spills streams
at HBM bandwidth.  This distinction is what makes Flash Attention's
speedup depend on sequence length (Section IV-B): decode-shaped
attention (1xN queries) has a tiny similarity matrix that was already
cache-resident, so removing its HBM round-trips buys little.

Strided access additionally derates bandwidth: DRAM and caches move full
lines, so a stream touching ``useful_bytes`` out of every line wastes the
rest.  Temporal attention's transposed layout (Figure 10) is the extreme
case and drives the Figure 11/12 results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class AccessPattern:
    """Locality description of a kernel's dominant data stream.

    Attributes:
        working_set_bytes: bytes the kernel touches repeatedly (its
            resident footprint while running).
        element_stride_bytes: distance between consecutively accessed
            elements. ``<= element_bytes`` means fully contiguous.
        element_bytes: size of each accessed element.
    """

    working_set_bytes: float
    element_stride_bytes: int = 0
    element_bytes: int = 2

    @property
    def contiguous(self) -> bool:
        return self.element_stride_bytes <= self.element_bytes


CONTIGUOUS = AccessPattern(working_set_bytes=float("inf"))


class MemorySystem:
    """Computes effective bandwidths for kernel cost models.

    ``residency_fraction`` discounts cache capacity when deciding where
    a working set lives: data produced by one kernel and consumed by the
    next shares the cache with everything else in flight, so only a
    fraction of nominal capacity is realistically available for
    cross-kernel reuse.
    """

    def __init__(self, spec: GPUSpec, residency_fraction: float = 0.5):
        if not 0.0 < residency_fraction <= 1.0:
            raise ValueError("residency_fraction must be in (0, 1]")
        self.spec = spec
        self.residency_fraction = residency_fraction

    def line_utilization(self, pattern: AccessPattern) -> float:
        """Fraction of each fetched cache line that is useful.

        Contiguous streams use whole lines (1.0).  A strided stream with
        stride >= line size fetches a full line per element.
        """
        if pattern.contiguous:
            return 1.0
        line = self.spec.l2.line_bytes
        stride = pattern.element_stride_bytes
        useful_per_line = max(
            pattern.element_bytes, line // max(1, stride // pattern.element_bytes)
        )
        if stride >= line:
            useful_per_line = pattern.element_bytes
        return min(1.0, useful_per_line / line)

    def residence_bandwidth(self, working_set_bytes: float) -> float:
        """Raw bandwidth of the level the working set is resident in.

        ``l1_per_sm.bandwidth_bytes_per_s`` is the device-aggregate L1
        bandwidth (the per-SM figure is not useful on its own for a
        kernel that fills the machine).
        """
        spec = self.spec
        fraction = self.residency_fraction
        if working_set_bytes <= spec.l1_total_bytes * fraction:
            return spec.l1_per_sm.bandwidth_bytes_per_s
        if working_set_bytes <= spec.l2.capacity_bytes * fraction:
            return spec.l2.bandwidth_bytes_per_s
        return spec.dram_bandwidth

    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        """Bandwidth a kernel with this pattern actually achieves.

        Residence level picks the raw bandwidth; line utilization derates
        it for strided streams.
        """
        raw = self.residence_bandwidth(pattern.working_set_bytes)
        return raw * self.line_utilization(pattern)

    def streaming_time(self, bytes_moved: float, pattern: AccessPattern) -> float:
        """Seconds to move ``bytes_moved`` under ``pattern``."""
        if bytes_moved < 0:
            raise ValueError("bytes_moved must be non-negative")
        if bytes_moved == 0:
            return 0.0
        return bytes_moved / self.effective_bandwidth(pattern)
