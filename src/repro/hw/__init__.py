"""Hardware substrate: GPU specs, roofline, caches, memory system."""

from repro.hw.cache import CacheHierarchy, CacheStats, HierarchyStats, SetAssociativeCache
from repro.hw.memory import CONTIGUOUS, AccessPattern, MemorySystem
from repro.hw.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    attainable_performance,
    classify_bound,
    place,
    roofline_curve,
)
from repro.hw.spec import (
    A100_40GB,
    A100_80GB,
    H100_80GB,
    MI300X_192GB,
    PRESETS,
    V100_32GB,
    CacheSpec,
    GPUSpec,
    gpu_from_name,
)

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "AccessPattern",
    "CONTIGUOUS",
    "CacheHierarchy",
    "CacheSpec",
    "CacheStats",
    "GPUSpec",
    "H100_80GB",
    "HierarchyStats",
    "MI300X_192GB",
    "MemorySystem",
    "PRESETS",
    "RooflinePoint",
    "SetAssociativeCache",
    "V100_32GB",
    "arithmetic_intensity",
    "attainable_performance",
    "classify_bound",
    "gpu_from_name",
    "place",
    "roofline_curve",
]
