"""Roofline model (Figure 5).

The paper places every model in the suite on an A100 roofline, computing
arithmetic intensity as the ratio of FLOPs to *required model capacity*
(bytes of parameters touched), and observes that diffusion models sit in
the compute-bound region — up to ~100x the intensity of transformer TTI
models — because tens of denoising iterations reuse the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GPUSpec
from repro.ir.dtypes import FP16, DType


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a roofline.

    Attributes:
        name: workload label.
        flops: total floating-point operations for the run.
        bytes: bytes of traffic used for the intensity denominator (the
            paper uses model capacity: parameter bytes).
        attainable_flops: roofline-attainable FLOP/s at this intensity.
        bound: ``"compute"`` or ``"memory"``.
    """

    name: str
    flops: float
    bytes: float
    attainable_flops: float
    bound: str

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte; raises on non-positive byte counts."""
    if bytes_moved <= 0:
        raise ValueError("bytes_moved must be positive")
    return flops / bytes_moved


def attainable_performance(
    spec: GPUSpec, intensity: float, dtype: DType = FP16
) -> float:
    """Attainable FLOP/s at a given arithmetic intensity (the roofline)."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return min(spec.peak_flops_for(dtype), intensity * spec.dram_bandwidth)


def classify_bound(spec: GPUSpec, intensity: float, dtype: DType = FP16) -> str:
    """Whether a workload of this intensity is compute- or memory-bound."""
    return "compute" if intensity >= spec.ridge_point(dtype) else "memory"


def place(
    name: str,
    flops: float,
    bytes_moved: float,
    spec: GPUSpec,
    dtype: DType = FP16,
) -> RooflinePoint:
    """Place a workload on ``spec``'s roofline."""
    intensity = arithmetic_intensity(flops, bytes_moved)
    return RooflinePoint(
        name=name,
        flops=flops,
        bytes=bytes_moved,
        attainable_flops=attainable_performance(spec, intensity, dtype),
        bound=classify_bound(spec, intensity, dtype),
    )


def roofline_curve(
    spec: GPUSpec,
    dtype: DType = FP16,
    min_intensity: float = 0.125,
    max_intensity: float = 16384.0,
    points_per_decade: int = 8,
) -> list[tuple[float, float]]:
    """Sample (intensity, attainable FLOP/s) pairs for plotting the roof.

    Intensities are sampled log-uniformly and always include the ridge
    point so the bend renders exactly.
    """
    if min_intensity <= 0 or max_intensity <= min_intensity:
        raise ValueError("need 0 < min_intensity < max_intensity")
    import math

    decades = math.log10(max_intensity / min_intensity)
    count = max(2, int(decades * points_per_decade) + 1)
    xs = [
        min_intensity * (max_intensity / min_intensity) ** (i / (count - 1))
        for i in range(count)
    ]
    ridge = spec.ridge_point(dtype)
    if min_intensity < ridge < max_intensity:
        xs.append(ridge)
        xs.sort()
    return [(x, attainable_performance(spec, x, dtype)) for x in xs]
