"""Trace-driven set-associative cache simulator.

The paper uses NVIDIA Nsight Compute to read L1/L2 hit rates for the
GEMM, softmax and elementwise kernels inside spatial vs. temporal
attention (Figure 12), finding a ~10x lower L1 hit rate for temporal
attention.  Without hardware counters we reproduce the measurement with
a classic trace-driven simulator: the attention kernels in
``repro.kernels.attention`` synthesize the address streams their loads
would issue (contiguous rows for spatial attention, large strides for
temporal attention after the (B, HW, F) transpose) and replay them here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.hw.spec import CacheSpec


@dataclass
class CacheStats:
    """Accesses / hits / misses accumulated by a simulation."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; 0.0 when no accesses were made."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine two stat records (accesses and hits add)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
        )


class SetAssociativeCache:
    """An LRU set-associative cache operating on byte addresses.

    Only tags are tracked (no data), which is all that hit-rate
    simulation needs.  LRU is implemented with per-set dicts relying on
    Python's insertion-ordered dictionaries: re-inserting a key moves it
    to MRU position.
    """

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        # Geometry hoisted out of the spec and counters kept as plain
        # ints: ``access`` runs millions of times per simulated kernel,
        # so property and dataclass-attribute indirection would dominate.
        self._line_bytes = spec.line_bytes
        self._num_sets = spec.num_sets
        self._associativity = spec.associativity
        self._accesses = 0
        self._hits = 0
        # One ordered dict of {tag: None} per set.
        self._sets: list[dict[int, None]] = [
            {} for _ in range(spec.num_sets)
        ]

    @property
    def stats(self) -> CacheStats:
        """Counters accumulated since the last reset/clear."""
        return CacheStats(accesses=self._accesses, hits=self._hits)

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._accesses = 0
        self._hits = 0
        for entry in self._sets:
            entry.clear()

    def clear_stats(self) -> None:
        """Zero the counters but keep cached lines (for warm-up phases)."""
        self._accesses = 0
        self._hits = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        num_sets = self._num_sets
        line = address // self._line_bytes
        tag, index = divmod(line, num_sets)
        entries = self._sets[index]
        self._accesses += 1
        if tag in entries:
            # Refresh LRU position.
            del entries[tag]
            entries[tag] = None
            self._hits += 1
            return True
        if len(entries) >= self._associativity:
            # Evict LRU (first inserted).
            del entries[next(iter(entries))]
        entries[tag] = None
        return False

    def access_many(self, addresses: Iterable[int]) -> CacheStats:
        """Access a stream of addresses; returns stats for this stream only."""
        before = CacheStats(self.stats.accesses, self.stats.hits)
        for address in addresses:
            self.access(address)
        return CacheStats(
            accesses=self.stats.accesses - before.accesses,
            hits=self.stats.hits - before.hits,
        )


@dataclass
class HierarchyStats:
    """Hit statistics for a two-level hierarchy replay."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)


class CacheHierarchy:
    """L1 backed by L2; L2 sees only L1 misses (inclusive, LRU, no prefetch).

    Mirrors how Nsight Compute reports hit rates: L2 hit rate is computed
    over the requests that reach L2.
    """

    def __init__(self, l1_spec: CacheSpec, l2_spec: CacheSpec):
        self.l1 = SetAssociativeCache(l1_spec)
        self.l2 = SetAssociativeCache(l2_spec)

    def reset(self) -> None:
        """Clear both levels (contents and statistics)."""
        self.l1.reset()
        self.l2.reset()

    def access(self, address: int) -> None:
        """Access one byte address; L2 sees it only on an L1 miss."""
        if not self.l1.access(address):
            self.l2.access(address)

    def replay(self, addresses: Iterable[int]) -> HierarchyStats:
        """Replay a stream and return per-level stats for the stream."""
        l1_before = CacheStats(self.l1.stats.accesses, self.l1.stats.hits)
        l2_before = CacheStats(self.l2.stats.accesses, self.l2.stats.hits)
        for address in addresses:
            self.access(address)
        return HierarchyStats(
            l1=CacheStats(
                self.l1.stats.accesses - l1_before.accesses,
                self.l1.stats.hits - l1_before.hits,
            ),
            l2=CacheStats(
                self.l2.stats.accesses - l2_before.accesses,
                self.l2.stats.hits - l2_before.hits,
            ),
        )
