"""GPU hardware specifications.

The paper characterizes every workload on NVIDIA A100-80GB GPUs; the
roofline in Figure 5 is drawn against the A100's FP16 tensor-core peak
and HBM bandwidth.  ``GPUSpec`` captures the handful of machine
parameters the analytical performance model needs, plus presets for the
A100 variants and neighbouring parts so scaling studies can swap devices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.dtypes import BF16, FP8, FP16, FP32, INT8, TF32, DType


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level."""

    capacity_bytes: int
    line_bytes: int
    associativity: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache capacity and line size must be positive")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache capacity must be a multiple of line_bytes * associativity"
            )

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant description of a GPU.

    Attributes:
        name: marketing name, e.g. ``"A100-80GB-SXM"``.
        sm_count: number of streaming multiprocessors.
        peak_flops: dict mapping dtype name to peak FLOP/s achievable for
            dense GEMM in that precision (tensor cores where applicable).
        vector_flops: FLOP/s for non-GEMM (CUDA-core) arithmetic.
        dram_bandwidth: HBM bandwidth in bytes/s.
        dram_capacity: HBM capacity in bytes.
        l2: level-2 cache spec (shared across SMs).
        l1_per_sm: per-SM level-1/shared-memory cache spec.
        kernel_launch_overhead_s: fixed host-side + scheduling cost per
            kernel launch (gap between dependent kernels at inference
            batch sizes).
    """

    name: str
    sm_count: int
    peak_flops: dict[str, float]
    vector_flops: float
    dram_bandwidth: float
    dram_capacity: int
    l2: CacheSpec
    l1_per_sm: CacheSpec
    kernel_launch_overhead_s: float = 4.0e-6

    def peak_flops_for(self, dtype: DType) -> float:
        """Peak GEMM FLOP/s for ``dtype``, falling back to vector rate."""
        return self.peak_flops.get(dtype.name, self.vector_flops)

    @property
    def l1_total_bytes(self) -> int:
        return self.l1_per_sm.capacity_bytes * self.sm_count

    def ridge_point(self, dtype: DType = FP16) -> float:
        """Arithmetic intensity (FLOP/byte) where the roofline bends."""
        return self.peak_flops_for(dtype) / self.dram_bandwidth

    def with_launch_overhead(self, seconds: float) -> "GPUSpec":
        """Copy of this spec with a different launch-overhead constant.

        Used by the ablation benchmarks: the temporal-attention result is
        sensitive to small-kernel cost.
        """
        return replace(self, kernel_launch_overhead_s=seconds)


def _a100_cache_l2() -> CacheSpec:
    return CacheSpec(
        capacity_bytes=40 * 1024 * 1024,
        line_bytes=128,
        associativity=16,
        bandwidth_bytes_per_s=5.0e12,
    )


def _a100_cache_l1() -> CacheSpec:
    return CacheSpec(
        capacity_bytes=192 * 1024,
        line_bytes=128,
        associativity=4,
        bandwidth_bytes_per_s=19.4e12,
    )


A100_80GB = GPUSpec(
    name="A100-80GB-SXM",
    sm_count=108,
    peak_flops={
        FP16.name: 312e12,
        BF16.name: 312e12,
        TF32.name: 156e12,
        INT8.name: 624e12,
        FP32.name: 19.5e12,
    },
    vector_flops=19.5e12,
    dram_bandwidth=2.039e12,
    dram_capacity=80 * 1024**3,
    l2=_a100_cache_l2(),
    l1_per_sm=_a100_cache_l1(),
)

A100_40GB = GPUSpec(
    name="A100-40GB-SXM",
    sm_count=108,
    peak_flops=dict(A100_80GB.peak_flops),
    vector_flops=19.5e12,
    dram_bandwidth=1.555e12,
    dram_capacity=40 * 1024**3,
    l2=_a100_cache_l2(),
    l1_per_sm=_a100_cache_l1(),
)

H100_80GB = GPUSpec(
    name="H100-80GB-SXM",
    sm_count=132,
    peak_flops={
        FP16.name: 989e12,
        BF16.name: 989e12,
        TF32.name: 494e12,
        FP8.name: 1979e12,
        INT8.name: 1979e12,
        FP32.name: 67e12,
    },
    vector_flops=67e12,
    dram_bandwidth=3.35e12,
    dram_capacity=80 * 1024**3,
    l2=CacheSpec(
        capacity_bytes=50 * 1024 * 1024,
        line_bytes=128,
        associativity=16,
        bandwidth_bytes_per_s=8.0e12,
    ),
    l1_per_sm=CacheSpec(
        capacity_bytes=256 * 1024,
        line_bytes=128,
        associativity=4,
        bandwidth_bytes_per_s=33.0e12,
    ),
)

V100_32GB = GPUSpec(
    name="V100-32GB-SXM",
    sm_count=80,
    peak_flops={
        FP16.name: 125e12,
        FP32.name: 15.7e12,
    },
    vector_flops=15.7e12,
    dram_bandwidth=0.9e12,
    dram_capacity=32 * 1024**3,
    l2=CacheSpec(
        capacity_bytes=6 * 1024 * 1024,
        line_bytes=128,
        associativity=16,
        bandwidth_bytes_per_s=2.5e12,
    ),
    l1_per_sm=CacheSpec(
        capacity_bytes=128 * 1024,
        line_bytes=128,
        associativity=4,
        bandwidth_bytes_per_s=12.0e12,
    ),
)

# AMD MI300X (CDNA3): the non-NVIDIA point in the multi-backend
# registry.  304 CUs stand in for sm_count; the 256 MB Infinity Cache
# plays the L2 role in the memory model.  Peak numbers are dense (no
# structured sparsity), matching how the NVIDIA presets are quoted.
MI300X_192GB = GPUSpec(
    name="MI300X-192GB-OAM",
    sm_count=304,
    peak_flops={
        FP16.name: 1307e12,
        BF16.name: 1307e12,
        TF32.name: 653e12,
        FP8.name: 2614e12,
        INT8.name: 2614e12,
        FP32.name: 163.4e12,
    },
    vector_flops=163.4e12,
    dram_bandwidth=5.3e12,
    dram_capacity=192 * 1024**3,
    l2=CacheSpec(
        capacity_bytes=256 * 1024 * 1024,
        line_bytes=128,
        associativity=16,
        bandwidth_bytes_per_s=17.0e12,
    ),
    l1_per_sm=CacheSpec(
        capacity_bytes=64 * 1024,
        line_bytes=128,
        associativity=4,
        bandwidth_bytes_per_s=40.0e12,
    ),
)

PRESETS: dict[str, GPUSpec] = {
    spec.name: spec
    for spec in (A100_80GB, A100_40GB, H100_80GB, V100_32GB, MI300X_192GB)
}


def gpu_from_name(name: str) -> GPUSpec:
    """Look up a preset GPU by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name!r}; known: {sorted(PRESETS)}"
        ) from None
