"""repro: a reproduction of "Generative AI Beyond LLMs: System
Implications of Multi-Modal Generation" (ISPASS 2024).

The package is organized bottom-up:

* :mod:`repro.hw` — GPU specs, roofline math, cache simulator.
* :mod:`repro.ir` — symbolic tensors, operators, module tree, traces.
* :mod:`repro.kernels` — analytical kernel cost models (GEMM, conv,
  baseline vs Flash attention, bandwidth kernels) and the attention
  cache-behaviour simulator.
* :mod:`repro.layers` — model building blocks (linear, conv, resnet,
  attention variants, transformer blocks, UNets).
* :mod:`repro.models` — the paper's eight-workload suite.
* :mod:`repro.profiler` — trace capture, operator breakdowns, speedup
  and sequence-length analyses, chrome-trace export.
* :mod:`repro.analysis` — the paper's analytical frameworks (fleet,
  Pareto, attention memory, Amdahl, scaling sweeps).
* :mod:`repro.experiments` — one module per table/figure, with claim
  checks against the published values.

Quickstart::

    from repro import profile_both, build_model, speedup_report

    model = build_model("stable_diffusion")
    baseline, flash = profile_both(model)
    print(speedup_report(baseline.trace, flash.trace).end_to_end_speedup)
"""

from repro.hw import A100_80GB, H100_80GB, GPUSpec
from repro.ir import AttentionImpl, ExecutionContext, Module, OpCategory, Trace
from repro.kernels import CostEstimator, TuningConstants
from repro.models import MODEL_SUITE, GenerativeModel, build_model, suite_names
from repro.profiler import (
    breakdown,
    profile_both,
    profile_model,
    sequence_length_distribution,
    sequence_length_profile,
    speedup_report,
    temporal_spatial_report,
)

__version__ = "1.0.0"

__all__ = [
    "A100_80GB",
    "AttentionImpl",
    "CostEstimator",
    "ExecutionContext",
    "GPUSpec",
    "GenerativeModel",
    "H100_80GB",
    "MODEL_SUITE",
    "Module",
    "OpCategory",
    "Trace",
    "TuningConstants",
    "__version__",
    "breakdown",
    "build_model",
    "profile_both",
    "profile_model",
    "sequence_length_distribution",
    "sequence_length_profile",
    "speedup_report",
    "suite_names",
    "temporal_spatial_report",
]
