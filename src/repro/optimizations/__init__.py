"""Optimizations the paper's characterization motivates.

Two of the paper's forward-looking proposals, implemented against the
same cost models as the characterization:

* :mod:`repro.optimizations.flash_decoding` — split-KV attention for
  decode shapes (the gap Table III exposes);
* :mod:`repro.optimizations.step_pods` — staggered denoising-step pods
  to smooth the cyclic bandwidth demand of diffusion UNets (Section V).
"""

from repro.optimizations.flash_decoding import (
    DecodeAttentionComparison,
    FlashDecodingModel,
    compare_decode_attention,
)
from repro.optimizations.seqlen_buckets import (
    SeqLenBucket,
    SpecializationReport,
    attention_time_by_seq_len,
    evaluate_specialization,
)
from repro.optimizations.step_pods import (
    DemandBin,
    PodScheduleReport,
    bandwidth_demand_profile,
    schedule_pods,
)

__all__ = [
    "DecodeAttentionComparison",
    "DemandBin",
    "FlashDecodingModel",
    "PodScheduleReport",
    "SeqLenBucket",
    "SpecializationReport",
    "attention_time_by_seq_len",
    "bandwidth_demand_profile",
    "compare_decode_attention",
    "evaluate_specialization",
    "schedule_pods",
]
