"""Sequence-length-bucketed hardware specialization.

Figure 8's observation: "the sequence lengths confine themselves to
distinct buckets, which could allow future systems to tailor hardware
towards sequence lengths of interest."  This module quantifies that
proposal: given a trace, it ranks the distinct attention sequence
lengths by the execution time they carry, then evaluates the Amdahl
gain of an accelerator that speeds up attention at the top-K bucket
lengths by a given factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.amdahl import amdahl_speedup
from repro.ir.trace import Trace


@dataclass(frozen=True)
class SeqLenBucket:
    """All attention kernels sharing one (self-attention) seq length."""

    seq_len: int
    attention_time_s: float
    calls: int
    time_fraction: float
    """Fraction of *total* trace time in this bucket's kernels."""


def attention_time_by_seq_len(trace: Trace) -> list[SeqLenBucket]:
    """Bucket attention-kernel time by query sequence length.

    Every kernel carrying attention metadata contributes to its call's
    bucket; buckets are returned sorted by time, largest first.
    """
    total = trace.total_time_s
    if total <= 0:
        raise ValueError("trace has no time")
    times: dict[int, float] = {}
    calls: dict[int, int] = {}
    for event in trace:
        info = event.op.attention
        if info is None:
            continue
        times[info.seq_q] = times.get(info.seq_q, 0.0) + event.cost.time_s
        if event.is_attention_anchor:
            calls[info.seq_q] = calls.get(info.seq_q, 0) + 1
    buckets = [
        SeqLenBucket(
            seq_len=seq,
            attention_time_s=time_s,
            calls=calls.get(seq, 0),
            time_fraction=time_s / total,
        )
        for seq, time_s in times.items()
    ]
    buckets.sort(key=lambda bucket: bucket.attention_time_s, reverse=True)
    return buckets


@dataclass(frozen=True)
class SpecializationReport:
    """Payoff of specializing hardware for the top-K buckets."""

    target_seq_lens: tuple[int, ...]
    covered_fraction: float
    bucket_speedup: float
    end_to_end_speedup: float
    coverage_of_attention: float


def evaluate_specialization(
    trace: Trace,
    *,
    top_k: int = 2,
    bucket_speedup: float = 4.0,
) -> SpecializationReport:
    """End-to-end gain from accelerating the hottest seq-len buckets.

    ``bucket_speedup`` is the factor a tailored unit achieves on the
    attention kernels of the selected lengths (e.g. a fixed-size systolic
    schedule with no tile padding at exactly those shapes).
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if bucket_speedup <= 0:
        raise ValueError("bucket speedup must be positive")
    buckets = attention_time_by_seq_len(trace)
    if not buckets:
        raise ValueError("trace has no attention kernels")
    chosen = buckets[:top_k]
    covered = sum(bucket.time_fraction for bucket in chosen)
    attention_total = sum(bucket.attention_time_s for bucket in buckets)
    coverage_of_attention = (
        sum(bucket.attention_time_s for bucket in chosen) / attention_total
    )
    return SpecializationReport(
        target_seq_lens=tuple(bucket.seq_len for bucket in chosen),
        covered_fraction=covered,
        bucket_speedup=bucket_speedup,
        end_to_end_speedup=amdahl_speedup(covered, bucket_speedup),
        coverage_of_attention=coverage_of_attention,
    )
