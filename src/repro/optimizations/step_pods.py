"""Staggered denoising-step pods (the paper's Section V-A proposal).

"Different denoising steps of the diffusion process could be staggered
to allow for maximum memory bandwidth utilization at any one time.
Although denoising steps are traditionally sequential, certain steps
could potentially be grouped together into pods."

The mechanism: a UNet pass's bandwidth demand is cyclic (the same
U-shaped sequence-length profile as Figure 7 — big attention matrices
at full resolution, tiny ones at the bottleneck).  Running several
generations *in phase* stacks the demand peaks; offsetting them by a
fraction of the pass period overlaps peaks with troughs and smooths
aggregate demand.  This module simulates both schedules against the
HBM bandwidth cap and reports the throughput gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.trace import Trace


@dataclass(frozen=True)
class DemandBin:
    """Average memory-demand rate over one slice of a UNet pass."""

    duration_s: float
    bytes_per_s: float


def bandwidth_demand_profile(
    trace: Trace, bins: int = 64
) -> list[DemandBin]:
    """Discretize a trace's memory-bandwidth demand into time bins."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    total = trace.total_time_s
    if total <= 0:
        raise ValueError("trace has no time")
    bin_width = total / bins
    demand = [0.0] * bins
    for event in trace:
        start = event.start_s
        end = event.end_s
        if end <= start:
            continue
        rate = event.cost.moved_bytes / (end - start)
        first = min(bins - 1, int(start / bin_width))
        last = min(bins - 1, int((end - 1e-18) / bin_width))
        for index in range(first, last + 1):
            bin_start = index * bin_width
            bin_end = bin_start + bin_width
            overlap = min(end, bin_end) - max(start, bin_start)
            if overlap > 0:
                demand[index] += rate * overlap / bin_width
    return [
        DemandBin(duration_s=bin_width, bytes_per_s=rate)
        for rate in demand
    ]


@dataclass(frozen=True)
class PodScheduleReport:
    """Aligned vs staggered execution of concurrent generations."""

    copies: int
    aligned_makespan_s: float
    staggered_makespan_s: float
    aligned_peak_demand: float
    staggered_peak_demand: float
    average_demand: float
    hbm_bandwidth: float

    @property
    def speedup(self) -> float:
        """Throughput gain of staggering (>= 1 when demand saturates)."""
        return self.aligned_makespan_s / self.staggered_makespan_s

    @property
    def peak_to_average_aligned(self) -> float:
        return self.aligned_peak_demand / self.average_demand

    @property
    def peak_to_average_staggered(self) -> float:
        return self.staggered_peak_demand / self.average_demand


def _simulate(
    profile: list[DemandBin],
    offsets: list[int],
    hbm_bandwidth: float,
) -> tuple[float, float]:
    """(makespan, peak demand) for copies at the given bin offsets.

    Aggregate demand per bin is the sum over phase-shifted copies;
    bins whose demand exceeds the cap dilate proportionally (fair
    bandwidth sharing).
    """
    bins = len(profile)
    makespan = 0.0
    peak = 0.0
    for index in range(bins):
        total_rate = sum(
            profile[(index - offset) % bins].bytes_per_s
            for offset in offsets
        )
        peak = max(peak, total_rate)
        dilation = max(1.0, total_rate / hbm_bandwidth)
        makespan += profile[index].duration_s * dilation
    return makespan, peak


def schedule_pods(
    trace: Trace,
    copies: int,
    *,
    gpu: GPUSpec = A100_80GB,
    bins: int = 64,
) -> PodScheduleReport:
    """Compare in-phase vs staggered execution of ``copies`` streams.

    ``trace`` should cover one fundamental period (one UNet pass).
    """
    if copies <= 0:
        raise ValueError("copies must be positive")
    profile = bandwidth_demand_profile(trace, bins=bins)
    aligned_offsets = [0] * copies
    staggered_offsets = [
        (index * bins) // copies for index in range(copies)
    ]
    aligned_makespan, aligned_peak = _simulate(
        profile, aligned_offsets, gpu.dram_bandwidth
    )
    staggered_makespan, staggered_peak = _simulate(
        profile, staggered_offsets, gpu.dram_bandwidth
    )
    average = copies * sum(
        demand_bin.bytes_per_s * demand_bin.duration_s
        for demand_bin in profile
    ) / sum(demand_bin.duration_s for demand_bin in profile)
    return PodScheduleReport(
        copies=copies,
        aligned_makespan_s=aligned_makespan,
        staggered_makespan_s=staggered_makespan,
        aligned_peak_demand=aligned_peak,
        staggered_peak_demand=staggered_peak,
        average_demand=average,
        hbm_bandwidth=gpu.dram_bandwidth,
    )
