"""Flash-Decoding: split-KV attention for decode shapes.

The paper observes Flash Attention barely helps the decode phase
(Section IV-B): a 1xN query gives the fused kernel only
``batch * heads`` CTAs, far too few to fill an A100's 108 SMs, so the
kernel can neither use the tensor cores nor *saturate HBM bandwidth*.
Flash-Decoding (the paper's reference [47]) splits the KV sequence
across additional CTAs and merges the partial softmax results, trading
a small combine kernel for full memory-level parallelism.

This module quantifies that trade with a saturation-aware extension of
the Flash-Attention cost model.  The saturation effect is deliberately
scoped to this study: the suite-level calibration (Tables II/III) uses
the base model, matching the paper's measurement conditions where
decode attention is a minor term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.memory import AccessPattern
from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.ops import FusedAttention
from repro.ir.trace import KernelCost
from repro.kernels.base import DEFAULT_TUNING, TuningConstants, wave_efficiency
from repro.kernels.flash_attention import FlashAttentionCostModel


class SaturationAwareFlashModel(FlashAttentionCostModel):
    """Flash Attention whose achieved bandwidth needs enough CTAs.

    A memory stream only reaches peak HBM bandwidth when enough CTAs
    are in flight to cover DRAM latency; below ~one CTA per SM the
    achieved bandwidth scales with occupancy.  This is the physical
    reason decode-shaped fused attention underperforms.
    """

    def _ctas(self, op: FusedAttention) -> int:
        return (
            op.batch * op.num_heads
            * math.ceil(op.seq_q / self.tuning.flash_tile_q)
        )

    def saturation(self, op: FusedAttention) -> float:
        """Fraction of peak bandwidth this CTA count can sustain."""
        return min(1.0, self._ctas(op) / self.spec.sm_count)

    def estimate(self, op: FusedAttention) -> KernelCost:
        return self.build_cost(
            flops=op.flops(),
            compute_peak=self.matmul_peak(op.dtype),
            utilization=self.utilization(op),
            moved_bytes=op.total_bytes(),
            pattern=self.access_pattern(op),
            launches=1,
            bandwidth_derate=1.0 / max(self.saturation(op), 1e-3),
        )


class FlashDecodingModel(SaturationAwareFlashModel):
    """Flash Attention with KV-axis parallelism (Flash-Decoding).

    ``splits`` CTAs per (batch, head) each process a KV slice; a combine
    kernel merges partial outputs using the saved softmax statistics.
    """

    def __init__(
        self,
        spec: GPUSpec = A100_80GB,
        tuning: TuningConstants = DEFAULT_TUNING,
        max_splits: int = 128,
    ):
        super().__init__(spec, tuning)
        self.max_splits = max_splits

    def kv_splits(self, op: FusedAttention) -> int:
        """Choose the split count: enough CTAs to fill the machine."""
        base_ctas = self._ctas(op)
        if base_ctas >= self.spec.sm_count:
            return 1
        wanted = math.ceil(self.spec.sm_count / base_ctas)
        kv_tiles = math.ceil(op.seq_kv / self.tuning.flash_tile_kv)
        return max(1, min(wanted, kv_tiles, self.max_splits))

    def estimate(self, op: FusedAttention) -> KernelCost:
        splits = self.kv_splits(op)
        if splits == 1:
            return super().estimate(op)
        ctas = self._ctas(op) * splits
        saturation = min(1.0, ctas / self.spec.sm_count)
        wave = wave_efficiency(ctas, self.spec.sm_count)
        tuning = self.tuning
        split_kv = math.ceil(op.seq_kv / splits)
        quant_q = op.seq_q / (
            math.ceil(op.seq_q / tuning.flash_tile_q) * tuning.flash_tile_q
        )
        quant_kv = split_kv / (
            math.ceil(split_kv / tuning.flash_tile_kv)
            * tuning.flash_tile_kv
        )
        quant_d = min(1.0, op.head_dim / 64)
        utilization = (
            tuning.flash_base_utilization * quant_q * quant_kv * quant_d
            * wave
        )
        # Combine kernel: read partial outputs + stats, write the final.
        partials = (
            op.batch * op.num_heads * op.seq_q * op.head_dim * splits
        )
        combine_bytes = 2.0 * partials * op.dtype.size
        total_bytes = op.total_bytes() + combine_bytes
        return self.build_cost(
            flops=op.flops(),
            compute_peak=self.matmul_peak(op.dtype),
            utilization=utilization,
            moved_bytes=total_bytes,
            pattern=AccessPattern(working_set_bytes=total_bytes),
            launches=2,  # attention + combine
            bandwidth_derate=1.0 / max(saturation, 1e-3),
        )


@dataclass(frozen=True)
class DecodeAttentionComparison:
    """Decode-shaped attention latency, flash vs flash-decoding."""

    seq_kv: int
    flash_time_s: float
    flash_decoding_time_s: float
    splits: int

    @property
    def speedup(self) -> float:
        return self.flash_time_s / self.flash_decoding_time_s


def compare_decode_attention(
    seq_kvs: list[int],
    *,
    batch: int = 1,
    num_heads: int = 32,
    head_dim: int = 128,
    spec: GPUSpec = A100_80GB,
) -> list[DecodeAttentionComparison]:
    """Sweep KV lengths at seq_q=1 (LLM/Parti decode shapes)."""
    flash = SaturationAwareFlashModel(spec)
    decoding = FlashDecodingModel(spec)
    out = []
    for seq_kv in seq_kvs:
        op = FusedAttention(
            "decode_attention",
            batch=batch,
            seq_q=1,
            seq_kv=seq_kv,
            head_dim=head_dim,
            num_heads=num_heads,
        )
        out.append(
            DecodeAttentionComparison(
                seq_kv=seq_kv,
                flash_time_s=flash.estimate(op).time_s,
                flash_decoding_time_s=decoding.estimate(op).time_s,
                splits=decoding.kv_splits(op),
            )
        )
    return out
