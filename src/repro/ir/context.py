"""Execution context: records operator launches against a cost model.

Running a model means calling ``model(ctx, inputs)`` with an
:class:`ExecutionContext`.  Layers emit operators through ``ctx.emit``;
each emission is costed by the kernel models and appended to the trace.
The context also carries run-wide configuration — which GPU, and whether
attention layers lower to baseline kernels or a fused Flash-Attention
kernel (the before/after comparison of Figure 6).
"""

from __future__ import annotations

import contextlib
import enum
from typing import TYPE_CHECKING, Iterator

from repro.ir.ops import Op
from repro.ir.trace import KernelCost, Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hw.spec import GPUSpec
    from repro.ir.module import Module


class AttentionImpl(enum.Enum):
    """How attention layers lower to kernels."""

    BASELINE = "baseline"
    FLASH = "flash"


class ExecutionContext:
    """Collects a :class:`Trace` while a model's forward pass runs."""

    def __init__(
        self,
        gpu: "GPUSpec | None" = None,
        attention_impl: AttentionImpl = AttentionImpl.BASELINE,
        estimator: "object | None" = None,
    ):
        # Deferred imports: hw and kernels build on ir, so ir must not
        # import them at module scope (would be circular).
        if gpu is None:
            from repro.hw.spec import A100_80GB

            gpu = A100_80GB
        if estimator is None:
            from repro.kernels.estimator import CostEstimator

            estimator = CostEstimator(gpu)
        self.gpu = gpu
        self.attention_impl = attention_impl
        self.estimator = estimator
        self.trace = Trace()
        self._module_stack: list[str] = []
        self._clock_s = 0.0
        self._repeat_factor = 1
        # Subgraph-replay memoization key: identical (machine, tuning,
        # attention lowering) contexts replay recorded module subgraphs
        # instead of re-walking them (see Module.__call__).  Estimators
        # without a content token (custom test doubles, or caching
        # disabled via REPRO_NO_CACHE) leave memoization off.
        machine = getattr(estimator, "cache_token", None)
        self.memo_token = (
            None if machine is None else (machine, attention_impl)
        )

    # -- module scoping ----------------------------------------------------

    @property
    def current_path(self) -> str:
        return ".".join(self._module_stack)

    @contextlib.contextmanager
    def module_scope(self, module: "Module") -> Iterator[None]:
        """Annotate emissions with ``module``'s name (hook attribution)."""
        self._module_stack.append(module.name)
        try:
            yield
        finally:
            self._module_stack.pop()

    @contextlib.contextmanager
    def named_scope(self, name: str) -> Iterator[None]:
        """Annotate a region without a module (loop iterations etc.)."""
        self._module_stack.append(name)
        try:
            yield
        finally:
            self._module_stack.pop()

    @contextlib.contextmanager
    def repeat_scope(self, factor: int) -> Iterator[None]:
        """Scale every emission inside by ``factor``.

        Used to bucket long loops of identical iterations (e.g. 16
        autoregressive decode steps at a representative KV length) into
        single trace events, keeping traces tractable without changing
        totals.
        """
        if factor < 1:
            raise ValueError("repeat factor must be >= 1")
        previous = self._repeat_factor
        self._repeat_factor = previous * factor
        try:
            yield
        finally:
            self._repeat_factor = previous

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        op: Op,
        *,
        flags: frozenset[str] | set[str] = frozenset(),
        repeat: int = 1,
    ) -> KernelCost:
        """Cost one operator launch and append it to the trace.

        ``repeat`` scales the cost for ``repeat`` identical back-to-back
        launches (used to bucket long decode loops without emitting one
        event per step).
        """
        cost: KernelCost = self.estimator.estimate(op).scaled(
            repeat * self._repeat_factor
        )
        event = TraceEvent(
            index=len(self.trace.events),
            module_path=self.current_path,
            op=op,
            cost=cost,
            start_s=self._clock_s,
            flags=frozenset(flags),
        )
        self.trace.events.append(event)
        self._clock_s += cost.time_s
        return cost

    # -- subgraph replay ---------------------------------------------------

    def replay_segment(self, segment: "object") -> None:
        """Append a recorded module subgraph to the trace.

        ``segment`` is a :class:`repro.ir.memo.Segment`: (relative path,
        op, cost, flags) tuples captured by a previous identical call.
        Replay reproduces exactly the events re-running the module would
        emit — same ops, same costs, same clock accumulation order —
        with module paths re-rooted at the current scope.
        """
        events = self.trace.events
        index = len(events)
        clock = self._clock_s
        prefix = ".".join(self._module_stack)
        base = prefix + "." if prefix else ""
        append = events.append
        event_cls = TraceEvent
        for rel_path, op, cost, flags, time_s in segment.items:
            append(
                event_cls(index, base + rel_path, op, cost, clock, flags)
            )
            clock += time_s
            index += 1
        self._clock_s = clock

    # -- summary ----------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return self._clock_s

    def reset(self) -> None:
        """Clear the trace so the context can be reused."""
        self.trace = Trace()
        self._clock_s = 0.0
        self._module_stack.clear()
