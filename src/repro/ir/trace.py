"""Execution traces.

A :class:`Trace` is the analog of a PyTorch Profiler timeline: an ordered
list of kernel-level :class:`TraceEvent` records, each carrying the
operator that launched it, the module path that emitted it (the paper's
forward-hook annotations), and the cost-model estimate of its execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.ir.ops import Op, OpCategory


@dataclass(frozen=True)
class KernelCost:
    """Cost-model output for one kernel launch.

    Attributes:
        time_s: total wall time including launch overhead.
        compute_time_s: time if purely bound by arithmetic throughput.
        memory_time_s: time if purely bound by memory traffic.
        launch_time_s: fixed launch/scheduling overhead.
        flops: floating-point operations executed.
        moved_bytes: bytes moved through the bounding memory level.
        limiter: ``"compute"``, ``"memory"`` or ``"launch"``.
    """

    time_s: float
    compute_time_s: float
    memory_time_s: float
    launch_time_s: float
    flops: float
    moved_bytes: float
    limiter: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("negative kernel time")

    def scaled(self, factor: int) -> "KernelCost":
        """Cost of launching this kernel ``factor`` times back to back.

        Used to fold long repetitive loops (autoregressive decode steps)
        into bucketed trace events without emitting every iteration.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        return KernelCost(
            time_s=self.time_s * factor,
            compute_time_s=self.compute_time_s * factor,
            memory_time_s=self.memory_time_s * factor,
            launch_time_s=self.launch_time_s * factor,
            flops=self.flops * factor,
            moved_bytes=self.moved_bytes * factor,
            limiter=self.limiter,
        )


def combine_costs(costs: Iterable[KernelCost]) -> KernelCost:
    """Sum a sequence of kernel costs into one aggregate record."""
    total = compute = memory = launch = flops = moved = 0.0
    for cost in costs:
        total += cost.time_s
        compute += cost.compute_time_s
        memory += cost.memory_time_s
        launch += cost.launch_time_s
        flops += cost.flops
        moved += cost.moved_bytes
    limiter = "compute" if compute >= memory else "memory"
    return KernelCost(
        time_s=total,
        compute_time_s=compute,
        memory_time_s=memory,
        launch_time_s=launch,
        flops=flops,
        moved_bytes=moved,
        limiter=limiter,
    )


@dataclass(frozen=True)
class TraceEvent:
    """One kernel launch in the timeline."""

    index: int
    module_path: str
    op: Op
    cost: KernelCost
    start_s: float
    flags: frozenset[str] = field(default_factory=frozenset)

    @property
    def category(self) -> OpCategory:
        return self.op.category

    @property
    def end_s(self) -> float:
        return self.start_s + self.cost.time_s

    @property
    def is_attention_anchor(self) -> bool:
        """True for exactly one event per attention-layer invocation.

        Sequence-length profiles (Figure 7) count attention *calls*, not
        kernels; baseline attention lowers to several kernels so only the
        first is flagged as the anchor.
        """
        return "attention_anchor" in self.flags


class Trace:
    """An ordered collection of trace events with query helpers.

    Aggregate queries (totals, per-category times) are memoized against
    the current event count: experiments ask for the same totals of the
    same shared profile traces dozens of times, and traces only ever
    grow (events are appended while a model runs, never edited), so a
    length-guarded memo is exact.
    """

    def __init__(self, events: list[TraceEvent] | None = None):
        self.events: list[TraceEvent] = events if events is not None else []
        self._agg: dict[str, tuple[int, object]] = {}

    def _aggregate(self, key: str, compute: Callable[[], object]) -> object:
        """Value of one aggregate, recomputed only when events grew."""
        entry = self._agg.get(key)
        count = len(self.events)
        if entry is not None and entry[0] == count:
            return entry[1]
        value = compute()
        self._agg[key] = (count, value)
        return value

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_time_s(self) -> float:
        return self._aggregate(
            "time", lambda: sum(e.cost.time_s for e in self.events)
        )

    @property
    def total_flops(self) -> float:
        return self._aggregate(
            "flops", lambda: sum(e.cost.flops for e in self.events)
        )

    @property
    def total_moved_bytes(self) -> float:
        return self._aggregate(
            "bytes", lambda: sum(e.cost.moved_bytes for e in self.events)
        )

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> "Trace":
        """New trace holding only the events the predicate accepts."""
        return Trace([event for event in self.events if predicate(event)])

    def by_category(self, category: OpCategory) -> "Trace":
        """Events of one operator category."""
        return self.filter(lambda event: event.category is category)

    def under_module(self, path_prefix: str) -> "Trace":
        """Events emitted by a module subtree (path prefix match)."""
        return self.filter(
            lambda event: event.module_path == path_prefix
            or event.module_path.startswith(path_prefix + ".")
        )

    def attention_anchors(self) -> list[TraceEvent]:
        """One event per attention-layer invocation (see anchor flag)."""
        return [event for event in self.events if event.is_attention_anchor]

    def time_by_category(self) -> dict[OpCategory, float]:
        """Execution time grouped by operator category (Figure 6 bars)."""

        def compute() -> dict[OpCategory, float]:
            times: dict[OpCategory, float] = {}
            get = times.get
            for event in self.events:
                category = event.op.category
                times[category] = get(category, 0.0) + event.cost.time_s
            return times

        return dict(self._aggregate("by_category", compute))
