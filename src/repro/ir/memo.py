"""Subgraph-replay memoization: record a module call, replay it later.

Generation loops walk the same subgraph with the same symbolic inputs
over and over — a diffusion model runs its UNet once per denoising step,
an autoregressive decoder its block stack once per token bucket.  The
operator stream such a call emits is a pure function of (module, inputs,
machine, tuning, attention lowering), so after watching one call the
context can *replay* the recorded events instead of re-walking the tree:
same ops, same costs, same flags, same clock arithmetic, with module
paths re-rooted at the new scope.  Replay is bit-identical to
re-execution; the golden-trace suite and the cache-transparency property
tests both pin that.

A :class:`Segment` is recorded on the *second* identical call (the
counter lives in ``Module._memo``), so storage is only paid for
subgraphs that actually repeat.  Set ``REPRO_NO_CACHE=1`` to disable
recording and replay along with the kernel-cost cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.ir.tensor import TensorSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.trace import TraceEvent


class Segment:
    """One recorded module call: relative trace events plus the output.

    ``items`` rows are ``(relative path, op, cost, flags, time_s)``;
    the trailing ``time_s`` duplicates ``cost.time_s`` so the replay
    loop advances the clock without an attribute lookup per event.
    """

    __slots__ = ("items", "output")

    def __init__(
        self, items: tuple[tuple, ...], output: Any
    ) -> None:
        self.items = items
        self.output = output

    def __len__(self) -> int:
        return len(self.items)


def output_is_replayable(output: Any) -> bool:
    """True when a forward output can be shared between calls.

    Replay hands every caller the same object, so only immutable values
    qualify: symbolic tensors, plain scalars, and tuples thereof.
    """
    if output is None or isinstance(
        output, (TensorSpec, bool, int, float, str)
    ):
        return True
    if isinstance(output, tuple):
        return all(output_is_replayable(item) for item in output)
    return False


def capture_segment(
    events: list["TraceEvent"], start: int, prefix: str, output: Any
) -> Segment | None:
    """Build a segment from the events a module call just appended.

    ``prefix`` is the scope path *outside* the call; stored paths are
    relative to it so replay can re-root them (``denoise_0.unet.mid`` is
    stored as ``unet.mid`` and replayed as ``denoise_17.unet.mid``).
    Returns ``None`` when the output cannot be safely shared.
    """
    if not output_is_replayable(output):
        return None
    cut = len(prefix) + 1 if prefix else 0
    return Segment(
        tuple(
            (
                event.module_path[cut:],
                event.op,
                event.cost,
                event.flags,
                event.cost.time_s,
            )
            for event in events[start:]
        ),
        output,
    )
