"""Numeric data types for symbolic tensors.

The characterization in the paper runs all models in half precision
(FP16, 2 bytes/element); the analytical memory formulas in Section V
explicitly assume 2 bytes per parameter.  We still model the full set of
dtypes so the roofline (Figure 5) can distinguish tensor-core eligible
precisions from CUDA-core ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DTypeKind(enum.Enum):
    """Coarse numeric family of a dtype."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"


@dataclass(frozen=True)
class DType:
    """A numeric element type.

    Attributes:
        name: canonical short name, e.g. ``"fp16"``.
        size: element size in bytes.
        kind: float/int/bool classification.
        tensor_core: whether A100-class tensor cores accelerate GEMMs in
            this precision.
    """

    name: str
    size: int
    kind: DTypeKind
    tensor_core: bool

    def __str__(self) -> str:
        return self.name

    @property
    def bits(self) -> int:
        return self.size * 8


FP32 = DType("fp32", 4, DTypeKind.FLOAT, tensor_core=False)
TF32 = DType("tf32", 4, DTypeKind.FLOAT, tensor_core=True)
FP16 = DType("fp16", 2, DTypeKind.FLOAT, tensor_core=True)
BF16 = DType("bf16", 2, DTypeKind.FLOAT, tensor_core=True)
FP8 = DType("fp8", 1, DTypeKind.FLOAT, tensor_core=True)
INT8 = DType("int8", 1, DTypeKind.INT, tensor_core=True)
INT32 = DType("int32", 4, DTypeKind.INT, tensor_core=False)
INT64 = DType("int64", 8, DTypeKind.INT, tensor_core=False)
BOOL = DType("bool", 1, DTypeKind.BOOL, tensor_core=False)

_BY_NAME = {
    dt.name: dt
    for dt in (FP32, TF32, FP16, BF16, FP8, INT8, INT32, INT64, BOOL)
}


def dtype_from_name(name: str) -> DType:
    """Look up a dtype by its canonical name (e.g. ``"fp16"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown dtype {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
