"""Symbolic tensor specifications.

Models in this repository are *operator graphs*, not numeric programs: a
``TensorSpec`` carries only shape and dtype, which is all the performance
model needs (FLOPs, bytes moved and parameter counts are pure functions
of shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.dtypes import FP16, DType


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype description of a tensor flowing between operators.

    Attributes:
        shape: tuple of positive dimension sizes. A zero-rank tuple is a
            scalar.
        dtype: element type; defaults to FP16, the precision the paper's
            characterization uses throughout.
    """

    shape: tuple[int, ...]
    dtype: DType = field(default=FP16)

    def __post_init__(self) -> None:
        for dim in self.shape:
            if not isinstance(dim, int) or dim <= 0:
                raise ValueError(f"invalid tensor shape {self.shape!r}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def numel(self) -> int:
        return math.prod(self.shape)

    @property
    def bytes(self) -> int:
        """Total storage footprint in bytes."""
        return self.numel * self.dtype.size

    def with_shape(self, *shape: int) -> "TensorSpec":
        """Return a spec with the same dtype and a new shape."""
        return TensorSpec(tuple(shape), self.dtype)

    def reshape(self, *shape: int) -> "TensorSpec":
        """Reshape, validating that the element count is preserved."""
        new = TensorSpec(tuple(shape), self.dtype)
        if new.numel != self.numel:
            raise ValueError(
                f"cannot reshape {self.shape} ({self.numel} elements) to "
                f"{shape} ({new.numel} elements)"
            )
        return new

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"{dims}:{self.dtype.name}"


def tensor(*shape: int, dtype: DType = FP16) -> TensorSpec:
    """Convenience constructor: ``tensor(2, 4096, 320)``."""
    return TensorSpec(tuple(shape), dtype)
