"""Tensor/operator intermediate representation.

The IR layer gives the repository its ``torch``-shaped substrate:
symbolic tensors (:mod:`repro.ir.tensor`), operators that know their own
FLOPs and bytes (:mod:`repro.ir.ops`), a hookable module tree
(:mod:`repro.ir.module`), and the execution context + trace machinery
that turns a forward pass into a costed kernel timeline.
"""

from repro.ir.context import AttentionImpl, ExecutionContext
from repro.ir.dtypes import BF16, BOOL, FP8, FP16, FP32, INT8, INT32, INT64, TF32, DType, dtype_from_name
from repro.ir.graph import (
    TimeTreeNode,
    module_graph,
    modules_of_type,
    parameter_hotspots,
    render_time_tree,
    time_tree,
    tree_depth,
)
from repro.ir.module import Module, Sequential
from repro.ir.ops import (
    AttentionInfo,
    AttentionKind,
    AttentionRole,
    Conv2d,
    Conv3d,
    Elementwise,
    Embedding,
    FusedAttention,
    Gemm,
    GroupNorm,
    LayerNorm,
    Op,
    OpCategory,
    Resample,
    Softmax,
    Transpose,
)
from repro.ir.tensor import TensorSpec, tensor
from repro.ir.trace import KernelCost, Trace, TraceEvent, combine_costs

__all__ = [
    "AttentionImpl",
    "AttentionInfo",
    "AttentionKind",
    "AttentionRole",
    "BF16",
    "BOOL",
    "Conv2d",
    "Conv3d",
    "DType",
    "Elementwise",
    "Embedding",
    "ExecutionContext",
    "FP8",
    "FP16",
    "FP32",
    "FusedAttention",
    "Gemm",
    "GroupNorm",
    "INT8",
    "INT32",
    "INT64",
    "KernelCost",
    "LayerNorm",
    "Module",
    "TimeTreeNode",
    "module_graph",
    "modules_of_type",
    "parameter_hotspots",
    "render_time_tree",
    "time_tree",
    "tree_depth",
    "Op",
    "OpCategory",
    "Resample",
    "Sequential",
    "Softmax",
    "TF32",
    "TensorSpec",
    "Trace",
    "TraceEvent",
    "Transpose",
    "combine_costs",
    "dtype_from_name",
    "tensor",
]
