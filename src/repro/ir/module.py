"""Module tree with forward hooks.

``Module`` mirrors the slice of ``torch.nn.Module`` the paper's
methodology relies on: a named tree of components whose forward
functions can be hooked ("we develop a profiling framework ... via
inserting hooks into the forward functions of each module"), plus
parameter counting for the roofline and taxonomy analyses.

Subclasses implement ``forward(ctx, *args)`` where ``ctx`` is an
:class:`repro.ir.context.ExecutionContext`; inside ``forward`` they emit
operators via ``ctx.emit`` or call child modules.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

ForwardHook = Callable[["Module", "Any", tuple, Any], None]
PreForwardHook = Callable[["Module", "Any", tuple], None]


class Module:
    """Base class for all model components."""

    def __init__(self, name: str | None = None):
        # Bypass __setattr__ child registration for internal state.
        object.__setattr__(self, "_children", {})
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "_pre_forward_hooks", [])
        object.__setattr__(self, "name", name or type(self).__name__)

    # -- tree structure --------------------------------------------------

    def __setattr__(self, key: str, value: Any) -> None:
        if isinstance(value, Module) and not key.startswith("_"):
            self._children[key] = value
        object.__setattr__(self, key, value)

    def add_module(self, key: str, module: "Module") -> "Module":
        """Explicitly register a child (used for list-like containers)."""
        self._children[key] = module
        object.__setattr__(self, key, module)
        return module

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """(attribute name, child) pairs in registration order."""
        return iter(self._children.items())

    def modules(self) -> Iterator["Module"]:
        """This module and all descendants, depth-first."""
        yield self
        for child in self._children.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """(dotted path, module) pairs over this subtree, depth-first."""
        path = prefix or self.name
        yield path, self
        for key, child in self._children.items():
            yield from child.named_modules(f"{path}.{key}")

    # -- parameters -------------------------------------------------------

    def own_param_count(self) -> int:
        """Parameters held directly by this module (children excluded)."""
        return 0

    def param_count(self) -> int:
        """Total trainable parameters in this subtree."""
        return self.own_param_count() + sum(
            child.param_count() for child in self._children.values()
        )

    def param_bytes(self, bytes_per_param: int = 2) -> int:
        """Model capacity in bytes (FP16 by default, per the paper)."""
        return self.param_count() * bytes_per_param

    # -- hooks & execution -------------------------------------------------

    def register_forward_hook(self, hook: ForwardHook) -> Callable[[], None]:
        """Add a post-forward hook; returns a remover callable."""
        self._forward_hooks.append(hook)
        return lambda: self._forward_hooks.remove(hook)

    def register_pre_forward_hook(
        self, hook: PreForwardHook
    ) -> Callable[[], None]:
        """Add a hook that fires before forward; returns a remover."""
        self._pre_forward_hooks.append(hook)
        return lambda: self._pre_forward_hooks.remove(hook)

    def forward(self, ctx: Any, *args: Any, **kwargs: Any) -> Any:
        """Emit this module's operators into ``ctx``; return outputs."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, ctx: Any, *args: Any, **kwargs: Any) -> Any:
        for hook in self._pre_forward_hooks:
            hook(self, ctx, args)
        with ctx.module_scope(self):
            output = self.forward(ctx, *args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, ctx, args, output)
        return output

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"params={self.param_count():,})"
        )


class Sequential(Module):
    """Runs children in order, feeding each the previous output."""

    def __init__(self, *stages: Module, name: str | None = None):
        super().__init__(name=name)
        for index, stage in enumerate(stages):
            self.add_module(str(index), stage)

    def forward(self, ctx: Any, x: Any) -> Any:
        for child in self._children.values():
            x = child(ctx, x)
        return x
