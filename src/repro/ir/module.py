"""Module tree with forward hooks.

``Module`` mirrors the slice of ``torch.nn.Module`` the paper's
methodology relies on: a named tree of components whose forward
functions can be hooked ("we develop a profiling framework ... via
inserting hooks into the forward functions of each module"), plus
parameter counting for the roofline and taxonomy analyses.

Subclasses implement ``forward(ctx, *args)`` where ``ctx`` is an
:class:`repro.ir.context.ExecutionContext`; inside ``forward`` they emit
operators via ``ctx.emit`` or call child modules.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.ir.memo import Segment, capture_segment

ForwardHook = Callable[["Module", "Any", tuple, Any], None]
PreForwardHook = Callable[["Module", "Any", tuple], None]

# Bumped on every hook (de)registration anywhere in the process; modules
# cache their subtree-hook scan against it so the memoization fast path
# does not walk the tree on every call.
_hook_epoch = 0


def _bump_hook_epoch() -> None:
    global _hook_epoch
    _hook_epoch += 1


class Module:
    """Base class for all model components.

    Modules are assumed immutable after construction (configs are frozen
    dataclasses throughout): repeated calls with equal symbolic inputs
    under an equal execution context emit identical operator streams,
    which is what lets ``__call__`` replay recorded subgraphs (see
    :mod:`repro.ir.memo`) instead of re-walking generation loops.
    """

    def __init__(self, name: str | None = None):
        # Bypass __setattr__ child registration for internal state.
        object.__setattr__(self, "_children", {})
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "_pre_forward_hooks", [])
        object.__setattr__(self, "name", name or type(self).__name__)
        # Subgraph memo table: call key -> 1 (seen once) | Segment.
        object.__setattr__(self, "_memo", {})
        # Cached (hook epoch, subtree-has-hooks) scan result.
        object.__setattr__(self, "_hooks_scan", (-1, False))

    # -- tree structure --------------------------------------------------

    def __setattr__(self, key: str, value: Any) -> None:
        if isinstance(value, Module) and not key.startswith("_"):
            self._children[key] = value
        object.__setattr__(self, key, value)

    def add_module(self, key: str, module: "Module") -> "Module":
        """Explicitly register a child (used for list-like containers)."""
        self._children[key] = module
        object.__setattr__(self, key, module)
        return module

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """(attribute name, child) pairs in registration order."""
        return iter(self._children.items())

    def modules(self) -> Iterator["Module"]:
        """This module and all descendants, depth-first."""
        yield self
        for child in self._children.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """(dotted path, module) pairs over this subtree, depth-first."""
        path = prefix or self.name
        yield path, self
        for key, child in self._children.items():
            yield from child.named_modules(f"{path}.{key}")

    # -- parameters -------------------------------------------------------

    def own_param_count(self) -> int:
        """Parameters held directly by this module (children excluded)."""
        return 0

    def param_count(self) -> int:
        """Total trainable parameters in this subtree."""
        return self.own_param_count() + sum(
            child.param_count() for child in self._children.values()
        )

    def param_bytes(self, bytes_per_param: int = 2) -> int:
        """Model capacity in bytes (FP16 by default, per the paper)."""
        return self.param_count() * bytes_per_param

    # -- hooks & execution -------------------------------------------------

    def register_forward_hook(self, hook: ForwardHook) -> Callable[[], None]:
        """Add a post-forward hook; returns a remover callable."""
        self._forward_hooks.append(hook)
        _bump_hook_epoch()

        def remove() -> None:
            self._forward_hooks.remove(hook)
            _bump_hook_epoch()

        return remove

    def register_pre_forward_hook(
        self, hook: PreForwardHook
    ) -> Callable[[], None]:
        """Add a hook that fires before forward; returns a remover."""
        self._pre_forward_hooks.append(hook)
        _bump_hook_epoch()

        def remove() -> None:
            self._pre_forward_hooks.remove(hook)
            _bump_hook_epoch()

        return remove

    def _subtree_has_hooks(self) -> bool:
        """True when any module in this subtree has a registered hook.

        Hooked subtrees must really execute (the hooks are the point),
        so they are excluded from record/replay.  The scan is cached
        against the global hook epoch; in hook-free runs it costs one
        tree walk per module for the whole process lifetime.
        """
        epoch, hooked = self._hooks_scan
        if epoch == _hook_epoch:
            return hooked
        hooked = any(
            module._forward_hooks or module._pre_forward_hooks
            for module in self.modules()
        )
        object.__setattr__(self, "_hooks_scan", (_hook_epoch, hooked))
        return hooked

    def forward(self, ctx: Any, *args: Any, **kwargs: Any) -> Any:
        """Emit this module's operators into ``ctx``; return outputs."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, ctx: Any, *args: Any, **kwargs: Any) -> Any:
        token = getattr(ctx, "memo_token", None)
        if token is None or self._subtree_has_hooks():
            # Hooked (or memo-disabled) path: always really execute.
            for hook in self._pre_forward_hooks:
                hook(self, ctx, args)
            with ctx.module_scope(self):
                output = self.forward(ctx, *args, **kwargs)
            for hook in self._forward_hooks:
                hook(self, ctx, args, output)
            return output
        try:
            key = (
                token,
                ctx._repeat_factor,
                args,
                tuple(sorted(kwargs.items())) if kwargs else (),
            )
            state = self._memo.get(key)
        except TypeError:
            # Unhashable arguments: this call cannot be memoized.
            key = None
            state = None
        if type(state) is Segment:
            ctx.replay_segment(state)
            return state.output
        if key is not None and state == 1:
            # Second identical call: execute once more, recording the
            # emissions so every further call replays them.
            start = len(ctx.trace.events)
            prefix = ctx.current_path
            with ctx.module_scope(self):
                output = self.forward(ctx, *args, **kwargs)
            segment = capture_segment(
                ctx.trace.events, start, prefix, output
            )
            # Outputs that cannot be shared leave the entry at 1; the
            # next call lands here again and simply re-executes.
            if segment is not None:
                self._memo[key] = segment
            return output
        if key is not None:
            self._memo[key] = 1
        with ctx.module_scope(self):
            return self.forward(ctx, *args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"params={self.param_count():,})"
        )


class Sequential(Module):
    """Runs children in order, feeding each the previous output."""

    def __init__(self, *stages: Module, name: str | None = None):
        super().__init__(name=name)
        for index, stage in enumerate(stages):
            self.add_module(str(index), stage)

    def forward(self, ctx: Any, x: Any) -> Any:
        for child in self._children.values():
            x = child(ctx, x)
        return x
