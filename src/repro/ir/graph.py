"""Module-hierarchy graphs and trace flame views.

Structural tooling over the module tree and recorded traces:

* :func:`module_graph` — the model as a ``networkx`` DiGraph (nodes are
  module paths with type/parameter attributes), for structural queries
  like "which subtrees hold the parameters" or "how deep is the UNet";
* :func:`time_tree` — a flame-graph-style aggregation of a trace's
  execution time by module-path prefix, the textual equivalent of
  reading a profiler timeline top-down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ir.module import Module
from repro.ir.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx


def module_graph(model: Module) -> "nx.DiGraph":
    """Build the module-containment DAG of a model.

    Node attributes: ``type`` (class name), ``own_params``,
    ``subtree_params``.
    """
    # Imported lazily: networkx costs ~120 ms at interpreter start and
    # only the structural-query helpers need it.
    import networkx as nx

    graph = nx.DiGraph()
    for path, module in model.named_modules():
        graph.add_node(
            path,
            type=type(module).__name__,
            own_params=module.own_param_count(),
            subtree_params=module.param_count(),
        )
        parent = path.rsplit(".", 1)[0]
        if parent != path:
            graph.add_edge(parent, path)
    return graph


def tree_depth(model: Module) -> int:
    """Longest root-to-leaf containment chain."""
    import networkx as nx

    graph = module_graph(model)
    root = model.name
    return max(
        (len(nx.shortest_path(graph, root, node)) for node in graph.nodes),
        default=1,
    )


def modules_of_type(model: Module, type_name: str) -> list[str]:
    """Paths of all modules whose class matches ``type_name``."""
    graph = module_graph(model)
    return sorted(
        node for node, data in graph.nodes(data=True)
        if data["type"] == type_name
    )


def parameter_hotspots(model: Module, top_k: int = 5) -> list[tuple[str, int]]:
    """Leaf-ish modules carrying the most parameters.

    Returns the ``top_k`` modules ranked by *own* parameters — where the
    capacity actually lives (embedding tables, big projections).
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    graph = module_graph(model)
    ranked = sorted(
        (
            (node, data["own_params"])
            for node, data in graph.nodes(data=True)
            if data["own_params"] > 0
        ),
        key=lambda item: item[1],
        reverse=True,
    )
    return ranked[:top_k]


@dataclass(frozen=True)
class TimeTreeNode:
    """One module-path prefix in a flame view."""

    path: str
    time_s: float
    fraction: float
    children: tuple["TimeTreeNode", ...]


def time_tree(trace: Trace, max_depth: int = 3) -> TimeTreeNode:
    """Aggregate a trace's time hierarchically by module path."""
    if max_depth <= 0:
        raise ValueError("max_depth must be positive")
    total = trace.total_time_s
    if total <= 0:
        raise ValueError("trace has no time")

    def build(prefix: tuple[str, ...], depth: int) -> TimeTreeNode:
        prefix_len = len(prefix)
        events = [
            event for event in trace
            if tuple(event.module_path.split(".")[:prefix_len]) == prefix
        ]
        time_s = sum(event.cost.time_s for event in events)
        children: tuple[TimeTreeNode, ...] = ()
        if depth < max_depth:
            next_parts = sorted(
                {
                    event.module_path.split(".")[prefix_len]
                    for event in events
                    if len(event.module_path.split(".")) > prefix_len
                }
            )
            children = tuple(
                build(prefix + (part,), depth + 1) for part in next_parts
            )
            children = tuple(
                sorted(children, key=lambda node: node.time_s,
                       reverse=True)
            )
        return TimeTreeNode(
            path=".".join(prefix) or "<root>",
            time_s=time_s,
            fraction=time_s / total,
            children=children,
        )

    return build((), 1)


def render_time_tree(
    node: TimeTreeNode, *, min_fraction: float = 0.01, indent: str = ""
) -> str:
    """Text flame view: one line per node above ``min_fraction``."""
    lines = [
        f"{indent}{node.path:<40s} {node.time_s*1e3:9.1f} ms "
        f"{node.fraction*100:5.1f}%"
    ]
    for child in node.children:
        if child.fraction >= min_fraction:
            lines.append(
                render_time_tree(
                    child, min_fraction=min_fraction, indent=indent + "  "
                )
            )
    return "\n".join(lines)
