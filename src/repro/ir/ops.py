"""Operator definitions.

Every layer in ``repro.layers`` lowers its forward pass to a sequence of
these operators — the analog of the CUDA kernels a PyTorch module would
launch.  Each operator knows its own FLOP count, bytes read/written and
(where relevant) parameter bytes, which is everything the kernel cost
models in ``repro.kernels`` need to produce a roofline execution time.

Operator *categories* follow the legend of Figure 6 in the paper
(Attention / Convolution / Linear / GroupNorm / Norm / Elementwise /
Embedding / Memory / Other) so operator-time breakdowns can be compared
directly against the published bars.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.ir.dtypes import FP16, DType


class OpCategory(enum.Enum):
    """Operator classes used in the paper's execution-time breakdowns."""

    ATTENTION = "attention"
    LINEAR = "linear"
    CONV = "conv"
    GROUPNORM = "groupnorm"
    NORM = "norm"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"
    MEMORY = "memory"
    OTHER = "other"


class AttentionRole(enum.Enum):
    """Whether an attention op attends to the sequence itself or to text."""

    SELF = "self"
    CROSS = "cross"


class AttentionKind(enum.Enum):
    """Spatial vs temporal attention (Section VI / Figure 10)."""

    SPATIAL = "spatial"
    TEMPORAL = "temporal"
    TOKEN = "token"  # ordinary 1D token attention (LLMs, transformer TTI)


@dataclass(frozen=True)
class AttentionInfo:
    """Metadata attached to every kernel emitted by an attention layer.

    ``seq_q``/``seq_kv`` feed the sequence-length profiler (Figure 7/8);
    ``kind`` distinguishes spatial from temporal attention for the
    Figure 11/12 analyses.
    """

    role: AttentionRole
    kind: AttentionKind
    seq_q: int
    seq_kv: int
    head_dim: int
    num_heads: int
    batch: int
    element_stride_bytes: int = 0
    """Stride between successive sequence elements in memory.

    0 means contiguous. Temporal attention operates on a transposed view
    where consecutive frames are H*W*C elements apart (Figure 10)."""


@dataclass(frozen=True)
class Op:
    """Base class for all operators.

    Subclasses implement :meth:`flops`, :meth:`read_bytes` and
    :meth:`write_bytes`; the default parameter footprint is zero.
    """

    name: str
    dtype: DType = field(default=FP16, kw_only=True)
    attention: AttentionInfo | None = field(default=None, kw_only=True)

    @property
    def category(self) -> OpCategory:
        """Breakdown bucket this op's time is charged to (Figure 6)."""
        raise NotImplementedError

    def flops(self) -> float:
        """Floating-point operations one launch executes."""
        raise NotImplementedError

    def read_bytes(self) -> float:
        """Bytes read from memory (activations + parameters)."""
        raise NotImplementedError

    def write_bytes(self) -> float:
        """Bytes written to memory."""
        raise NotImplementedError

    def param_bytes(self) -> float:
        """Bytes of trainable parameters this op reads (subset of reads)."""
        return 0.0

    def total_bytes(self) -> float:
        """Total bytes moved (reads + writes)."""
        return self.read_bytes() + self.write_bytes()

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; infinite for zero-traffic ops."""
        total = self.total_bytes()
        return self.flops() / total if total else math.inf


@dataclass(frozen=True)
class Gemm(Op):
    """(batched) matrix multiply: C[m,n] = A[m,k] @ B[k,n].

    Attributes:
        b_is_weight: the B operand is a model parameter shared across the
            batch (a ``Linear`` layer); it is read once, not per batch
            element.
        category_override: attention layers emit their QK^T / PV matmuls
            as Gemms but want them accounted under ATTENTION.
    """

    m: int
    n: int
    k: int
    batch: int = 1
    b_is_weight: bool = False
    category_override: OpCategory | None = None

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k, self.batch) <= 0:
            raise ValueError(f"invalid GEMM dims {self!r}")

    @property
    def category(self) -> OpCategory:
        if self.category_override is not None:
            return self.category_override
        return OpCategory.LINEAR

    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k * self.batch

    def read_bytes(self) -> float:
        a = self.m * self.k * self.batch
        b = self.k * self.n * (1 if self.b_is_weight else self.batch)
        return (a + b) * self.dtype.size

    def write_bytes(self) -> float:
        return float(self.m * self.n * self.batch * self.dtype.size)

    def param_bytes(self) -> float:
        if self.b_is_weight:
            return float(self.k * self.n * self.dtype.size)
        return 0.0


@dataclass(frozen=True)
class Conv2d(Op):
    """2D convolution, NCHW, square or rectangular kernels.

    ``h``/``w`` are *input* spatial dims; output dims derive from stride
    and (same-style) padding.
    """

    batch: int
    in_channels: int
    out_channels: int
    h: int
    w: int
    kh: int = 3
    kw: int = 3
    stride: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        if min(
            self.batch, self.in_channels, self.out_channels,
            self.h, self.w, self.kh, self.kw, self.stride, self.groups,
        ) <= 0:
            raise ValueError(f"invalid conv dims {self!r}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError("channels must divide groups")

    @property
    def out_h(self) -> int:
        return max(1, self.h // self.stride)

    @property
    def out_w(self) -> int:
        return max(1, self.w // self.stride)

    @property
    def category(self) -> OpCategory:
        return OpCategory.CONV

    def weight_count(self) -> int:
        """Number of filter weights (excluding bias)."""
        return (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kh
            * self.kw
        )

    def flops(self) -> float:
        return (
            2.0
            * self.batch
            * self.out_h
            * self.out_w
            * self.weight_count()
        )

    def read_bytes(self) -> float:
        activations = self.batch * self.in_channels * self.h * self.w
        return (activations + self.weight_count()) * self.dtype.size

    def write_bytes(self) -> float:
        return float(
            self.batch * self.out_channels * self.out_h * self.out_w
            * self.dtype.size
        )

    def param_bytes(self) -> float:
        return float(self.weight_count() * self.dtype.size)


@dataclass(frozen=True)
class Conv3d(Op):
    """3D (spatio-temporal) convolution used by TTV models.

    ``frames`` is the temporal extent; ``kt`` the temporal kernel size.
    TTV models substitute these for attention at high resolutions
    (Section II-B).
    """

    batch: int
    in_channels: int
    out_channels: int
    frames: int
    h: int
    w: int
    kt: int = 3
    kh: int = 3
    kw: int = 3
    stride: int = 1

    def __post_init__(self) -> None:
        if min(
            self.batch, self.in_channels, self.out_channels, self.frames,
            self.h, self.w, self.kt, self.kh, self.kw, self.stride,
        ) <= 0:
            raise ValueError(f"invalid conv3d dims {self!r}")

    @property
    def out_h(self) -> int:
        return max(1, self.h // self.stride)

    @property
    def out_w(self) -> int:
        return max(1, self.w // self.stride)

    @property
    def category(self) -> OpCategory:
        return OpCategory.CONV

    def weight_count(self) -> int:
        """Number of filter weights (excluding bias)."""
        return (
            self.out_channels * self.in_channels * self.kt * self.kh * self.kw
        )

    def flops(self) -> float:
        return (
            2.0 * self.batch * self.frames * self.out_h * self.out_w
            * self.weight_count()
        )

    def read_bytes(self) -> float:
        activations = (
            self.batch * self.in_channels * self.frames * self.h * self.w
        )
        return (activations + self.weight_count()) * self.dtype.size

    def write_bytes(self) -> float:
        return float(
            self.batch * self.out_channels * self.frames
            * self.out_h * self.out_w * self.dtype.size
        )

    def param_bytes(self) -> float:
        return float(self.weight_count() * self.dtype.size)


@dataclass(frozen=True)
class Softmax(Op):
    """Row-wise softmax over a [rows, cols] matrix.

    The baseline-attention softmax materializes the full similarity
    matrix; its effective bandwidth is decided by whether that matrix
    fits in cache (see ``repro.kernels.normalization``).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) <= 0:
            raise ValueError(f"invalid softmax dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.ATTENTION

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    def flops(self) -> float:
        # max, subtract, exp, sum, divide ~= 5 ops/element.
        return 5.0 * self.numel

    def read_bytes(self) -> float:
        # One pass for the max/sum statistics, one for normalization.
        return 2.0 * self.numel * self.dtype.size

    def write_bytes(self) -> float:
        return float(self.numel * self.dtype.size)


@dataclass(frozen=True)
class GroupNorm(Op):
    """GroupNorm over [batch, channels, spatial] activations.

    The paper finds GroupNorm takes 4-11% of diffusion-model execution
    time — it is pure bandwidth (two passes over the activation).
    """

    batch: int
    channels: int
    spatial: int
    groups: int = 32

    def __post_init__(self) -> None:
        if min(self.batch, self.channels, self.spatial, self.groups) <= 0:
            raise ValueError(f"invalid groupnorm dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.GROUPNORM

    @property
    def numel(self) -> int:
        return self.batch * self.channels * self.spatial

    def flops(self) -> float:
        return 8.0 * self.numel

    def read_bytes(self) -> float:
        return 2.0 * self.numel * self.dtype.size

    def write_bytes(self) -> float:
        return float(self.numel * self.dtype.size)

    def param_bytes(self) -> float:
        return float(2 * self.channels * self.dtype.size)


@dataclass(frozen=True)
class LayerNorm(Op):
    """LayerNorm over [rows, cols] activations (transformer blocks)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) <= 0:
            raise ValueError(f"invalid layernorm dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.NORM

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    def flops(self) -> float:
        return 8.0 * self.numel

    def read_bytes(self) -> float:
        return 2.0 * self.numel * self.dtype.size

    def write_bytes(self) -> float:
        return float(self.numel * self.dtype.size)

    def param_bytes(self) -> float:
        return float(2 * self.cols * self.dtype.size)


@dataclass(frozen=True)
class Elementwise(Op):
    """Pointwise kernel: activation functions, residual adds, scales.

    Attributes:
        numel: output element count.
        inputs: number of input tensors read (1 for GeLU, 2 for add).
        flops_per_element: arithmetic per output element.
    """

    numel: int
    inputs: int = 1
    flops_per_element: float = 1.0
    category_override: OpCategory | None = None

    def __post_init__(self) -> None:
        if self.numel <= 0 or self.inputs <= 0:
            raise ValueError(f"invalid elementwise dims {self!r}")

    @property
    def category(self) -> OpCategory:
        if self.category_override is not None:
            return self.category_override
        return OpCategory.ELEMENTWISE

    def flops(self) -> float:
        return self.flops_per_element * self.numel

    def read_bytes(self) -> float:
        return float(self.inputs * self.numel * self.dtype.size)

    def write_bytes(self) -> float:
        return float(self.numel * self.dtype.size)


@dataclass(frozen=True)
class Embedding(Op):
    """Token-embedding gather: ``tokens`` lookups of ``dim``-wide rows."""

    tokens: int
    dim: int
    vocab: int = 32000

    def __post_init__(self) -> None:
        if min(self.tokens, self.dim, self.vocab) <= 0:
            raise ValueError(f"invalid embedding dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.EMBEDDING

    def flops(self) -> float:
        return 0.0

    def read_bytes(self) -> float:
        return float(self.tokens * self.dim * self.dtype.size)

    def write_bytes(self) -> float:
        return float(self.tokens * self.dim * self.dtype.size)

    def param_bytes(self) -> float:
        return float(self.vocab * self.dim * self.dtype.size)


@dataclass(frozen=True)
class Resample(Op):
    """Up/downsampling inside the UNet (nearest / bilinear interpolation).

    These reshape the latent between UNet stages and are the mechanism
    behind the cyclic sequence-length profile of Figure 7.
    """

    batch: int
    channels: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int

    def __post_init__(self) -> None:
        if min(
            self.batch, self.channels, self.in_h, self.in_w,
            self.out_h, self.out_w,
        ) <= 0:
            raise ValueError(f"invalid resample dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.MEMORY

    def flops(self) -> float:
        # ~4 ops/output element for bilinear blending.
        return 4.0 * self.batch * self.channels * self.out_h * self.out_w

    def read_bytes(self) -> float:
        return float(
            self.batch * self.channels * self.in_h * self.in_w
            * self.dtype.size
        )

    def write_bytes(self) -> float:
        return float(
            self.batch * self.channels * self.out_h * self.out_w
            * self.dtype.size
        )


@dataclass(frozen=True)
class Transpose(Op):
    """Layout change (e.g. the (B,F,HW) -> (B,HW,F) swap of Figure 10).

    Attention layers re-categorize their rearranges as ATTENTION: the
    module-hook attribution the paper uses charges these copies to the
    attention module that issues them.
    """

    numel: int
    category_override: OpCategory | None = None

    def __post_init__(self) -> None:
        if self.numel <= 0:
            raise ValueError(f"invalid transpose size {self!r}")

    @property
    def category(self) -> OpCategory:
        if self.category_override is not None:
            return self.category_override
        return OpCategory.MEMORY

    def flops(self) -> float:
        return 0.0

    def read_bytes(self) -> float:
        return float(self.numel * self.dtype.size)

    def write_bytes(self) -> float:
        return float(self.numel * self.dtype.size)


@dataclass(frozen=True)
class FusedAttention(Op):
    """Flash-Attention-style fused kernel.

    Same FLOPs as the unfused sequence, but HBM traffic is only the
    Q/K/V inputs and the output — the N x N similarity matrix never
    leaves on-chip memory.  This is exactly the optimization the paper
    evaluates (Section IV).
    """

    batch: int
    seq_q: int
    seq_kv: int
    head_dim: int
    num_heads: int
    causal: bool = False

    def __post_init__(self) -> None:
        if min(
            self.batch, self.seq_q, self.seq_kv, self.head_dim,
            self.num_heads,
        ) <= 0:
            raise ValueError(f"invalid attention dims {self!r}")

    @property
    def category(self) -> OpCategory:
        return OpCategory.ATTENTION

    def _pair_fraction(self) -> float:
        # Causal masking halves the scored pairs (only when square).
        if self.causal and self.seq_q == self.seq_kv:
            return 0.5
        return 1.0

    def flops(self) -> float:
        pairs = (
            self.batch * self.num_heads * self.seq_q * self.seq_kv
            * self._pair_fraction()
        )
        matmul = 4.0 * pairs * self.head_dim  # QK^T and PV
        softmax = 5.0 * pairs
        return matmul + softmax

    def read_bytes(self) -> float:
        q = self.batch * self.num_heads * self.seq_q * self.head_dim
        kv = 2 * self.batch * self.num_heads * self.seq_kv * self.head_dim
        return float((q + kv) * self.dtype.size)

    def write_bytes(self) -> float:
        return float(
            self.batch * self.num_heads * self.seq_q * self.head_dim
            * self.dtype.size
        )
