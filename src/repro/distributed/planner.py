"""Parallelism auto-planner: enumerate, cost, and rank distributed configs.

The partitioners in this package can shard a profiled trace any way you
ask — but *which* (tp, pp, dp, microbatch, sequence-parallel) config to
ask for has been hand-picked so far, and the paper's point is that the
answer shifts per model and per machine.  This module searches the
space automatically:

1. :func:`enumerate_configs` walks power-of-two (tp, pp, dp) groupings
   within a GPU budget, microbatch counts, and sequence-parallel
   on/off — canonicalized so degenerate axes appear exactly once.
2. :class:`PlannerBasis` prices configs **symbolically**: one tensor-
   parallel *axis* — per-event critical-rank kernel times, collective
   times, and their running prefix — is built per (tp, microbatch
   size) and then every (pp, dp, m, sp) combination is costed from the
   prefix arrays as a per-config delta: stage sums, point-to-point
   boundary transfers, pipeline wavefronts.  No re-partition, no
   re-pricing.  :func:`bruteforce_cost` is the slow path that rebuilds
   the axis from a fresh partition per config; the property suite
   pins both paths to identical floats.
3. Pipeline behaviour comes from :mod:`repro.distributed.schedule`
   (GPipe vs 1F1B with explicit bubble accounting) for training and
   the forward wavefront for serving latency.
4. Plans carry a per-device memory estimate (weight + KV shards plus
   activation residency) and are filtered by the device HBM capacity
   under a safety margin; :func:`pareto_frontier` keeps the
   non-dominated set over (latency, throughput, device count).

The axis contract the symbolic path rests on: with uniform shard
weights, largest-remainder ties break toward rank 0, so rank 0 always
holds the largest shard of every event and therefore the latest clock
between collectives.  Accumulating rank 0's kernel time plus each
exposed collective in trace order reproduces
:func:`repro.distributed.timeline.build_timelines` makespans
**bit-exactly** (the degenerate tp=1, pp=1 config reproduces the
single-device ``trace.total_time_s`` unchanged) — tested, not assumed.

See ``docs/PLANNER.md`` for the model and its divergences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.distributed.collectives import CollectiveKind
from repro.distributed.partition import TensorParallel
from repro.distributed.registry import MachineSpec, machine_from_name
from repro.distributed.schedule import (
    ScheduleResult,
    forward_makespan,
    simulate_1f1b,
    simulate_gpipe,
)
from repro.distributed.sharding import even_split
from repro.ir.context import AttentionImpl
from repro.ir.module import Module
from repro.ir.trace import Trace
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.kernels.estimator import CachingCostEstimator


@dataclass(frozen=True)
class ParallelConfig:
    """One point in the parallelism search space.

    ``dp`` replicas each span ``tp * pp`` GPUs; a replica's batch share
    is split into ``microbatches`` pipeline microbatches.
    ``sequence_parallel`` keeps activations sharded ``1/tp`` between
    the tensor-parallel collectives (each all-reduce becomes a
    reduce-scatter + all-gather pair).
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    microbatches: int = 1
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        for name in ("tp", "pp", "dp", "microbatches"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.sequence_parallel and self.tp == 1:
            raise ValueError("sequence parallelism requires tp > 1")

    @property
    def world(self) -> int:
        """Total GPUs the config occupies."""
        return self.tp * self.pp * self.dp

    @property
    def replica_world(self) -> int:
        """GPUs inside one data-parallel replica."""
        return self.tp * self.pp

    @property
    def label(self) -> str:
        """Compact deterministic label, e.g. ``"tp2-pp2-dp2-mb4-sp"``."""
        parts = [f"tp{self.tp}", f"pp{self.pp}", f"dp{self.dp}"]
        if self.microbatches > 1:
            parts.append(f"mb{self.microbatches}")
        if self.sequence_parallel:
            parts.append("sp")
        return "-".join(parts)


def _powers_of_two(limit: int) -> list[int]:
    values = []
    v = 1
    while v <= limit:
        values.append(v)
        v *= 2
    return values


def enumerate_configs(
    *,
    gpu_budget: int = 8,
    global_batch: int = 8,
    microbatches: Sequence[int] = (1, 2, 4, 8),
    sequence_parallel: Sequence[bool] = (False, True),
) -> list[ParallelConfig]:
    """All canonical configs within a GPU budget, deterministically ordered.

    Power-of-two (tp, pp, dp) with ``tp * pp * dp <= gpu_budget`` and
    ``dp <= global_batch``.  Canonical means each degenerate axis
    appears once: ``pp == 1`` forces one microbatch, ``tp == 1`` forces
    sequence-parallel off, and microbatch counts never exceed the
    replica's batch share.
    """
    if gpu_budget < 1:
        raise ValueError("gpu_budget must be >= 1")
    if global_batch < 1:
        raise ValueError("global_batch must be >= 1")
    configs: list[ParallelConfig] = []
    for tp in _powers_of_two(gpu_budget):
        for pp in _powers_of_two(gpu_budget // tp):
            for dp in _powers_of_two(gpu_budget // (tp * pp)):
                if dp > global_batch:
                    continue
                replica_batch = even_split(global_batch, dp)[0]
                m_options = (
                    sorted({m for m in microbatches if 1 <= m <= replica_batch})
                    if pp > 1
                    else [1]
                )
                sp_options = (
                    sorted(set(sequence_parallel)) if tp > 1 else [False]
                )
                for m in m_options:
                    for sp in sp_options:
                        configs.append(
                            ParallelConfig(
                                tp=tp, pp=pp, dp=dp,
                                microbatches=m, sequence_parallel=sp,
                            )
                        )
    configs.sort(
        key=lambda c: (c.tp, c.pp, c.dp, c.microbatches, c.sequence_parallel)
    )
    return configs


@dataclass
class TPAxis:
    """Symbolic cost basis of one (tp degree, microbatch size) pair.

    Per-event arrays over the profiled trace, all fold factors applied:

    * ``times[i]`` — rank 0's kernel time for event ``i`` (rank 0 holds
      the largest shard, hence the critical path);
    * ``comm[i]`` / ``comm_sp[i]`` — exposed collective time after
      event ``i``, plain and sequence-parallel variants;
    * ``acc`` / ``acc_sp`` — running prefix of ``times + comm`` in
      trace order (``acc[i+1] = acc[i] + times[i] + comm[i]``), so any
      contiguous stage's wall time is one subtraction;
    * ``out_bytes[i]`` — the unsharded activation each event writes
      (pipeline boundary payloads).
    """

    tp: int
    batch: int
    times: list[float]
    comm: list[float]
    comm_sp: list[float]
    acc: list[float]
    acc_sp: list[float]
    out_bytes: list[float]
    act_peak_shard: float
    max_comm_payload: float

    def __len__(self) -> int:
        return len(self.times)

    @property
    def total_s(self) -> float:
        """Whole-trace wall time at this tp degree (pp = 1)."""
        return self.acc[-1]

    @property
    def comm_total_s(self) -> float:
        """Collective time summed over the trace (plain variant)."""
        return sum(self.comm)


def build_axis(
    trace: Trace,
    tp: int,
    machine: MachineSpec,
    *,
    tuning: TuningConstants = DEFAULT_TUNING,
    batch: int = 1,
) -> TPAxis:
    """Partition + price one tensor-parallel axis over ``trace``.

    This is the only place the planner touches the partitioner and the
    kernel estimator; everything downstream works on the arrays.  For
    ``tp == 1`` the profiled event costs are taken verbatim — no
    re-pricing — which is what makes the degenerate config reproduce
    the single-device trace byte-identically.
    """
    n = len(trace.events)
    times: list[float] = []
    comm: list[float] = []
    comm_sp: list[float] = []
    out_bytes: list[float] = []
    act_peak = 0.0
    max_payload = 0.0
    if tp == 1:
        for event in trace.events:
            times.append(event.cost.time_s)
            comm.append(0.0)
            comm_sp.append(0.0)
            op = event.op
            out_bytes.append(op.write_bytes())
            transient = op.read_bytes() + op.write_bytes()
            if transient > act_peak:
                act_peak = transient
    else:
        plan = TensorParallel(tp).partition(trace)
        estimator = CachingCostEstimator(machine.gpu, tuning)
        comm_model = machine.topology.cost_model(tp)
        op_time: dict[int, float] = {}
        comm_memo: dict[int, tuple[float, float]] = {}
        for event in plan.sharded_events:
            source, _, ops, spec, repeat, _ = event
            op0 = ops[0]
            if op0 is None:
                times.append(0.0)
                transient = 0.0
            else:
                base_s = op_time.get(id(op0))
                if base_s is None:
                    base_s = estimator.estimate(op0).time_s
                    op_time[id(op0)] = base_s
                # Same expression as build_timelines so the floats match.
                times.append(base_s * repeat if repeat != 1 else base_s)
                transient = op0.read_bytes() + op0.write_bytes()
            if transient > act_peak:
                act_peak = transient
            out_bytes.append(source.op.write_bytes())
            if spec is None:
                comm.append(0.0)
                comm_sp.append(0.0)
            else:
                entry = comm_memo.get(id(spec))
                if entry is None:
                    plain = comm_model.estimate(
                        spec.kind, spec.payload_bytes, tp
                    ).time_s
                    if spec.kind is CollectiveKind.ALL_REDUCE:
                        # Sequence parallelism replaces the all-reduce
                        # with reduce-scatter + all-gather around the
                        # sharded activation region.
                        sp_s = (
                            comm_model.reduce_scatter(
                                spec.payload_bytes, tp
                            ).time_s
                            + comm_model.all_gather(
                                spec.payload_bytes, tp
                            ).time_s
                        )
                    else:
                        sp_s = plain
                    entry = (plain, sp_s)
                    comm_memo[id(spec)] = entry
                comm.append(entry[0] * repeat)
                comm_sp.append(entry[1] * repeat)
                if spec.payload_bytes > max_payload:
                    max_payload = spec.payload_bytes
    acc = [0.0] * (n + 1)
    acc_sp = [0.0] * (n + 1)
    run = run_sp = 0.0
    for i in range(n):
        # Time first, then the collective — the order build_timelines
        # advances the clocks in.
        run += times[i]
        run += comm[i]
        acc[i + 1] = run
        run_sp += times[i]
        run_sp += comm_sp[i]
        acc_sp[i + 1] = run_sp
    return TPAxis(
        tp=tp,
        batch=batch,
        times=times,
        comm=comm,
        comm_sp=comm_sp,
        acc=acc,
        acc_sp=acc_sp,
        out_bytes=out_bytes,
        act_peak_shard=act_peak,
        max_comm_payload=max_payload,
    )


def stage_boundaries(weights: Sequence[float], stages: int) -> list[int]:
    """End index (exclusive) of each of the first ``stages - 1`` stages.

    Same greedy proportional-share rule as
    :meth:`repro.distributed.partition.PipelineParallel._stage_boundaries`,
    applied to the axis' per-event wall times; every stage is guaranteed
    at least one event (callers must ensure ``stages <= len(weights)``).
    """
    n = len(weights)
    if stages > n:
        raise ValueError("more stages than events")
    total = sum(weights)
    boundaries: list[int] = []
    cumulative = 0.0
    target = 1
    for index, w in enumerate(weights):
        cumulative += w
        remaining = n - (index + 1)
        while (
            target < stages
            and remaining >= stages - target
            and (
                cumulative >= total * target / stages
                # Last index that still leaves one event per remaining
                # stage: close now or starve every stage after this one
                # (the same forced close as PipelineParallel).
                or remaining == stages - target
            )
        ):
            boundaries.append(index + 1)
            target += 1
    while len(boundaries) < stages - 1:
        boundaries.append(n)
    return boundaries


def split_stages(
    axis: TPAxis, pp: int, sequence_parallel: bool, machine: MachineSpec
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Per-stage forward times and boundary p2p times for one axis.

    Stage wall time is one prefix subtraction per stage; the boundary
    activation (the last event's unsharded output, divided by ``tp``
    under sequence parallelism) is priced as an adjacent-rank
    point-to-point transfer.  ``pp == 1`` returns the whole-trace total
    unchanged with a zero p2p — the degenerate-axis contract.
    """
    acc = axis.acc_sp if sequence_parallel else axis.acc
    if pp == 1:
        return (acc[-1],), (0.0,)
    weights = [acc[i + 1] - acc[i] for i in range(len(axis))]
    bounds = stage_boundaries(weights, pp)
    starts = [0] + bounds
    ends = bounds + [len(axis)]
    p2p_model = machine.topology.cost_model(2)
    stage_times: list[float] = []
    p2p_times: list[float] = []
    for s in range(pp):
        stage_times.append(acc[ends[s]] - acc[starts[s]])
        if s < pp - 1:
            payload = axis.out_bytes[ends[s] - 1]
            if sequence_parallel:
                # The boundary activation stays sharded 1/tp per rank.
                payload = payload / axis.tp
            p2p_times.append(p2p_model.send_recv(payload).time_s)
        else:
            p2p_times.append(0.0)
    return tuple(stage_times), tuple(p2p_times)


@dataclass(frozen=True)
class PlanPoint:
    """One fully-costed configuration.

    Attributes:
        config: the parallelism choice.
        latency_s: one batched forward through the replica (microbatch
            wavefront across pipeline stages).
        throughput_rps: requests/s of the whole ``config.world``-GPU
            deployment at the planner's global batch.
        per_gpu_rps: ``throughput_rps / config.world``.
        stage_times_s: per-stage forward time for one microbatch,
            boundary p2p included.
        tp_comm_s: collective time inside one microbatch's forward.
        p2p_s: pipeline boundary transfer time per microbatch.
        bubble_fraction: forward-wavefront idle share across stages.
        gpipe / one_f1b: training-step schedules (backward modelled as
            ``backward_ratio`` x forward).
        train_step_s: the cheaper schedule's makespan.
        memory_bytes: per-device estimate (weight + KV shards +
            activation residency).
        fits: ``memory_bytes <= capacity * margin``.
        microbatch: requests per microbatch on this config.
    """

    config: ParallelConfig
    latency_s: float
    throughput_rps: float
    per_gpu_rps: float
    stage_times_s: tuple[float, ...]
    tp_comm_s: float
    p2p_s: float
    bubble_fraction: float
    gpipe: ScheduleResult
    one_f1b: ScheduleResult
    train_step_s: float
    memory_bytes: float
    fits: bool
    microbatch: int


def _compose_point(
    axis: TPAxis,
    stage_times: tuple[float, ...],
    p2p_times: tuple[float, ...],
    m_eff: int,
    mb: int,
    config: ParallelConfig,
    *,
    param_bytes: float,
    kv_bytes: float,
    capacity_bytes: float,
    global_batch: int,
    backward_ratio: float,
    memory_margin: float,
) -> PlanPoint:
    """Pure composition of a priced axis into a :class:`PlanPoint`.

    Shared verbatim by the symbolic path and :func:`bruteforce_cost`,
    so any disagreement between the two is confined to the axis arrays
    themselves — exactly what the property suite compares.
    """
    forward = tuple(t + p for t, p in zip(stage_times, p2p_times))
    latency = forward_makespan(forward, m_eff)
    # The slowest (largest-share) replica bounds the round, so the
    # deployment completes `global_batch` requests per `latency`.
    throughput = global_batch / latency if latency > 0 else 0.0
    if config.pp == 1:
        bubble = 0.0
    else:
        work = m_eff * sum(forward)
        bubble = 1.0 - work / (config.pp * latency)
    backward = tuple(t * backward_ratio for t in forward)
    gpipe = simulate_gpipe(forward, backward, m_eff)
    one_f1b = simulate_1f1b(forward, backward, m_eff)
    shard = config.tp * config.pp
    activation = axis.act_peak_shard
    if not config.sequence_parallel:
        # Without sequence parallelism every rank materializes the full
        # activation a collective reconstitutes.
        activation += axis.max_comm_payload
    memory = param_bytes / shard + kv_bytes / shard + activation
    comm = axis.comm_sp if config.sequence_parallel else axis.comm
    return PlanPoint(
        config=config,
        latency_s=latency,
        throughput_rps=throughput,
        per_gpu_rps=throughput / config.world,
        stage_times_s=forward,
        tp_comm_s=sum(comm),
        p2p_s=sum(p2p_times),
        bubble_fraction=bubble,
        gpipe=gpipe,
        one_f1b=one_f1b,
        train_step_s=min(gpipe.makespan_s, one_f1b.makespan_s),
        memory_bytes=memory,
        fits=memory <= capacity_bytes * memory_margin,
        microbatch=mb,
    )


def pareto_frontier(points: Iterable[PlanPoint]) -> list[PlanPoint]:
    """Non-dominated subset over (latency min, throughput max, GPUs min).

    A point is dominated when another is at least as good on all three
    objectives and strictly better on one.  Order is preserved; exact
    duplicates on all three objectives are all kept.
    """
    pts = list(points)
    kept: list[PlanPoint] = []
    for a in pts:
        dominated = False
        for b in pts:
            if b is a:
                continue
            if (
                b.latency_s <= a.latency_s
                and b.throughput_rps >= a.throughput_rps
                and b.config.world <= a.config.world
                and (
                    b.latency_s < a.latency_s
                    or b.throughput_rps > a.throughput_rps
                    or b.config.world < a.config.world
                )
            ):
                dominated = True
                break
        if not dominated:
            kept.append(a)
    return kept


class PlannerBasis:
    """Cached symbolic basis for costing many configs of one workload.

    Holds the profiled traces (one per microbatch size) and the priced
    tensor-parallel axes (one per (tp, microbatch size)); costing a
    config is then array arithmetic.  ``stats`` counts how much work
    the caching avoided: ``configs_costed`` grows with the search,
    ``axis_builds`` and ``trace_profiles`` stay at the handful of
    distinct (tp, batch) pairs.
    """

    def __init__(
        self,
        model: Module,
        machine: MachineSpec | str,
        *,
        attention_impl: AttentionImpl = AttentionImpl.FLASH,
        tuning: TuningConstants = DEFAULT_TUNING,
        kv_bytes: float = 0.0,
    ):
        self.model = model
        self.machine = (
            machine_from_name(machine) if isinstance(machine, str)
            else machine
        )
        self.attention_impl = attention_impl
        self.tuning = tuning
        self.kv_bytes = float(kv_bytes)
        self.param_bytes = float(model.param_bytes())
        self.model_name = getattr(model, "name", type(model).__name__)
        self._traces: dict[int, Trace] = {}
        self._axes: dict[tuple[int, int], TPAxis] = {}
        # (id(axis), pp, sp) -> (stage forward times, p2p times).
        self._stages: dict[
            tuple[int, int, bool],
            tuple[tuple[float, ...], tuple[float, ...]],
        ] = {}
        self.stats: dict[str, int] = {
            "trace_profiles": 0,
            "axis_builds": 0,
            "configs_costed": 0,
        }

    def trace(self, batch: int) -> Trace:
        """Profiled single-device trace at ``batch`` (cached)."""
        trace = self._traces.get(batch)
        if trace is None:
            from repro.profiler.profiler import profile_model

            trace = profile_model(
                self.model,
                gpu=self.machine.gpu,
                attention_impl=self.attention_impl,
                tuning=self.tuning,
                batch=batch,
            ).trace
            self._traces[batch] = trace
            self.stats["trace_profiles"] += 1
        return trace

    def axis(self, tp: int, batch: int) -> TPAxis:
        """Priced tensor-parallel axis at (tp, microbatch size) (cached)."""
        key = (tp, batch)
        axis = self._axes.get(key)
        if axis is None:
            axis = build_axis(
                self.trace(batch), tp, self.machine,
                tuning=self.tuning, batch=batch,
            )
            self._axes[key] = axis
            self.stats["axis_builds"] += 1
        return axis

    def _stage_split(
        self, axis: TPAxis, pp: int, sp: bool
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        key = (id(axis), pp, sp)
        entry = self._stages.get(key)
        if entry is None:
            entry = split_stages(axis, pp, sp, self.machine)
            self._stages[key] = entry
        return entry

    def _forward_parts(
        self, config: ParallelConfig, replica_batch: int
    ) -> tuple[
        TPAxis, tuple[float, ...], tuple[float, ...], int, int
    ]:
        """Axis, stage times, p2p times, microbatch count and size."""
        m_eff = min(config.microbatches, replica_batch)
        mb = even_split(replica_batch, m_eff)[0]
        axis = self.axis(config.tp, mb)
        if config.pp > len(axis):
            raise ValueError(
                f"pp={config.pp} exceeds the trace's {len(axis)} events"
            )
        stage_times, p2p_times = self._stage_split(
            axis, config.pp, config.sequence_parallel
        )
        return axis, stage_times, p2p_times, m_eff, mb

    def replica_latency(
        self, config: ParallelConfig, replica_batch: int
    ) -> float:
        """One replica's batched forward latency at ``replica_batch``.

        This is the batch-latency curve the serving layer consumes
        (:func:`repro.serving.sharded.replica_from_plan`).
        """
        if replica_batch < 1:
            raise ValueError("replica_batch must be >= 1")
        _, stage_times, p2p_times, m_eff, _ = self._forward_parts(
            config, replica_batch
        )
        forward = tuple(t + p for t, p in zip(stage_times, p2p_times))
        return forward_makespan(forward, m_eff)

    def cost_config(
        self,
        config: ParallelConfig,
        *,
        global_batch: int = 8,
        backward_ratio: float = 2.0,
        memory_margin: float = 0.9,
    ) -> PlanPoint:
        """Price one configuration from the cached symbolic basis."""
        self.stats["configs_costed"] += 1
        replica_batch = even_split(global_batch, config.dp)[0]
        axis, stage_times, p2p_times, m_eff, mb = self._forward_parts(
            config, replica_batch
        )
        return _compose_point(
            axis, stage_times, p2p_times, m_eff, mb, config,
            param_bytes=self.param_bytes,
            kv_bytes=self.kv_bytes,
            capacity_bytes=self.machine.gpu.dram_capacity,
            global_batch=global_batch,
            backward_ratio=backward_ratio,
            memory_margin=memory_margin,
        )


def bruteforce_cost(
    basis: PlannerBasis,
    config: ParallelConfig,
    *,
    global_batch: int = 8,
    backward_ratio: float = 2.0,
    memory_margin: float = 0.9,
) -> PlanPoint:
    """Cost one config by fully re-partitioning and re-pricing the trace.

    The reference the symbolic-delta path is validated against: a fresh
    :func:`build_axis` per call (re-partition + kernel/collective
    re-pricing, no axis or stage-split reuse) composed through the same
    pure :func:`_compose_point`.  The property suite asserts the
    resulting :class:`PlanPoint` floats are *identical* to
    :meth:`PlannerBasis.cost_config`'s.
    """
    replica_batch = even_split(global_batch, config.dp)[0]
    m_eff = min(config.microbatches, replica_batch)
    mb = even_split(replica_batch, m_eff)[0]
    axis = build_axis(
        basis.trace(mb), config.tp, basis.machine,
        tuning=basis.tuning, batch=mb,
    )
    if config.pp > len(axis):
        raise ValueError(
            f"pp={config.pp} exceeds the trace's {len(axis)} events"
        )
    stage_times, p2p_times = split_stages(
        axis, config.pp, config.sequence_parallel, basis.machine
    )
    return _compose_point(
        axis, stage_times, p2p_times, m_eff, mb, config,
        param_bytes=basis.param_bytes,
        kv_bytes=basis.kv_bytes,
        capacity_bytes=basis.machine.gpu.dram_capacity,
        global_batch=global_batch,
        backward_ratio=backward_ratio,
        memory_margin=memory_margin,
    )


@dataclass
class PlannerResult:
    """Outcome of one planner search."""

    model_name: str
    machine: MachineSpec
    gpu_budget: int
    global_batch: int
    points: list[PlanPoint]
    frontier: list[PlanPoint]
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def feasible(self) -> list[PlanPoint]:
        """Points that fit the per-device memory cap."""
        return [p for p in self.points if p.fits]

    def best_throughput(self) -> PlanPoint:
        """Feasible point with the highest deployment throughput."""
        candidates = self.feasible
        if not candidates:
            raise ValueError("no feasible plan under the memory cap")
        return min(
            candidates,
            key=lambda p: (-p.throughput_rps, p.config.world, p.latency_s),
        )

    def best_latency(self) -> PlanPoint:
        """Feasible point with the lowest batched-forward latency."""
        candidates = self.feasible
        if not candidates:
            raise ValueError("no feasible plan under the memory cap")
        return min(
            candidates,
            key=lambda p: (p.latency_s, p.config.world, -p.throughput_rps),
        )


def plan_parallelism(
    model: Module,
    *,
    machine: MachineSpec | str = "dgx-a100-80g",
    gpu_budget: int = 8,
    global_batch: int = 8,
    microbatches: Sequence[int] = (1, 2, 4, 8),
    sequence_parallel: Sequence[bool] = (False, True),
    backward_ratio: float = 2.0,
    memory_margin: float = 0.9,
    kv_bytes: float = 0.0,
    attention_impl: AttentionImpl = AttentionImpl.FLASH,
    tuning: TuningConstants = DEFAULT_TUNING,
    basis: PlannerBasis | None = None,
) -> PlannerResult:
    """Search the parallelism space for one model on one machine.

    Enumerates canonical configs within ``gpu_budget``, costs each from
    the shared symbolic basis, and returns every point plus the Pareto
    frontier of the memory-feasible ones.  Deterministic: same inputs,
    same floats, same ordering — there is no randomness to seed.
    """
    if basis is None:
        basis = PlannerBasis(
            model, machine,
            attention_impl=attention_impl, tuning=tuning, kv_bytes=kv_bytes,
        )
    configs = enumerate_configs(
        gpu_budget=gpu_budget,
        global_batch=global_batch,
        microbatches=microbatches,
        sequence_parallel=sequence_parallel,
    )
    points: list[PlanPoint] = []
    for config in configs:
        points.append(
            basis.cost_config(
                config,
                global_batch=global_batch,
                backward_ratio=backward_ratio,
                memory_margin=memory_margin,
            )
        )
    frontier = pareto_frontier(p for p in points if p.fits)
    return PlannerResult(
        model_name=basis.model_name,
        machine=basis.machine,
        gpu_budget=gpu_budget,
        global_batch=global_batch,
        points=points,
        frontier=frontier,
        stats=dict(basis.stats),
    )
