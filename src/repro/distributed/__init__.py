"""Distributed execution: sharding, collectives, multi-GPU machines.

The paper characterizes single-A100 inference; this package extends the
symbolic execution model to multi-GPU serving, the direction Section V
argues the field is headed:

* :mod:`repro.distributed.collectives` — alpha-beta cost model for
  all-reduce / all-gather / reduce-scatter / send-recv with ring/tree
  algorithm selection;
* :mod:`repro.distributed.topology` — link classes (NVLink, PCIe,
  InfiniBand, Infinity Fabric) wired into machine topologies;
* :mod:`repro.distributed.registry` — named multi-GPU machines pairing
  a :class:`~repro.hw.spec.GPUSpec` with its interconnect;
* :mod:`repro.distributed.sharding` /
  :mod:`repro.distributed.partition` — Megatron-style tensor
  parallelism, batch-slicing data parallelism and stage-balanced
  pipeline parallelism over recorded traces;
* :mod:`repro.distributed.timeline` — per-device timelines with
  compute/communication overlap;
* :mod:`repro.distributed.scaling` — strong/weak scaling sweeps;
* :mod:`repro.distributed.schedule` — GPipe vs 1F1B pipeline-schedule
  simulators with explicit bubble accounting;
* :mod:`repro.distributed.planner` — parallelism auto-planner:
  enumerate (tp, pp, dp, microbatch, sequence-parallel) configs and
  cost them symbolically from cached per-axis bases, emitting
  Pareto-optimal plans under per-device memory caps.

See ``docs/DISTRIBUTED.md`` for the model's assumptions and
``docs/HARDWARE.md`` for the machine registry.
"""

from repro.distributed.collectives import (
    IB_HDR,
    IB_NDR,
    INFINITY_FABRIC,
    NVLINK3,
    NVLINK4,
    PCIE4_X16,
    PCIE5_X16,
    CollectiveAlgorithm,
    CollectiveCostModel,
    CollectiveEstimate,
    CollectiveKind,
    LinkSpec,
    ring_all_gather_time,
    ring_all_reduce_time,
    ring_reduce_scatter_time,
    send_recv_time,
    tree_all_reduce_time,
)
from repro.distributed.partition import (
    CommSpec,
    DataParallel,
    DistributedPlan,
    PartitionStrategy,
    PipelineParallel,
    ShardedEvent,
    TensorParallel,
    event_repeat,
    strategy_from_name,
    trace_repeats,
)
from repro.distributed.planner import (
    ParallelConfig,
    PlannerBasis,
    PlannerResult,
    PlanPoint,
    TPAxis,
    bruteforce_cost,
    build_axis,
    enumerate_configs,
    pareto_frontier,
    plan_parallelism,
)
from repro.distributed.registry import (
    DGX_A100_40G,
    DGX_A100_80G,
    DGX_H100,
    MACHINES,
    MI300X_NODE,
    PCIE_A100,
    MachineSpec,
    machine_from_name,
    machine_names,
    register_machine,
    render_machine_table,
)
from repro.distributed.schedule import (
    ScheduleResult,
    forward_makespan,
    ideal_bubble_fraction,
    simulate_1f1b,
    simulate_gpipe,
)
from repro.distributed.scaling import (
    ScalingPoint,
    scaling_table,
    strong_scaling,
    weak_scaling,
)
from repro.distributed.sharding import (
    ShardRole,
    even_split,
    proportional_split,
    shard_op,
)
from repro.distributed.timeline import (
    DeviceTimeline,
    DistributedTrace,
    TimelineEntry,
    build_timelines,
    render_timeline_summary,
)
from repro.distributed.topology import Topology

__all__ = [
    "CollectiveAlgorithm",
    "CollectiveCostModel",
    "CollectiveEstimate",
    "CollectiveKind",
    "CommSpec",
    "DGX_A100_40G",
    "DGX_A100_80G",
    "DGX_H100",
    "DataParallel",
    "DeviceTimeline",
    "DistributedPlan",
    "DistributedTrace",
    "IB_HDR",
    "IB_NDR",
    "INFINITY_FABRIC",
    "LinkSpec",
    "MACHINES",
    "MI300X_NODE",
    "MachineSpec",
    "NVLINK3",
    "NVLINK4",
    "PCIE4_X16",
    "PCIE5_X16",
    "PCIE_A100",
    "ParallelConfig",
    "PartitionStrategy",
    "PipelineParallel",
    "PlanPoint",
    "PlannerBasis",
    "PlannerResult",
    "ScalingPoint",
    "ScheduleResult",
    "ShardRole",
    "ShardedEvent",
    "TPAxis",
    "TensorParallel",
    "TimelineEntry",
    "Topology",
    "bruteforce_cost",
    "build_axis",
    "build_timelines",
    "enumerate_configs",
    "even_split",
    "event_repeat",
    "forward_makespan",
    "ideal_bubble_fraction",
    "trace_repeats",
    "machine_from_name",
    "machine_names",
    "pareto_frontier",
    "plan_parallelism",
    "proportional_split",
    "register_machine",
    "render_machine_table",
    "render_timeline_summary",
    "ring_all_gather_time",
    "ring_all_reduce_time",
    "ring_reduce_scatter_time",
    "scaling_table",
    "send_recv_time",
    "shard_op",
    "simulate_1f1b",
    "simulate_gpipe",
    "strategy_from_name",
    "strong_scaling",
    "tree_all_reduce_time",
    "weak_scaling",
]
