"""Interconnect topologies: how a machine's GPUs are wired together.

A :class:`Topology` is two link classes and a node size: GPUs inside a
node talk over the fast fabric (NVLink/NVSwitch, Infinity Fabric, or
plain PCIe), and communicators spanning nodes are bounded by the network
link.  This is the same slowest-link abstraction
:mod:`repro.training.interconnect` uses for FSDP, extended with
per-link latencies so the collective model can price small messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distributed.collectives import CollectiveCostModel, LinkSpec


@dataclass(frozen=True)
class Topology:
    """Interconnect description of one multi-GPU machine class.

    Attributes:
        name: topology name, e.g. ``"NVSwitch-8"``.
        intra_node: link between GPUs sharing a node.
        inter_node: per-GPU network link between nodes.
        gpus_per_node: GPUs inside one fast-fabric domain.
    """

    name: str
    intra_node: LinkSpec
    inter_node: LinkSpec
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    def link_for(self, world_size: int) -> LinkSpec:
        """Bounding link for a communicator of ``world_size`` ranks.

        Communicators contained in one node run at the fabric's speed;
        anything larger is bounded by the network (the slowest link in
        the ring).
        """
        if world_size <= 0:
            raise ValueError("world size must be positive")
        if world_size <= self.gpus_per_node:
            return self.intra_node
        return self.inter_node

    def nodes_for(self, world_size: int) -> int:
        """Number of nodes a ``world_size``-rank job occupies."""
        if world_size <= 0:
            raise ValueError("world size must be positive")
        return math.ceil(world_size / self.gpus_per_node)

    def cost_model(self, world_size: int) -> CollectiveCostModel:
        """Collective cost model over the bounding link for this world."""
        return CollectiveCostModel(self.link_for(world_size))
