"""Graph partitioners: data, tensor and pipeline parallelism.

Each strategy consumes a single-device :class:`repro.ir.trace.Trace`
(the symbolic operator graph a profiled model emits) and produces a
:class:`DistributedPlan`: per-rank operator shards plus the collectives
the sharding implies.  The plan is hardware-free — pricing against a
machine's GPUs and interconnect happens in
:mod:`repro.distributed.timeline`.

**Tensor parallelism** follows Megatron's placement.  Attention is head
parallel: Q/K/V projections are column-split, the scores/softmax/PV
chain is head-split, and the output projection is row-split, yielding
partial sums that one all-reduce per attention call combines.  Other
parameter-bearing layers alternate column/row in first-use order within
their parent module (an MLP's up projection is column-split, its down
projection row-split with an all-reduce; a ResNet block's two convs
likewise).  A scope with an odd number of such layers leaves its last
layer column-parallel, and its output is all-gathered.  All remaining
activation ops are sequence/element split.

**Data parallelism** slices the batch: each rank runs the full graph on
its batch share (ranks beyond the batch size idle).  Inference DP has
no collectives — there are no gradients to reduce.

**Pipeline parallelism** assigns contiguous trace segments to ranks,
balancing segment execution time, with a send/recv of the boundary
activation between consecutive stages.

Every split preserves total FLOPs exactly (see
:mod:`repro.distributed.sharding`), which the partitioner tests verify
against the unsharded trace.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import NamedTuple

from repro.distributed.collectives import CollectiveKind
from repro.distributed.sharding import ShardRole, even_split, shard_op
from repro.ir.ops import Op, OpCategory
from repro.ir.trace import Trace, TraceEvent


def event_repeat(event: TraceEvent) -> int:
    """Recover the fold factor of a bucketed trace event.

    ``repeat_scope`` folds loops of identical launches into one event
    with scaled cost; the factor is the ratio between the event's cost
    counters and the op's own formulas.
    """
    op_flops = event.op.flops()
    if op_flops > 0:
        return max(1, round(event.cost.flops / op_flops))
    op_bytes = event.op.total_bytes()
    if op_bytes > 0:
        return max(1, round(event.cost.moved_bytes / op_bytes))
    return 1


# Fold factors per trace, computed once: scaling sweeps partition the
# same profiled trace for every world size, and the per-event FLOP
# formulas behind event_repeat dominate partitioning time if re-derived
# each time.  Keyed weakly so the factors die with the trace.
_REPEAT_CACHE: "weakref.WeakKeyDictionary[Trace, list[int]]" = (
    weakref.WeakKeyDictionary()
)


def trace_repeats(trace: Trace) -> list[int]:
    """Fold factor of every event of ``trace``, cached per trace object."""
    repeats = _REPEAT_CACHE.get(trace)
    if repeats is None or len(repeats) != len(trace.events):
        repeats = [event_repeat(event) for event in trace.events]
        _REPEAT_CACHE[trace] = repeats
    return repeats


@dataclass(frozen=True)
class CommSpec:
    """One collective the sharded graph requires after an event.

    Attributes:
        kind: which collective.
        payload_bytes: logical tensor size communicated per issue.
        label: short description for timelines (e.g. ``"ar:attn_out"``).
    """

    kind: CollectiveKind
    payload_bytes: float
    label: str


class ShardedEvent(NamedTuple):
    """One source trace event split across the parallel group.

    A NamedTuple rather than a dataclass: plans hold one of these per
    source event (hundreds of thousands per scaling sweep) and tuple
    construction is several times cheaper.

    Attributes:
        source: the single-device event this shards.
        role: how the split was chosen.
        ops: per-rank operator shards (``None`` = rank idle).
        comm: collective required after this event, if any.
        repeat: fold factor inherited from the source event.
        stage: owning pipeline stage (pipeline plans only).
    """

    source: TraceEvent
    role: ShardRole
    ops: tuple[Op | None, ...]
    comm: CommSpec | None
    repeat: int
    stage: int = 0


@dataclass
class DistributedPlan:
    """A sharded operator graph, ready to be priced on a machine."""

    strategy: str
    world: int
    kind: str  # "spmd" (TP/DP) or "pipeline"
    sharded_events: list[ShardedEvent]
    source: Trace

    def flops_per_rank(self) -> list[float]:
        """Total FLOPs each rank executes (folded loops included)."""
        totals = [0.0] * self.world
        for event in self.sharded_events:
            for rank, op in enumerate(event.ops):
                if op is not None:
                    totals[rank] += op.flops() * event.repeat
        return totals

    def total_flops(self) -> float:
        """FLOPs summed over every rank (invariant: == source total)."""
        return sum(self.flops_per_rank())

    def comm_payload_bytes(self) -> float:
        """Logical bytes entering collectives across the whole plan."""
        return sum(
            event.comm.payload_bytes * event.repeat
            for event in self.sharded_events
            if event.comm is not None
        )

    def collective_counts(self) -> dict[CollectiveKind, int]:
        """Number of collective issues by kind (folded loops included)."""
        counts: dict[CollectiveKind, int] = {}
        for event in self.sharded_events:
            if event.comm is not None:
                counts[event.comm.kind] = (
                    counts.get(event.comm.kind, 0) + event.repeat
                )
        return counts


class PartitionStrategy:
    """Base class: a named way of splitting a trace over ``world`` ranks."""

    name = "base"

    def __init__(self, world: int):
        if world < 1:
            raise ValueError("world size must be >= 1")
        self.world = world

    def partition(self, trace: Trace) -> DistributedPlan:
        """Shard ``trace`` into a :class:`DistributedPlan`."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable strategy label, e.g. ``"tp=4"``."""
        return f"{self.name}={self.world}"


def _parent_scope(path: str) -> str:
    return path.rsplit(".", 1)[0] if "." in path else ""


def _output_bytes(op: Op) -> float:
    return op.write_bytes()


class TensorParallel(PartitionStrategy):
    """Megatron-style tensor parallelism over the whole graph."""

    name = "tp"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Shard every event; emit the implied all-reduce/all-gathers."""
        weights = [1] * self.world
        leaf_roles = self._leaf_roles(trace)
        repeats = trace_repeats(trace)
        world_gt1 = self.world > 1
        sharded: list[ShardedEvent] = []
        append = sharded.append
        # Ops are interned by the replay memoizer, so identity keys are
        # both valid (frozen dataclasses) and much cheaper than hashing
        # the nested shape tuples; the trace keeps every op alive.
        shard_cache: dict[tuple[int, ShardRole], tuple[Op | None, ...]] = {}
        has_params: dict[int, bool] = {}
        # Activation ops shard the same way wherever they appear, so one
        # resolution per op object covers the whole trace.  Weight ops
        # need the emitting path (roles are assigned per module leaf),
        # so they memoize per (op, path) instead.
        nonparam_memo: dict[
            int, tuple[ShardRole, tuple[Op | None, ...], CommSpec | None]
        ] = {}
        # Keyed ``id(op) * 32 + role_token``: a single int hash per
        # event instead of a tuple of enums (enum.__hash__ is a Python
        # function and dominates the loop at trace scale).
        param_memo: dict[
            int, tuple[ShardRole, tuple[Op | None, ...], CommSpec | None]
        ] = {}

        def resolve(op: Op, role: ShardRole, comm_kind) -> tuple:
            key = (id(op), role)
            shards = shard_cache.get(key)
            if shards is None:
                shards = tuple(shard_op(op, role, weights))
                shard_cache[key] = shards
            comm = None
            if comm_kind is not None and world_gt1:
                short = (
                    "ar" if comm_kind is CollectiveKind.ALL_REDUCE else "ag"
                )
                comm = CommSpec(
                    kind=comm_kind,
                    payload_bytes=_output_bytes(op),
                    label=f"{short}:{op.name}",
                )
            return (role, shards, comm)

        # tuple.__new__ bypasses the generated NamedTuple constructor
        # (a Python-level wrapper) — at trace scale the constructor is
        # the single largest cost of partitioning.
        tuple_new = tuple.__new__
        event_cls = ShardedEvent
        for event, repeat in zip(trace.events, repeats):
            op = event.op
            op_id = id(op)
            owns = has_params.get(op_id)
            if owns is None:
                owns = op.param_bytes() > 0
                has_params[op_id] = owns
            if owns:
                role, comm_kind, token = leaf_roles[event.module_path]
                memo_key = op_id * 32 + token
                resolved = param_memo.get(memo_key)
                if resolved is None:
                    resolved = resolve(op, role, comm_kind)
                    param_memo[memo_key] = resolved
            else:
                resolved = nonparam_memo.get(op_id)
                if resolved is None:
                    if op.category is OpCategory.ATTENTION:
                        resolved = resolve(op, ShardRole.HEAD, None)
                    else:
                        resolved = resolve(op, ShardRole.SEQUENCE, None)
                    nonparam_memo[op_id] = resolved
            role, shards, comm = resolved
            append(
                tuple_new(
                    event_cls, (event, role, shards, comm, repeat, 0)
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="spmd",
            sharded_events=sharded,
            source=trace,
        )

    # Leaf-role maps per trace: scaling sweeps re-partition one trace
    # for every world size, and the assignment is world-independent.
    _LEAF_ROLES: "weakref.WeakKeyDictionary[Trace, tuple[int, dict]]" = (
        weakref.WeakKeyDictionary()
    )

    # Interned (role, collective) combinations.  The partition loop keys
    # its memo on ``id(op) * 32 + token`` — valid while the number of
    # combinations stays below 32 (it is bounded by
    # ``len(ShardRole) * (len(CollectiveKind) + 1)``).
    _ROLE_TOKENS: dict[
        tuple[ShardRole, CollectiveKind | None], int
    ] = {}

    def _leaf_roles(
        self, trace: Trace
    ) -> dict[str, tuple[ShardRole, CollectiveKind | None, int]]:
        """Cached :meth:`_assign_leaf_roles` with interned role tokens.

        Values are ``(role, collective, token)``; the token stands in
        for the (role, collective) pair in hot memo keys.  Keyed weakly
        per trace.
        """
        entry = self._LEAF_ROLES.get(trace)
        if entry is not None and entry[0] == len(trace.events):
            return entry[1]
        tokens = self._ROLE_TOKENS
        roles = {}
        for path, pair in self._assign_leaf_roles(trace).items():
            token = tokens.get(pair)
            if token is None:
                token = len(tokens)
                if token >= 32:
                    raise AssertionError(
                        "role-token space exhausted; widen the memo key"
                    )
                tokens[pair] = token
            roles[path] = (pair[0], pair[1], token)
        self._LEAF_ROLES[trace] = (len(trace.events), roles)
        return roles

    def _assign_leaf_roles(
        self, trace: Trace
    ) -> dict[str, tuple[ShardRole, CollectiveKind | None]]:
        """Column/row placement per parameter-bearing module path.

        Roles are assigned on first use so a layer keeps the same split
        in every invocation.  Attention projections use the anchor flag
        to tell inputs (column) from the output projection (row); other
        layers alternate within their parent scope.
        """
        roles: dict[str, tuple[ShardRole, CollectiveKind | None]] = {}
        anchor_seen: dict[str, bool] = {}
        next_is_column: dict[str, bool] = {}
        pending_column: dict[str, str] = {}
        param_memo: dict[int, bool] = {}
        for event in trace:
            op = event.op
            if event.is_attention_anchor:
                anchor_seen[event.module_path] = True
            op_id = id(op)
            owns = param_memo.get(op_id)
            if owns is None:
                owns = op.param_bytes() > 0
                param_memo[op_id] = owns
            if not owns:
                continue
            leaf = event.module_path
            scope = _parent_scope(leaf)
            if op.category is OpCategory.ATTENTION:
                if leaf in roles:
                    if roles[leaf][0] is ShardRole.ROW:
                        anchor_seen[scope] = False
                elif anchor_seen.get(scope):
                    roles[leaf] = (ShardRole.ROW, CollectiveKind.ALL_REDUCE)
                    anchor_seen[scope] = False
                else:
                    roles[leaf] = (ShardRole.COLUMN, None)
                continue
            if leaf in roles:
                continue
            if next_is_column.get(scope, True):
                roles[leaf] = (ShardRole.COLUMN, None)
                next_is_column[scope] = False
                pending_column[scope] = leaf
            else:
                roles[leaf] = (ShardRole.ROW, CollectiveKind.ALL_REDUCE)
                next_is_column[scope] = True
                pending_column.pop(scope, None)
        # A scope with an odd number of weight layers leaves its last
        # column-split layer un-paired: its sharded output must be
        # gathered before the (unsharded) consumers that follow.
        for leaf in pending_column.values():
            roles[leaf] = (ShardRole.COLUMN, CollectiveKind.ALL_GATHER)
        return roles


class DataParallel(PartitionStrategy):
    """Batch slicing across replicas (inference: no collectives)."""

    name = "dp"

    def __init__(self, world: int, batch: int = 1):
        super().__init__(world)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch

    def describe(self) -> str:
        """Label including the global batch, e.g. ``"dp=4(batch=8)"``."""
        return f"{self.name}={self.world}(batch={self.batch})"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Slice every event's batch-linear dimension by rank share."""
        weights = even_split(self.batch, self.world)
        repeats = trace_repeats(trace)
        sharded: list[ShardedEvent] = []
        shard_cache: dict[int, tuple[Op | None, ...]] = {}
        append = sharded.append
        tuple_new = tuple.__new__
        event_cls = ShardedEvent
        batch_role = ShardRole.BATCH
        for event, repeat in zip(trace.events, repeats):
            op = event.op
            shards = shard_cache.get(id(op))
            if shards is None:
                shards = tuple(shard_op(op, batch_role, weights))
                shard_cache[id(op)] = shards
            append(
                tuple_new(
                    event_cls, (event, batch_role, shards, None, repeat, 0)
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="spmd",
            sharded_events=sharded,
            source=trace,
        )


class PipelineParallel(PartitionStrategy):
    """Contiguous stage assignment balanced by execution time."""

    name = "pp"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Split the trace into ``world`` stages; link them with p2p."""
        events = list(trace)
        if not events:
            raise ValueError("cannot partition an empty trace")
        repeats = trace_repeats(trace)
        boundaries = self._stage_boundaries(events)
        sharded: list[ShardedEvent] = []
        stage = 0
        for index, event in enumerate(events):
            while stage < self.world - 1 and index >= boundaries[stage]:
                stage += 1
            ops: list[Op | None] = [None] * self.world
            ops[stage] = event.op
            comm = None
            is_stage_end = (
                stage < self.world - 1
                and index == boundaries[stage] - 1
                # A boundary at len(events) is the fill for stages that
                # own no events (more ranks than events): there is no
                # downstream stage to feed, so no activation crosses it.
                and boundaries[stage] < len(events)
            )
            if is_stage_end:
                comm = CommSpec(
                    kind=CollectiveKind.SEND_RECV,
                    payload_bytes=_output_bytes(event.op),
                    label=f"p2p:{event.op.name}",
                )
            sharded.append(
                ShardedEvent(
                    source=event,
                    role=ShardRole.SEQUENCE,
                    ops=tuple(ops),
                    comm=comm,
                    repeat=repeats[index],
                    stage=stage,
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="pipeline",
            sharded_events=sharded,
            source=trace,
        )

    def _stage_boundaries(self, events: list[TraceEvent]) -> list[int]:
        """End index (exclusive) of each of the first ``world-1`` stages.

        Greedy time balancing: each stage closes once it holds its
        proportional share of total trace time — or at the last index
        that still leaves one event per remaining stage (without the
        forced close, one early stage running under its proportional
        target starves every stage after it: the one-event-per-stage
        guard then blocks all later closes and the whole trace
        collapses into stage 0).
        """
        total = sum(event.cost.time_s for event in events)
        boundaries: list[int] = []
        cumulative = 0.0
        target = 1
        for index, event in enumerate(events):
            cumulative += event.cost.time_s
            remaining = len(events) - (index + 1)
            while (
                target < self.world
                and remaining >= self.world - target
                and (
                    cumulative >= total * target / self.world
                    or remaining == self.world - target
                )
            ):
                boundaries.append(index + 1)
                target += 1
        while len(boundaries) < self.world - 1:
            boundaries.append(len(events))
        return boundaries


def strategy_from_name(
    name: str, world: int, *, batch: int = 1
) -> PartitionStrategy:
    """Build a partition strategy from its short name (tp/dp/pp)."""
    if name == "tp":
        return TensorParallel(world)
    if name == "dp":
        return DataParallel(world, batch=batch)
    if name == "pp":
        return PipelineParallel(world)
    raise ValueError(f"unknown partition strategy {name!r}; known: tp, dp, pp")
