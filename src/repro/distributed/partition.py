"""Graph partitioners: data, tensor and pipeline parallelism.

Each strategy consumes a single-device :class:`repro.ir.trace.Trace`
(the symbolic operator graph a profiled model emits) and produces a
:class:`DistributedPlan`: per-rank operator shards plus the collectives
the sharding implies.  The plan is hardware-free — pricing against a
machine's GPUs and interconnect happens in
:mod:`repro.distributed.timeline`.

**Tensor parallelism** follows Megatron's placement.  Attention is head
parallel: Q/K/V projections are column-split, the scores/softmax/PV
chain is head-split, and the output projection is row-split, yielding
partial sums that one all-reduce per attention call combines.  Other
parameter-bearing layers alternate column/row in first-use order within
their parent module (an MLP's up projection is column-split, its down
projection row-split with an all-reduce; a ResNet block's two convs
likewise).  A scope with an odd number of such layers leaves its last
layer column-parallel, and its output is all-gathered.  All remaining
activation ops are sequence/element split.

**Data parallelism** slices the batch: each rank runs the full graph on
its batch share (ranks beyond the batch size idle).  Inference DP has
no collectives — there are no gradients to reduce.

**Pipeline parallelism** assigns contiguous trace segments to ranks,
balancing segment execution time, with a send/recv of the boundary
activation between consecutive stages.

Every split preserves total FLOPs exactly (see
:mod:`repro.distributed.sharding`), which the partitioner tests verify
against the unsharded trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.collectives import CollectiveKind
from repro.distributed.sharding import ShardRole, even_split, shard_op
from repro.ir.ops import Op, OpCategory
from repro.ir.trace import Trace, TraceEvent


def event_repeat(event: TraceEvent) -> int:
    """Recover the fold factor of a bucketed trace event.

    ``repeat_scope`` folds loops of identical launches into one event
    with scaled cost; the factor is the ratio between the event's cost
    counters and the op's own formulas.
    """
    op_flops = event.op.flops()
    if op_flops > 0:
        return max(1, round(event.cost.flops / op_flops))
    op_bytes = event.op.total_bytes()
    if op_bytes > 0:
        return max(1, round(event.cost.moved_bytes / op_bytes))
    return 1


@dataclass(frozen=True)
class CommSpec:
    """One collective the sharded graph requires after an event.

    Attributes:
        kind: which collective.
        payload_bytes: logical tensor size communicated per issue.
        label: short description for timelines (e.g. ``"ar:attn_out"``).
    """

    kind: CollectiveKind
    payload_bytes: float
    label: str


@dataclass(frozen=True)
class ShardedEvent:
    """One source trace event split across the parallel group.

    Attributes:
        source: the single-device event this shards.
        role: how the split was chosen.
        ops: per-rank operator shards (``None`` = rank idle).
        comm: collective required after this event, if any.
        repeat: fold factor inherited from the source event.
        stage: owning pipeline stage (pipeline plans only).
    """

    source: TraceEvent
    role: ShardRole
    ops: tuple[Op | None, ...]
    comm: CommSpec | None
    repeat: int
    stage: int = 0


@dataclass
class DistributedPlan:
    """A sharded operator graph, ready to be priced on a machine."""

    strategy: str
    world: int
    kind: str  # "spmd" (TP/DP) or "pipeline"
    sharded_events: list[ShardedEvent]
    source: Trace

    def flops_per_rank(self) -> list[float]:
        """Total FLOPs each rank executes (folded loops included)."""
        totals = [0.0] * self.world
        for event in self.sharded_events:
            for rank, op in enumerate(event.ops):
                if op is not None:
                    totals[rank] += op.flops() * event.repeat
        return totals

    def total_flops(self) -> float:
        """FLOPs summed over every rank (invariant: == source total)."""
        return sum(self.flops_per_rank())

    def comm_payload_bytes(self) -> float:
        """Logical bytes entering collectives across the whole plan."""
        return sum(
            event.comm.payload_bytes * event.repeat
            for event in self.sharded_events
            if event.comm is not None
        )

    def collective_counts(self) -> dict[CollectiveKind, int]:
        """Number of collective issues by kind (folded loops included)."""
        counts: dict[CollectiveKind, int] = {}
        for event in self.sharded_events:
            if event.comm is not None:
                counts[event.comm.kind] = (
                    counts.get(event.comm.kind, 0) + event.repeat
                )
        return counts


class PartitionStrategy:
    """Base class: a named way of splitting a trace over ``world`` ranks."""

    name = "base"

    def __init__(self, world: int):
        if world < 1:
            raise ValueError("world size must be >= 1")
        self.world = world

    def partition(self, trace: Trace) -> DistributedPlan:
        """Shard ``trace`` into a :class:`DistributedPlan`."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable strategy label, e.g. ``"tp=4"``."""
        return f"{self.name}={self.world}"


def _parent_scope(path: str) -> str:
    return path.rsplit(".", 1)[0] if "." in path else ""


def _output_bytes(op: Op) -> float:
    return op.write_bytes()


class TensorParallel(PartitionStrategy):
    """Megatron-style tensor parallelism over the whole graph."""

    name = "tp"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Shard every event; emit the implied all-reduce/all-gathers."""
        weights = [1] * self.world
        leaf_roles = self._assign_leaf_roles(trace)
        sharded: list[ShardedEvent] = []
        shard_cache: dict[tuple[Op, ShardRole], tuple[Op | None, ...]] = {}
        for event in trace:
            op = event.op
            role, comm_kind = self._event_role(event, leaf_roles)
            key = (op, role)
            if key not in shard_cache:
                shard_cache[key] = tuple(shard_op(op, role, weights))
            comm = None
            if comm_kind is not None and self.world > 1:
                short = "ar" if comm_kind is CollectiveKind.ALL_REDUCE else "ag"
                comm = CommSpec(
                    kind=comm_kind,
                    payload_bytes=_output_bytes(op),
                    label=f"{short}:{op.name}",
                )
            sharded.append(
                ShardedEvent(
                    source=event,
                    role=role,
                    ops=shard_cache[key],
                    comm=comm,
                    repeat=event_repeat(event),
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="spmd",
            sharded_events=sharded,
            source=trace,
        )

    @staticmethod
    def _event_role(
        event: TraceEvent,
        leaf_roles: dict[str, tuple[ShardRole, CollectiveKind | None]],
    ) -> tuple[ShardRole, CollectiveKind | None]:
        op = event.op
        if op.param_bytes() > 0:
            return leaf_roles[event.module_path]
        if op.category is OpCategory.ATTENTION:
            return ShardRole.HEAD, None
        return ShardRole.SEQUENCE, None

    def _assign_leaf_roles(
        self, trace: Trace
    ) -> dict[str, tuple[ShardRole, CollectiveKind | None]]:
        """Column/row placement per parameter-bearing module path.

        Roles are assigned on first use so a layer keeps the same split
        in every invocation.  Attention projections use the anchor flag
        to tell inputs (column) from the output projection (row); other
        layers alternate within their parent scope.
        """
        roles: dict[str, tuple[ShardRole, CollectiveKind | None]] = {}
        anchor_seen: dict[str, bool] = {}
        next_is_column: dict[str, bool] = {}
        pending_column: dict[str, str] = {}
        for event in trace:
            op = event.op
            if event.is_attention_anchor:
                anchor_seen[event.module_path] = True
            if op.param_bytes() <= 0:
                continue
            leaf = event.module_path
            scope = _parent_scope(leaf)
            if op.category is OpCategory.ATTENTION:
                if leaf in roles:
                    if roles[leaf][0] is ShardRole.ROW:
                        anchor_seen[scope] = False
                elif anchor_seen.get(scope):
                    roles[leaf] = (ShardRole.ROW, CollectiveKind.ALL_REDUCE)
                    anchor_seen[scope] = False
                else:
                    roles[leaf] = (ShardRole.COLUMN, None)
                continue
            if leaf in roles:
                continue
            if next_is_column.get(scope, True):
                roles[leaf] = (ShardRole.COLUMN, None)
                next_is_column[scope] = False
                pending_column[scope] = leaf
            else:
                roles[leaf] = (ShardRole.ROW, CollectiveKind.ALL_REDUCE)
                next_is_column[scope] = True
                pending_column.pop(scope, None)
        # A scope with an odd number of weight layers leaves its last
        # column-split layer un-paired: its sharded output must be
        # gathered before the (unsharded) consumers that follow.
        for leaf in pending_column.values():
            roles[leaf] = (ShardRole.COLUMN, CollectiveKind.ALL_GATHER)
        return roles


class DataParallel(PartitionStrategy):
    """Batch slicing across replicas (inference: no collectives)."""

    name = "dp"

    def __init__(self, world: int, batch: int = 1):
        super().__init__(world)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch

    def describe(self) -> str:
        """Label including the global batch, e.g. ``"dp=4(batch=8)"``."""
        return f"{self.name}={self.world}(batch={self.batch})"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Slice every event's batch-linear dimension by rank share."""
        weights = even_split(self.batch, self.world)
        sharded: list[ShardedEvent] = []
        shard_cache: dict[Op, tuple[Op | None, ...]] = {}
        for event in trace:
            op = event.op
            if op not in shard_cache:
                shard_cache[op] = tuple(
                    shard_op(op, ShardRole.BATCH, weights)
                )
            sharded.append(
                ShardedEvent(
                    source=event,
                    role=ShardRole.BATCH,
                    ops=shard_cache[op],
                    comm=None,
                    repeat=event_repeat(event),
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="spmd",
            sharded_events=sharded,
            source=trace,
        )


class PipelineParallel(PartitionStrategy):
    """Contiguous stage assignment balanced by execution time."""

    name = "pp"

    def partition(self, trace: Trace) -> DistributedPlan:
        """Split the trace into ``world`` stages; link them with p2p."""
        events = list(trace)
        if not events:
            raise ValueError("cannot partition an empty trace")
        boundaries = self._stage_boundaries(events)
        sharded: list[ShardedEvent] = []
        stage = 0
        for index, event in enumerate(events):
            while stage < self.world - 1 and index >= boundaries[stage]:
                stage += 1
            ops: list[Op | None] = [None] * self.world
            ops[stage] = event.op
            comm = None
            is_stage_end = (
                stage < self.world - 1 and index == boundaries[stage] - 1
            )
            if is_stage_end:
                comm = CommSpec(
                    kind=CollectiveKind.SEND_RECV,
                    payload_bytes=_output_bytes(event.op),
                    label=f"p2p:{event.op.name}",
                )
            sharded.append(
                ShardedEvent(
                    source=event,
                    role=ShardRole.SEQUENCE,
                    ops=tuple(ops),
                    comm=comm,
                    repeat=event_repeat(event),
                    stage=stage,
                )
            )
        return DistributedPlan(
            strategy=self.describe(),
            world=self.world,
            kind="pipeline",
            sharded_events=sharded,
            source=trace,
        )

    def _stage_boundaries(self, events: list[TraceEvent]) -> list[int]:
        """End index (exclusive) of each of the first ``world-1`` stages.

        Greedy time balancing: each stage closes once it holds its
        proportional share of total trace time.
        """
        total = sum(event.cost.time_s for event in events)
        boundaries: list[int] = []
        cumulative = 0.0
        target = 1
        for index, event in enumerate(events):
            cumulative += event.cost.time_s
            while (
                target < self.world
                and cumulative >= total * target / self.world
                and len(events) - (index + 1) >= self.world - target
            ):
                boundaries.append(index + 1)
                target += 1
        while len(boundaries) < self.world - 1:
            boundaries.append(len(events))
        return boundaries


def strategy_from_name(
    name: str, world: int, *, batch: int = 1
) -> PartitionStrategy:
    """Build a partition strategy from its short name (tp/dp/pp)."""
    if name == "tp":
        return TensorParallel(world)
    if name == "dp":
        return DataParallel(world, batch=batch)
    if name == "pp":
        return PipelineParallel(world)
    raise ValueError(f"unknown partition strategy {name!r}; known: tp, dp, pp")
