"""Strong/weak scaling analysis over the distributed executor.

Section V of the paper argues that multi-modal generation will lean on
larger models and future hardware; these sweeps quantify how far
sharding one inference actually goes.  Strong scaling fixes the problem
(one batch) and grows the tensor-parallel group; weak scaling grows the
batch with the data-parallel replica count.  Both report efficiency —
``t1 / (w * tw)`` for strong, ``t1 / tw`` for weak — with communication
broken out from compute so the limiter is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.partition import (
    DataParallel,
    PartitionStrategy,
    strategy_from_name,
)
from repro.distributed.registry import MachineSpec, machine_from_name
from repro.distributed.timeline import DistributedTrace, build_timelines
from repro.ir.context import AttentionImpl
from repro.ir.module import Module
from repro.ir.trace import Trace
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.reporting.table import render_table


@dataclass(frozen=True)
class ScalingPoint:
    """One world size in a scaling sweep.

    Attributes:
        world: number of devices.
        time_s: end-to-end latency of one (sharded) inference.
        compute_time_s: critical-path compute component.
        comm_time_s: exposed communication component.
        speedup: single-device time over this point's time.
        efficiency: strong: ``speedup / world``; weak: ``t1 / tw``.
    """

    world: int
    time_s: float
    compute_time_s: float
    comm_time_s: float
    speedup: float
    efficiency: float

    @property
    def comm_fraction(self) -> float:
        """Share of the latency spent in exposed communication."""
        return self.comm_time_s / self.time_s if self.time_s > 0 else 0.0


def _resolve_machine(machine: MachineSpec | str) -> MachineSpec:
    if isinstance(machine, str):
        return machine_from_name(machine)
    return machine


def _profile_trace(
    model: Module,
    machine: MachineSpec,
    attention_impl: AttentionImpl,
    tuning: TuningConstants,
    batch: int,
) -> Trace:
    # Imported here: profiler builds on distributed's sibling layers and
    # importing it at module scope would be circular once the profiler
    # re-exports the distributed entry points.
    from repro.profiler.profiler import profile_model

    return profile_model(
        model, gpu=machine.gpu, attention_impl=attention_impl,
        tuning=tuning, batch=batch,
    ).trace


def strong_scaling(
    model: Module,
    machine: MachineSpec | str,
    worlds: tuple[int, ...] = (1, 2, 4, 8),
    *,
    strategy: str = "tp",
    attention_impl: AttentionImpl = AttentionImpl.FLASH,
    tuning: TuningConstants = DEFAULT_TUNING,
    batch: int = 1,
    overlap: float = 0.0,
) -> list[ScalingPoint]:
    """Fixed problem, growing device count.

    The model is profiled once on the machine's GPU; each world size
    re-partitions the same trace with the chosen strategy and prices it
    against the machine topology.
    """
    if not worlds or any(w < 1 for w in worlds):
        raise ValueError("worlds must be positive")
    machine = _resolve_machine(machine)
    trace = _profile_trace(model, machine, attention_impl, tuning, batch)
    points: list[ScalingPoint] = []
    t1: float | None = None
    for world in worlds:
        if world == 1:
            # A single-device plan executes every source event with no
            # collectives, and re-pricing it on the machine the trace
            # was profiled on reproduces each event's cost exactly (the
            # cost cache returns the same KernelCost objects), so the
            # makespan is the trace total — skip the partition/pricing
            # round-trip.
            time_s = trace.total_time_s
            compute_s = time_s
            comm_s = 0.0
        else:
            part: PartitionStrategy = strategy_from_name(
                strategy, world, batch=batch
            )
            dist = build_timelines(
                part.partition(trace), machine, tuning=tuning,
                overlap=overlap, keep_entries=False,
            )
            time_s = dist.total_time_s
            compute_s = dist.compute_time_s
            comm_s = dist.exposed_comm_time_s
        if t1 is None:
            # Single-device reference; equals the profiled trace total
            # (see the world == 1 fast path above).
            t1 = trace.total_time_s
        speedup = t1 / time_s if time_s > 0 else 0.0
        points.append(
            ScalingPoint(
                world=world,
                time_s=time_s,
                compute_time_s=compute_s,
                comm_time_s=comm_s,
                speedup=speedup,
                efficiency=speedup / world,
            )
        )
    return points


def weak_scaling(
    model: Module,
    machine: MachineSpec | str,
    worlds: tuple[int, ...] = (1, 2, 4, 8),
    *,
    base_batch: int = 1,
    attention_impl: AttentionImpl = AttentionImpl.FLASH,
    tuning: TuningConstants = DEFAULT_TUNING,
    overlap: float = 0.0,
) -> list[ScalingPoint]:
    """Problem grows with the machine: ``batch = base_batch * world``.

    Uses data parallelism (each replica keeps ``base_batch``); ideal
    efficiency is flat at 1.0, and deviations measure how much per-GPU
    batch efficiency the growing fleet keeps.
    """
    if not worlds or any(w < 1 for w in worlds):
        raise ValueError("worlds must be positive")
    machine = _resolve_machine(machine)
    points: list[ScalingPoint] = []
    t1: float | None = None
    for world in worlds:
        batch = base_batch * world
        trace = _profile_trace(model, machine, attention_impl, tuning, batch)
        dist = build_timelines(
            DataParallel(world, batch=batch).partition(trace),
            machine, tuning=tuning, overlap=overlap, keep_entries=False,
        )
        time_s = dist.total_time_s
        if t1 is None:
            t1 = time_s
        points.append(
            ScalingPoint(
                world=world,
                time_s=time_s,
                compute_time_s=dist.compute_time_s,
                comm_time_s=dist.exposed_comm_time_s,
                speedup=t1 / time_s if time_s > 0 else 0.0,
                efficiency=t1 / time_s if time_s > 0 else 0.0,
            )
        )
    return points


def scaling_table(
    points: list[ScalingPoint], *, title: str = "Scaling"
) -> str:
    """Render a scaling sweep as a text table (examples, experiments)."""
    rows = [
        [
            point.world,
            f"{point.time_s * 1e3:.1f}",
            f"{point.compute_time_s * 1e3:.1f}",
            f"{point.comm_time_s * 1e3:.1f}",
            f"{point.speedup:.2f}x",
            f"{point.efficiency * 100:.0f}%",
        ]
        for point in points
    ]
    return render_table(
        ["GPUs", "latency ms", "compute ms", "comm ms", "speedup",
         "efficiency"],
        rows,
        title=title,
    )
