"""Per-device execution timelines for a sharded graph.

This is where a hardware-free :class:`DistributedPlan` meets a
:class:`MachineSpec`: every operator shard is re-priced by the kernel
cost models on the machine's GPU (shards are *smaller* shapes, so they
lose tile/wave efficiency and keep full launch overhead — the
first-order reason tensor-parallel efficiency decays), and every
collective is priced by the machine topology's link model.

Compute/communication overlap is a dial: ``overlap`` is the fraction of
each collective hidden under independent compute (0 = fully exposed,
the right default for tensor-parallel inference where the all-reduce
sits on the critical path; values near 1 model aggressive
bucketing/async schedules).  Both the full and the exposed collective
time are reported so the gap is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.partition import DistributedPlan
from repro.distributed.registry import MachineSpec
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.kernels.estimator import CachingCostEstimator


@dataclass(frozen=True)
class TimelineEntry:
    """One interval on a device timeline (a kernel or a collective)."""

    kind: str  # "compute" or "comm"
    label: str
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        """Interval end time."""
        return self.start_s + self.duration_s


@dataclass
class DeviceTimeline:
    """Execution timeline of one rank.

    ``entries`` may be empty when the plan was priced with
    ``keep_entries=False`` (scaling sweeps that only need aggregates);
    the time totals are always populated.
    """

    rank: int
    compute_time_s: float = 0.0
    comm_time_s: float = 0.0
    exposed_comm_time_s: float = 0.0
    end_s: float = 0.0
    entries: list[TimelineEntry] = field(default_factory=list)

    @property
    def busy_time_s(self) -> float:
        """Time the rank spends computing or communicating (exposed)."""
        return self.compute_time_s + self.exposed_comm_time_s


@dataclass
class DistributedTrace:
    """All device timelines of one priced plan, plus aggregates."""

    strategy: str
    world: int
    machine: MachineSpec
    timelines: list[DeviceTimeline]
    overlap: float

    @property
    def total_time_s(self) -> float:
        """Makespan: the latest rank finish time."""
        return max(t.end_s for t in self.timelines)

    @property
    def compute_time_s(self) -> float:
        """Critical-path compute: the slowest rank's compute total."""
        return max(t.compute_time_s for t in self.timelines)

    @property
    def comm_time_s(self) -> float:
        """Modelled collective time on the slowest rank (pre-overlap)."""
        return max(t.comm_time_s for t in self.timelines)

    @property
    def exposed_comm_time_s(self) -> float:
        """Collective time left on the critical path after overlap."""
        return max(t.exposed_comm_time_s for t in self.timelines)

    @property
    def comm_fraction(self) -> float:
        """Share of the makespan spent in exposed communication."""
        total = self.total_time_s
        return self.exposed_comm_time_s / total if total > 0 else 0.0


def build_timelines(
    plan: DistributedPlan,
    machine: MachineSpec,
    *,
    tuning: TuningConstants = DEFAULT_TUNING,
    overlap: float = 0.0,
    keep_entries: bool = True,
) -> DistributedTrace:
    """Price a plan on a machine and lay it out on per-device timelines.

    SPMD plans (tensor/data parallel) advance all ranks together and
    synchronize at every collective; pipeline plans chain stages with
    point-to-point transfers.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    estimator = CachingCostEstimator(machine.gpu, tuning)
    if plan.kind == "pipeline":
        timelines = _build_pipeline(
            plan, machine, estimator, overlap, keep_entries
        )
    else:
        timelines = _build_spmd(
            plan, machine, estimator, overlap, keep_entries
        )
    return DistributedTrace(
        strategy=plan.strategy,
        world=plan.world,
        machine=machine,
        timelines=timelines,
        overlap=overlap,
    )


def _build_spmd(
    plan: DistributedPlan,
    machine: MachineSpec,
    estimator: CachingCostEstimator,
    overlap: float,
    keep_entries: bool,
) -> list[DeviceTimeline]:
    world = plan.world
    comm_model = machine.topology.cost_model(world)
    timelines = [DeviceTimeline(rank=rank) for rank in range(world)]
    # Shard tuples are shared between events (the partitioners intern
    # them per op), so one kernel-time lookup per distinct shard tuple
    # covers the whole plan.  Only time_s is consumed here; scaling by
    # the fold factor is the same float multiply KernelCost.scaled does.
    # ``tuple_times`` also records whether every rank got an identical
    # time: tensor parallelism splits evenly, so almost every event is
    # uniform, and uniform events advance all ranks in lockstep — the
    # aggregate-only path below then prices one logical rank instead of
    # looping over the group (each rank would accumulate the exact same
    # float sequence, so the sums are bit-identical).
    op_time: dict[int, float] = {}
    tuple_times: dict[int, tuple[list[float | None], float | None]] = {}
    comm_time_memo: dict[int, float] = {}

    def times_for(ops: tuple) -> tuple[list[float | None], float | None]:
        entry = tuple_times.get(id(ops))
        if entry is None:
            times: list[float | None] = []
            for op in ops:
                if op is None:
                    times.append(None)
                    continue
                base_s = op_time.get(id(op))
                if base_s is None:
                    base_s = estimator.estimate(op).time_s
                    op_time[id(op)] = base_s
                times.append(base_s)
            first = times[0]
            uniform = first if all(t == first for t in times) else None
            entry = (times, uniform)
            tuple_times[id(ops)] = entry
        return entry

    if not keep_entries:
        # Aggregate-only pricing (scaling sweeps): plain float lists
        # instead of dataclass attribute updates, one time lookup per
        # event instead of per rank.  Every accumulator adds the exact
        # same float sequence the entry-building path would, so the
        # totals are bit-identical.  ShardedEvent rows are unpacked as
        # tuples and the memo gets are inlined — at hundreds of
        # thousands of events per sweep, attribute and call overhead
        # are the remaining cost.
        ranks = range(world)
        world_gt1 = world > 1
        compute = [0.0] * world
        clocks_list = [0.0] * world
        comm_s = 0.0
        exposed_s = 0.0
        times_get = tuple_times.get
        comm_get = comm_time_memo.get
        for event in plan.sharded_events:
            _, _, ops, comm, repeat, _ = event
            entry = times_get(id(ops))
            if entry is None:
                entry = times_for(ops)
            times, uniform = entry
            if uniform is not None:
                time_s = uniform * repeat if repeat != 1 else uniform
                for rank in ranks:
                    compute[rank] += time_s
                    clocks_list[rank] += time_s
            else:
                for rank, base_s in enumerate(times):
                    if base_s is None:
                        continue
                    time_s = base_s * repeat if repeat != 1 else base_s
                    compute[rank] += time_s
                    clocks_list[rank] += time_s
            if comm is not None and world_gt1:
                # CommSpec instances are interned by the partitioner's
                # resolution memo, so identity keys are stable; a
                # duplicate spec object merely re-prices to the same
                # deterministic value.
                base_comm_s = comm_get(id(comm))
                if base_comm_s is None:
                    base_comm_s = comm_model.estimate(
                        comm.kind, comm.payload_bytes, world
                    ).time_s
                    comm_time_memo[id(comm)] = base_comm_s
                comm_time = base_comm_s * repeat
                exposed = comm_time * (1.0 - overlap)
                comm_s += comm_time
                exposed_s += exposed
                synced = max(clocks_list) + exposed
                for rank in ranks:
                    clocks_list[rank] = synced
        for rank, timeline in enumerate(timelines):
            timeline.compute_time_s = compute[rank]
            timeline.comm_time_s = comm_s
            timeline.exposed_comm_time_s = exposed_s
            timeline.end_s = clocks_list[rank]
        return timelines

    clocks = [0.0] * world
    for event in plan.sharded_events:
        repeat = event.repeat
        times, _ = times_for(event.ops)
        for rank, base_s in enumerate(times):
            if base_s is None:
                continue
            op = event.ops[rank]
            time_s = base_s * repeat if repeat != 1 else base_s
            timeline = timelines[rank]
            timeline.entries.append(
                TimelineEntry(
                    kind="compute",
                    label=op.name,
                    start_s=clocks[rank],
                    duration_s=time_s,
                )
            )
            timeline.compute_time_s += time_s
            clocks[rank] += time_s
        if event.comm is not None and world > 1:
            base_comm_s = comm_time_memo.get(id(event.comm))
            if base_comm_s is None:
                base_comm_s = comm_model.estimate(
                    event.comm.kind, event.comm.payload_bytes, world
                ).time_s
                comm_time_memo[id(event.comm)] = base_comm_s
            comm_time = base_comm_s * repeat
            exposed = comm_time * (1.0 - overlap)
            start = max(clocks)
            for rank in range(world):
                timeline = timelines[rank]
                if exposed > 0:
                    timeline.entries.append(
                        TimelineEntry(
                            kind="comm",
                            label=event.comm.label,
                            start_s=start,
                            duration_s=exposed,
                        )
                    )
                timeline.comm_time_s += comm_time
                timeline.exposed_comm_time_s += exposed
                clocks[rank] = start + exposed
    for rank in range(world):
        timelines[rank].end_s = clocks[rank]
    return timelines


def _build_pipeline(
    plan: DistributedPlan,
    machine: MachineSpec,
    estimator: CachingCostEstimator,
    overlap: float,
    keep_entries: bool,
) -> list[DeviceTimeline]:
    world = plan.world
    comm_model = machine.topology.cost_model(2)
    timelines = [DeviceTimeline(rank=rank) for rank in range(world)]
    clock = 0.0  # single-sample latency: stages execute back to back
    op_time: dict[int, float] = {}
    for event in plan.sharded_events:
        rank = event.stage
        op = event.ops[rank]
        if op is not None:
            base_s = op_time.get(id(op))
            if base_s is None:
                base_s = estimator.estimate(op).time_s
                op_time[id(op)] = base_s
            repeat = event.repeat
            time_s = base_s * repeat if repeat != 1 else base_s
            timeline = timelines[rank]
            if keep_entries:
                timeline.entries.append(
                    TimelineEntry(
                        kind="compute",
                        label=op.name,
                        start_s=clock,
                        duration_s=time_s,
                    )
                )
            timeline.compute_time_s += time_s
            clock += time_s
            timeline.end_s = clock
        if event.comm is not None:
            estimate = comm_model.send_recv(event.comm.payload_bytes)
            comm_time = estimate.time_s * event.repeat
            exposed = comm_time * (1.0 - overlap)
            timeline = timelines[rank]
            if keep_entries and exposed > 0:
                timeline.entries.append(
                    TimelineEntry(
                        kind="comm",
                        label=event.comm.label,
                        start_s=clock,
                        duration_s=exposed,
                    )
                )
            timeline.comm_time_s += comm_time
            timeline.exposed_comm_time_s += exposed
            clock += exposed
            timeline.end_s = clock
    return timelines


def render_timeline_summary(trace: DistributedTrace) -> str:
    """One line per rank: compute, exposed comm, and finish time."""
    lines = [
        f"{trace.strategy} on {trace.machine.name} "
        f"(overlap={trace.overlap:.0%})"
    ]
    for timeline in trace.timelines:
        lines.append(
            f"  rank {timeline.rank}: "
            f"compute {timeline.compute_time_s * 1e3:9.2f} ms, "
            f"comm {timeline.exposed_comm_time_s * 1e3:8.2f} ms "
            f"(modelled {timeline.comm_time_s * 1e3:8.2f} ms), "
            f"done at {timeline.end_s * 1e3:9.2f} ms"
        )
    return "\n".join(lines)
