"""Per-device execution timelines for a sharded graph.

This is where a hardware-free :class:`DistributedPlan` meets a
:class:`MachineSpec`: every operator shard is re-priced by the kernel
cost models on the machine's GPU (shards are *smaller* shapes, so they
lose tile/wave efficiency and keep full launch overhead — the
first-order reason tensor-parallel efficiency decays), and every
collective is priced by the machine topology's link model.

Compute/communication overlap is a dial: ``overlap`` is the fraction of
each collective hidden under independent compute (0 = fully exposed,
the right default for tensor-parallel inference where the all-reduce
sits on the critical path; values near 1 model aggressive
bucketing/async schedules).  Both the full and the exposed collective
time are reported so the gap is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.partition import DistributedPlan
from repro.distributed.registry import MachineSpec
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.kernels.estimator import CachingCostEstimator


@dataclass(frozen=True)
class TimelineEntry:
    """One interval on a device timeline (a kernel or a collective)."""

    kind: str  # "compute" or "comm"
    label: str
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        """Interval end time."""
        return self.start_s + self.duration_s


@dataclass
class DeviceTimeline:
    """Execution timeline of one rank.

    ``entries`` may be empty when the plan was priced with
    ``keep_entries=False`` (scaling sweeps that only need aggregates);
    the time totals are always populated.
    """

    rank: int
    compute_time_s: float = 0.0
    comm_time_s: float = 0.0
    exposed_comm_time_s: float = 0.0
    end_s: float = 0.0
    entries: list[TimelineEntry] = field(default_factory=list)

    @property
    def busy_time_s(self) -> float:
        """Time the rank spends computing or communicating (exposed)."""
        return self.compute_time_s + self.exposed_comm_time_s


@dataclass
class DistributedTrace:
    """All device timelines of one priced plan, plus aggregates."""

    strategy: str
    world: int
    machine: MachineSpec
    timelines: list[DeviceTimeline]
    overlap: float

    @property
    def total_time_s(self) -> float:
        """Makespan: the latest rank finish time."""
        return max(t.end_s for t in self.timelines)

    @property
    def compute_time_s(self) -> float:
        """Critical-path compute: the slowest rank's compute total."""
        return max(t.compute_time_s for t in self.timelines)

    @property
    def comm_time_s(self) -> float:
        """Modelled collective time on the slowest rank (pre-overlap)."""
        return max(t.comm_time_s for t in self.timelines)

    @property
    def exposed_comm_time_s(self) -> float:
        """Collective time left on the critical path after overlap."""
        return max(t.exposed_comm_time_s for t in self.timelines)

    @property
    def comm_fraction(self) -> float:
        """Share of the makespan spent in exposed communication."""
        total = self.total_time_s
        return self.exposed_comm_time_s / total if total > 0 else 0.0


def build_timelines(
    plan: DistributedPlan,
    machine: MachineSpec,
    *,
    tuning: TuningConstants = DEFAULT_TUNING,
    overlap: float = 0.0,
    keep_entries: bool = True,
) -> DistributedTrace:
    """Price a plan on a machine and lay it out on per-device timelines.

    SPMD plans (tensor/data parallel) advance all ranks together and
    synchronize at every collective; pipeline plans chain stages with
    point-to-point transfers.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    estimator = CachingCostEstimator(machine.gpu, tuning)
    if plan.kind == "pipeline":
        timelines = _build_pipeline(
            plan, machine, estimator, overlap, keep_entries
        )
    else:
        timelines = _build_spmd(
            plan, machine, estimator, overlap, keep_entries
        )
    return DistributedTrace(
        strategy=plan.strategy,
        world=plan.world,
        machine=machine,
        timelines=timelines,
        overlap=overlap,
    )


def _build_spmd(
    plan: DistributedPlan,
    machine: MachineSpec,
    estimator: CachingCostEstimator,
    overlap: float,
    keep_entries: bool,
) -> list[DeviceTimeline]:
    world = plan.world
    comm_model = machine.topology.cost_model(world)
    timelines = [DeviceTimeline(rank=rank) for rank in range(world)]
    clocks = [0.0] * world
    for event in plan.sharded_events:
        for rank, op in enumerate(event.ops):
            if op is None:
                continue
            cost = estimator.estimate(op).scaled(event.repeat)
            timeline = timelines[rank]
            if keep_entries:
                timeline.entries.append(
                    TimelineEntry(
                        kind="compute",
                        label=op.name,
                        start_s=clocks[rank],
                        duration_s=cost.time_s,
                    )
                )
            timeline.compute_time_s += cost.time_s
            clocks[rank] += cost.time_s
        if event.comm is not None and world > 1:
            estimate = comm_model.estimate(
                event.comm.kind, event.comm.payload_bytes, world
            )
            comm_time = estimate.time_s * event.repeat
            exposed = comm_time * (1.0 - overlap)
            start = max(clocks)
            for rank in range(world):
                timeline = timelines[rank]
                if keep_entries and exposed > 0:
                    timeline.entries.append(
                        TimelineEntry(
                            kind="comm",
                            label=event.comm.label,
                            start_s=start,
                            duration_s=exposed,
                        )
                    )
                timeline.comm_time_s += comm_time
                timeline.exposed_comm_time_s += exposed
                clocks[rank] = start + exposed
    for rank in range(world):
        timelines[rank].end_s = clocks[rank]
    return timelines


def _build_pipeline(
    plan: DistributedPlan,
    machine: MachineSpec,
    estimator: CachingCostEstimator,
    overlap: float,
    keep_entries: bool,
) -> list[DeviceTimeline]:
    world = plan.world
    comm_model = machine.topology.cost_model(2)
    timelines = [DeviceTimeline(rank=rank) for rank in range(world)]
    clock = 0.0  # single-sample latency: stages execute back to back
    for event in plan.sharded_events:
        rank = event.stage
        op = event.ops[rank]
        if op is not None:
            cost = estimator.estimate(op).scaled(event.repeat)
            timeline = timelines[rank]
            if keep_entries:
                timeline.entries.append(
                    TimelineEntry(
                        kind="compute",
                        label=op.name,
                        start_s=clock,
                        duration_s=cost.time_s,
                    )
                )
            timeline.compute_time_s += cost.time_s
            clock += cost.time_s
            timeline.end_s = clock
        if event.comm is not None:
            estimate = comm_model.send_recv(event.comm.payload_bytes)
            comm_time = estimate.time_s * event.repeat
            exposed = comm_time * (1.0 - overlap)
            timeline = timelines[rank]
            if keep_entries and exposed > 0:
                timeline.entries.append(
                    TimelineEntry(
                        kind="comm",
                        label=event.comm.label,
                        start_s=clock,
                        duration_s=exposed,
                    )
                )
            timeline.comm_time_s += comm_time
            timeline.exposed_comm_time_s += exposed
            clock += exposed
            timeline.end_s = clock
    return timelines


def render_timeline_summary(trace: DistributedTrace) -> str:
    """One line per rank: compute, exposed comm, and finish time."""
    lines = [
        f"{trace.strategy} on {trace.machine.name} "
        f"(overlap={trace.overlap:.0%})"
    ]
    for timeline in trace.timelines:
        lines.append(
            f"  rank {timeline.rank}: "
            f"compute {timeline.compute_time_s * 1e3:9.2f} ms, "
            f"comm {timeline.exposed_comm_time_s * 1e3:8.2f} ms "
            f"(modelled {timeline.comm_time_s * 1e3:8.2f} ms), "
            f"done at {timeline.end_s * 1e3:9.2f} ms"
        )
    return "\n".join(lines)
