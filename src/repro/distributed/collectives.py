"""Analytical collective-communication cost model.

Multi-GPU execution of the paper's workloads (Section V's scaling
discussion) is priced by the alpha-beta model every collective library
is tuned against: a collective over ``p`` ranks decomposes into steps,
each costing one link latency (alpha) plus wire bytes over link
bandwidth (beta).  Two algorithm families are modelled, matching the
NCCL choices that matter at inference payload sizes:

* **ring** — bandwidth-optimal; an all-reduce moves ``2(p-1)/p`` of the
  payload per rank over ``2(p-1)`` latency-bearing steps;
* **tree** — latency-optimal; ``O(log p)`` steps but the full payload
  crosses a link at every step.

:class:`CollectiveCostModel` picks the faster algorithm per call, which
reproduces NCCL's small-message/large-message switch.  Divergences from
real NCCL behaviour (protocol overheads, SM occupancy of communication
kernels, multi-rail rings) are documented in ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect link class between devices.

    Attributes:
        name: link family, e.g. ``"NVLink3"``.
        bandwidth: per-GPU bandwidth in bytes/s, each direction.
        latency_s: per-message latency of one hop over this link.
    """

    name: str
    bandwidth: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be non-negative")

    def transfer_time(self, payload_bytes: float) -> float:
        """Point-to-point time for one message over this link."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return self.latency_s + payload_bytes / self.bandwidth


# Link presets (per-GPU, per-direction; see docs/HARDWARE.md).
NVLINK3 = LinkSpec("NVLink3", bandwidth=300e9, latency_s=2.0e-6)
NVLINK4 = LinkSpec("NVLink4", bandwidth=450e9, latency_s=2.0e-6)
PCIE4_X16 = LinkSpec("PCIe4-x16", bandwidth=32e9, latency_s=5.0e-6)
PCIE5_X16 = LinkSpec("PCIe5-x16", bandwidth=64e9, latency_s=5.0e-6)
IB_HDR = LinkSpec("IB-HDR-200", bandwidth=25e9, latency_s=5.0e-6)
IB_NDR = LinkSpec("IB-NDR-400", bandwidth=50e9, latency_s=5.0e-6)
INFINITY_FABRIC = LinkSpec("InfinityFabric3", bandwidth=384e9,
                           latency_s=2.5e-6)


class CollectiveKind(enum.Enum):
    """The collective operations the partitioners emit."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    SEND_RECV = "send_recv"


class CollectiveAlgorithm(enum.Enum):
    """Algorithm family used to execute a collective."""

    RING = "ring"
    TREE = "tree"


@dataclass(frozen=True)
class CollectiveEstimate:
    """Priced execution of one collective call.

    Attributes:
        kind: which collective.
        payload_bytes: logical tensor size being communicated.
        world_size: ranks participating.
        time_s: modelled wall time.
        algorithm: ring or tree, whichever was cheaper.
        wire_bytes: bytes crossing the busiest link per rank.
        link: the link class the time was computed against.
    """

    kind: CollectiveKind
    payload_bytes: float
    world_size: int
    time_s: float
    algorithm: CollectiveAlgorithm
    wire_bytes: float
    link: LinkSpec

    def scaled(self, factor: int) -> "CollectiveEstimate":
        """This collective issued ``factor`` times back to back."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        return CollectiveEstimate(
            kind=self.kind,
            payload_bytes=self.payload_bytes * factor,
            world_size=self.world_size,
            time_s=self.time_s * factor,
            algorithm=self.algorithm,
            wire_bytes=self.wire_bytes * factor,
            link=self.link,
        )


def ring_all_reduce_time(
    payload_bytes: float, world_size: int, link: LinkSpec
) -> float:
    """Ring all-reduce: reduce-scatter then all-gather.

    ``2(p-1)`` steps each move ``payload/p`` over the link:
    ``t = 2(p-1) * (alpha + payload / (p * beta))``.
    """
    if world_size <= 1:
        return 0.0
    steps = 2 * (world_size - 1)
    return steps * (link.latency_s + payload_bytes / (world_size * link.bandwidth))


def tree_all_reduce_time(
    payload_bytes: float, world_size: int, link: LinkSpec
) -> float:
    """Binary-tree all-reduce (reduce up, broadcast down).

    ``2 * ceil(log2 p)`` hops each carry the full payload:
    ``t = 2 * ceil(log2 p) * (alpha + payload / beta)``.
    """
    if world_size <= 1:
        return 0.0
    hops = 2 * math.ceil(math.log2(world_size))
    return hops * link.transfer_time(payload_bytes)


def ring_all_gather_time(
    payload_bytes: float, world_size: int, link: LinkSpec
) -> float:
    """Ring all-gather: ``(p-1)`` steps each moving ``payload/p``.

    ``payload_bytes`` is the size of the *gathered* tensor (each rank
    contributes ``payload/p``).
    """
    if world_size <= 1:
        return 0.0
    steps = world_size - 1
    return steps * (link.latency_s + payload_bytes / (world_size * link.bandwidth))


def ring_reduce_scatter_time(
    payload_bytes: float, world_size: int, link: LinkSpec
) -> float:
    """Ring reduce-scatter moves the same wire volume as all-gather."""
    return ring_all_gather_time(payload_bytes, world_size, link)


def send_recv_time(payload_bytes: float, link: LinkSpec) -> float:
    """Point-to-point activation transfer (pipeline-stage boundary)."""
    return link.transfer_time(payload_bytes)


class CollectiveCostModel:
    """Prices collectives over one link class.

    The model is flat: the slowest link in the communicator bounds every
    step, which is the standard single-rail approximation (hierarchical
    NCCL rings are discussed as a divergence in ``docs/DISTRIBUTED.md``).
    """

    def __init__(self, link: LinkSpec):
        self.link = link

    def all_reduce(
        self, payload_bytes: float, world_size: int
    ) -> CollectiveEstimate:
        """Price an all-reduce, picking the cheaper of ring and tree."""
        self._check(payload_bytes, world_size)
        ring = ring_all_reduce_time(payload_bytes, world_size, self.link)
        tree = tree_all_reduce_time(payload_bytes, world_size, self.link)
        if tree < ring:
            algorithm, time_s = CollectiveAlgorithm.TREE, tree
            wire = 2 * math.ceil(math.log2(max(world_size, 2))) * payload_bytes
        else:
            algorithm, time_s = CollectiveAlgorithm.RING, ring
            wire = (
                2 * (world_size - 1) / world_size * payload_bytes
                if world_size > 1 else 0.0
            )
        return CollectiveEstimate(
            kind=CollectiveKind.ALL_REDUCE,
            payload_bytes=payload_bytes,
            world_size=world_size,
            time_s=time_s,
            algorithm=algorithm,
            wire_bytes=wire,
            link=self.link,
        )

    def all_gather(
        self, payload_bytes: float, world_size: int
    ) -> CollectiveEstimate:
        """Price a ring all-gather of the full ``payload_bytes`` tensor."""
        self._check(payload_bytes, world_size)
        time_s = ring_all_gather_time(payload_bytes, world_size, self.link)
        wire = (
            (world_size - 1) / world_size * payload_bytes
            if world_size > 1 else 0.0
        )
        return CollectiveEstimate(
            kind=CollectiveKind.ALL_GATHER,
            payload_bytes=payload_bytes,
            world_size=world_size,
            time_s=time_s,
            algorithm=CollectiveAlgorithm.RING,
            wire_bytes=wire,
            link=self.link,
        )

    def reduce_scatter(
        self, payload_bytes: float, world_size: int
    ) -> CollectiveEstimate:
        """Price a ring reduce-scatter of ``payload_bytes``."""
        self._check(payload_bytes, world_size)
        time_s = ring_reduce_scatter_time(payload_bytes, world_size, self.link)
        wire = (
            (world_size - 1) / world_size * payload_bytes
            if world_size > 1 else 0.0
        )
        return CollectiveEstimate(
            kind=CollectiveKind.REDUCE_SCATTER,
            payload_bytes=payload_bytes,
            world_size=world_size,
            time_s=time_s,
            algorithm=CollectiveAlgorithm.RING,
            wire_bytes=wire,
            link=self.link,
        )

    def send_recv(self, payload_bytes: float) -> CollectiveEstimate:
        """Price a point-to-point transfer between two ranks."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return CollectiveEstimate(
            kind=CollectiveKind.SEND_RECV,
            payload_bytes=payload_bytes,
            world_size=2,
            time_s=send_recv_time(payload_bytes, self.link),
            algorithm=CollectiveAlgorithm.RING,
            wire_bytes=payload_bytes,
            link=self.link,
        )

    def estimate(
        self, kind: CollectiveKind, payload_bytes: float, world_size: int
    ) -> CollectiveEstimate:
        """Dispatch on :class:`CollectiveKind`."""
        if kind is CollectiveKind.ALL_REDUCE:
            return self.all_reduce(payload_bytes, world_size)
        if kind is CollectiveKind.ALL_GATHER:
            return self.all_gather(payload_bytes, world_size)
        if kind is CollectiveKind.REDUCE_SCATTER:
            return self.reduce_scatter(payload_bytes, world_size)
        return self.send_recv(payload_bytes)

    @staticmethod
    def _check(payload_bytes: float, world_size: int) -> None:
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if world_size < 1:
            raise ValueError("world size must be >= 1")
