"""Pipeline-schedule simulators: GPipe vs 1F1B bubble accounting.

Given per-stage forward/backward times (seconds per microbatch) and a
microbatch count, these simulators compute the step makespan and the
pipeline *bubble fraction* — the share of device-time the stages spend
idle:

    bubble = 1 - total_work / (stages * makespan)

For uniform stages both schedules reach the classic closed form
``(p - 1) / (m + p - 1)`` exactly, which the unit tests pin.

**GPipe** runs all forwards, flushes, then runs all backwards; both
halves follow the wavefront recurrence
``t[s][i] = max(t[s][i-1], t[s-1][i]) + dur[s]``.

**1F1B** is modelled as eager work-conserving list scheduling with
backward priority (PipeDream-flush style): whenever a stage is free it
starts its earliest ready task, preferring backwards over forwards.
Backward of microbatch ``i`` on stage ``s`` depends on backward on
stage ``s+1`` (and on the last stage, on its own forward).  This
schedule never waits on an artificial flush, so its makespan — and
therefore its bubble — is never worse than GPipe's on the same config.
Unlike strict depth-capped 1F1B it does not limit in-flight
microbatches; the realised peak is reported as ``peak_in_flight`` so
memory accounting can use the measured value.

Forward-only (serving) latency uses :func:`forward_makespan`, the same
wavefront recurrence without a backward half.  With one stage and one
microbatch it degenerates to ``forward_s[0]`` exactly — the
byte-identical single-device contract the planner relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one pipeline schedule.

    Attributes:
        name: schedule identifier (``"gpipe"`` or ``"1f1b"``).
        stages: number of pipeline stages.
        microbatches: microbatches per step.
        makespan_s: wall-clock time of one training step.
        work_s: total busy device-time across all stages.
        bubble_fraction: idle share, ``1 - work / (stages * makespan)``.
        peak_in_flight: max microbatches any stage holds activations for.
    """

    name: str
    stages: int
    microbatches: int
    makespan_s: float
    work_s: float
    bubble_fraction: float
    peak_in_flight: int


def ideal_bubble_fraction(stages: int, microbatches: int) -> float:
    """Closed-form bubble for uniform stages: ``(p-1) / (m+p-1)``."""
    if stages < 1 or microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    return (stages - 1) / (microbatches + stages - 1)


def _validate(forward_s: Sequence[float], microbatches: int) -> int:
    if not forward_s:
        raise ValueError("need at least one stage")
    if microbatches < 1:
        raise ValueError("microbatches must be >= 1")
    if any(t < 0 for t in forward_s):
        raise ValueError("stage times must be non-negative")
    return len(forward_s)


def forward_makespan(forward_s: Sequence[float], microbatches: int) -> float:
    """Makespan of the forward-only wavefront (inference pipelines).

    ``t[s][i] = max(t[s][i-1], t[s-1][i]) + forward_s[s]``; returns
    ``t[p-1][m-1]``.  One stage, one microbatch returns ``forward_s[0]``
    unchanged (no float re-association).
    """
    stages = _validate(forward_s, microbatches)
    finish = [0.0] * stages
    for _ in range(microbatches):
        prev = 0.0
        for s in range(stages):
            start = finish[s] if finish[s] > prev else prev
            finish[s] = start + forward_s[s]
            prev = finish[s]
    return finish[-1]


def _bubble(stages: int, makespan: float, work: float) -> float:
    if stages == 1 or makespan <= 0.0:
        # A single stage is never idle; report exactly zero rather than
        # the float residue of 1 - work/makespan.
        return 0.0
    return 1.0 - work / (stages * makespan)


def simulate_gpipe(
    forward_s: Sequence[float],
    backward_s: Sequence[float],
    microbatches: int,
) -> ScheduleResult:
    """All forwards, a full flush, then all backwards."""
    stages = _validate(forward_s, microbatches)
    if len(backward_s) != stages:
        raise ValueError("forward and backward stage counts differ")
    if any(t < 0 for t in backward_s):
        raise ValueError("stage times must be non-negative")
    # Forward wavefront.
    fwd = [0.0] * stages
    for _ in range(microbatches):
        prev = 0.0
        for s in range(stages):
            start = fwd[s] if fwd[s] > prev else prev
            fwd[s] = start + forward_s[s]
            prev = fwd[s]
    flush = fwd[-1]
    # Backward wavefront, last stage first, starting at the flush.
    bwd = [flush] * stages
    for _ in range(microbatches):
        prev = flush
        for s in reversed(range(stages)):
            start = bwd[s] if bwd[s] > prev else prev
            bwd[s] = start + backward_s[s]
            prev = bwd[s]
    makespan = bwd[0]
    work = microbatches * (sum(forward_s) + sum(backward_s))
    return ScheduleResult(
        name="gpipe",
        stages=stages,
        microbatches=microbatches,
        makespan_s=makespan,
        work_s=work,
        bubble_fraction=_bubble(stages, makespan, work),
        # GPipe holds every microbatch's activations until the flush.
        peak_in_flight=microbatches,
    )


def simulate_1f1b(
    forward_s: Sequence[float],
    backward_s: Sequence[float],
    microbatches: int,
) -> ScheduleResult:
    """Eager backward-priority list scheduling (PipeDream-flush style)."""
    stages = _validate(forward_s, microbatches)
    if len(backward_s) != stages:
        raise ValueError("forward and backward stage counts differ")
    if any(t < 0 for t in backward_s):
        raise ValueError("stage times must be non-negative")
    m = microbatches
    # fwd_done[s][i] / bwd_done[s][i]: finish times, None until scheduled.
    fwd_done: list[list[float | None]] = [[None] * m for _ in range(stages)]
    bwd_done: list[list[float | None]] = [[None] * m for _ in range(stages)]
    free = [0.0] * stages
    next_fwd = [0] * stages  # forwards complete in microbatch order
    next_bwd = [0] * stages  # so do backwards
    in_flight = [0] * stages
    peak = [0] * stages
    remaining = 2 * stages * m
    while remaining:
        best_stage = -1
        best_start = 0.0
        best_is_bwd = False
        for s in range(stages):
            # Work-conserving choice per stage: whichever of the two
            # frontier tasks can start earlier runs next; a tie goes to
            # the backward (the 1F1B discipline).
            cand_start: float | None = None
            cand_is_bwd = False
            i = next_bwd[s]
            if i < m:
                dep: float | None
                if s == stages - 1:
                    dep = fwd_done[s][i]
                else:
                    dep = bwd_done[s + 1][i]
                if dep is not None:
                    cand_start = free[s] if free[s] > dep else dep
                    cand_is_bwd = True
            i = next_fwd[s]
            if i < m:
                dep = 0.0 if s == 0 else fwd_done[s - 1][i]
                if dep is not None:
                    start = free[s] if free[s] > dep else dep
                    if cand_start is None or start < cand_start:
                        cand_start, cand_is_bwd = start, False
            if cand_start is not None and (
                best_stage < 0 or cand_start < best_start
            ):
                best_stage = s
                best_start = cand_start
                best_is_bwd = cand_is_bwd
        s = best_stage
        if best_is_bwd:
            i = next_bwd[s]
            finish = best_start + backward_s[s]
            bwd_done[s][i] = finish
            next_bwd[s] = i + 1
            in_flight[s] -= 1
        else:
            i = next_fwd[s]
            finish = best_start + forward_s[s]
            fwd_done[s][i] = finish
            next_fwd[s] = i + 1
            in_flight[s] += 1
            if in_flight[s] > peak[s]:
                peak[s] = in_flight[s]
        free[s] = finish
        remaining -= 1
    makespan = max(free)
    work = m * (sum(forward_s) + sum(backward_s))
    return ScheduleResult(
        name="1f1b",
        stages=stages,
        microbatches=m,
        makespan_s=makespan,
        work_s=work,
        bubble_fraction=_bubble(stages, makespan, work),
        peak_in_flight=max(peak),
    )
