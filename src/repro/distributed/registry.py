"""Hardware/backend registry: named multi-GPU machine configurations.

A :class:`MachineSpec` pairs a :class:`repro.hw.spec.GPUSpec` with the
:class:`repro.distributed.topology.Topology` its GPUs are wired into —
the unit the distributed profiler, the scaling analyses and the serving
simulator select hardware by.  The built-in registry covers the paper's
A100 baseline, its 40 GB variant, the H100 "future hardware" point
Section V argues about, a PCIe-only A100 box (to expose topology
sensitivity), and one non-NVIDIA part (AMD MI300X).

The full table, with peak FLOPs / HBM bandwidth / interconnect per
entry, is rendered in ``docs/HARDWARE.md`` via
:func:`render_machine_table`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.collectives import (
    IB_HDR,
    IB_NDR,
    INFINITY_FABRIC,
    NVLINK3,
    NVLINK4,
    PCIE4_X16,
)
from repro.distributed.topology import Topology
from repro.hw.spec import (
    A100_40GB,
    A100_80GB,
    H100_80GB,
    MI300X_192GB,
    GPUSpec,
)
from repro.ir.dtypes import FP16


@dataclass(frozen=True)
class MachineSpec:
    """One registered multi-GPU machine configuration.

    Attributes:
        name: registry key, e.g. ``"dgx-h100"``.
        gpu: per-device hardware spec.
        topology: interconnect wiring between the devices.
        description: one-line provenance note for the docs table.
    """

    name: str
    gpu: GPUSpec
    topology: Topology
    description: str = ""


NVSWITCH3_8 = Topology(
    "NVSwitch3-8", intra_node=NVLINK3, inter_node=IB_HDR, gpus_per_node=8
)
NVSWITCH4_8 = Topology(
    "NVSwitch4-8", intra_node=NVLINK4, inter_node=IB_NDR, gpus_per_node=8
)
PCIE_8 = Topology(
    "PCIe4-8", intra_node=PCIE4_X16, inter_node=IB_HDR, gpus_per_node=8
)
IF_8 = Topology(
    "InfinityFabric-8", intra_node=INFINITY_FABRIC, inter_node=IB_NDR,
    gpus_per_node=8,
)

DGX_A100_80G = MachineSpec(
    name="dgx-a100-80g",
    gpu=A100_80GB,
    topology=NVSWITCH3_8,
    description="the paper's characterization platform (Section III)",
)
DGX_A100_40G = MachineSpec(
    name="dgx-a100-40g",
    gpu=A100_40GB,
    topology=NVSWITCH3_8,
    description="capacity-constrained A100 variant",
)
PCIE_A100 = MachineSpec(
    name="pcie-a100",
    gpu=A100_80GB,
    topology=PCIE_8,
    description="A100s without NVSwitch; exposes topology sensitivity",
)
DGX_H100 = MachineSpec(
    name="dgx-h100",
    gpu=H100_80GB,
    topology=NVSWITCH4_8,
    description="Section V's future-hardware projection point",
)
MI300X_NODE = MachineSpec(
    name="mi300x-node",
    gpu=MI300X_192GB,
    topology=IF_8,
    description="non-NVIDIA backend (CDNA3, Infinity Fabric mesh)",
)

MACHINES: dict[str, MachineSpec] = {
    machine.name: machine
    for machine in (
        DGX_A100_80G, DGX_A100_40G, PCIE_A100, DGX_H100, MI300X_NODE,
    )
}


def machine_names() -> list[str]:
    """Sorted names of all registered machines."""
    return sorted(MACHINES)


def machine_from_name(name: str) -> MachineSpec:
    """Look up a registered machine by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; known: {machine_names()}"
        ) from None


def register_machine(machine: MachineSpec, *, replace: bool = False) -> None:
    """Add a machine to the registry (for user-defined backends).

    Replacing a machine invalidates every kernel cost priced on the
    outgoing GPU spec: the cost cache is content-addressed, so a
    *changed* spec could never alias a stale entry, but a replacement
    that reuses the old GPU name must not leave dead costs pinned in
    the process-wide table.
    """
    if machine.name in MACHINES and not replace:
        raise ValueError(f"machine {machine.name!r} already registered")
    previous = MACHINES.get(machine.name)
    MACHINES[machine.name] = machine
    if previous is not None and previous.gpu != machine.gpu:
        from repro.kernels.cache import GLOBAL_COST_CACHE

        GLOBAL_COST_CACHE.invalidate_spec(previous.gpu)


def render_machine_table() -> str:
    """Markdown table of every registered machine (docs/HARDWARE.md)."""
    lines = [
        "| machine | GPU | FP16 peak | HBM BW | HBM cap | "
        "intra-node link | inter-node link | GPUs/node |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name in machine_names():
        machine = MACHINES[name]
        gpu, topo = machine.gpu, machine.topology
        lines.append(
            f"| `{name}` | {gpu.name} "
            f"| {gpu.peak_flops_for(FP16) / 1e12:.0f} TFLOP/s "
            f"| {gpu.dram_bandwidth / 1e12:.2f} TB/s "
            f"| {gpu.dram_capacity / 1024**3:.0f} GiB "
            f"| {topo.intra_node.name} "
            f"({topo.intra_node.bandwidth / 1e9:.0f} GB/s) "
            f"| {topo.inter_node.name} "
            f"({topo.inter_node.bandwidth / 1e9:.0f} GB/s) "
            f"| {topo.gpus_per_node} |"
        )
    return "\n".join(lines)
