"""Per-operator sharding rules.

The partitioners in :mod:`repro.distributed.partition` decide *which*
split each trace event gets (Megatron column/row placement, head
parallelism, sequence parallelism, batch slicing); this module knows
*how* to apply a split to each operator type.  All splits divide an
integer dimension with the largest-remainder method, so the shards'
FLOPs sum to the unsharded operator's FLOPs exactly — the invariant the
partitioner tests rely on (every op's ``flops()`` is linear in the
dimension its rule splits).

A rank whose share of the split dimension is zero gets ``None`` — that
device simply does not launch the kernel (e.g. a 3-channel VAE resample
sharded 8 ways, or a batch-1 op under data parallelism).
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.ir.ops import (
    Conv2d,
    Conv3d,
    Elementwise,
    Embedding,
    FusedAttention,
    Gemm,
    GroupNorm,
    LayerNorm,
    Op,
    Resample,
    Softmax,
    Transpose,
)


class ShardRole(enum.Enum):
    """How one trace event is split across a tensor-parallel group."""

    COLUMN = "column"        # weight op, output-feature split (no comm)
    ROW = "row"              # weight op, input-feature split (all-reduce)
    HEAD = "head"            # attention math, head/batch split
    SEQUENCE = "sequence"    # activation op, token/element split
    BATCH = "batch"          # data-parallel sample split


def proportional_split(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` into integer parts proportional to ``weights``.

    Largest-remainder method: the parts sum to ``total`` exactly, and a
    zero weight always yields a zero part.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights or any(w < 0 for w in weights):
        raise ValueError("weights must be non-empty and non-negative")
    weight_sum = sum(weights)
    if weight_sum == 0:
        raise ValueError("at least one weight must be positive")
    # Exact integer arithmetic throughout: a float implementation loses
    # units once ``total * weight`` approaches 2**53 (token- or
    # parameter-count splits), leaving the parts sum off by dozens.
    # Remainders share the denominator ``weight_sum``, so comparing the
    # numerators ranks fractions exactly.
    scaled = [total * w for w in weights]
    parts = [s // weight_sum for s in scaled]
    remainder = total - sum(parts)
    by_fraction = sorted(
        range(len(weights)),
        key=lambda i: (scaled[i] % weight_sum, weights[i]),
        reverse=True,
    )
    for i in by_fraction[:remainder]:
        parts[i] += 1
    return parts


def even_split(total: int, parts: int) -> list[int]:
    """Split ``total`` as evenly as possible into ``parts`` integers."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    return proportional_split(total, [1] * parts)


def _replace_dim(op: Op, dim_name: str, parts: list[int]) -> list[Op | None]:
    """Per-rank copies of ``op`` with ``dim_name`` set to each part."""
    shards: list[Op | None] = []
    cache: dict[int, Op] = {}
    for part in parts:
        if part == 0:
            shards.append(None)
        else:
            if part not in cache:
                cache[part] = replace(op, **{dim_name: part})
            shards.append(cache[part])
    return shards


def split_dim_name(op: Op, role: ShardRole) -> str:
    """Name of the integer field the given split divides on ``op``.

    Raises ``TypeError`` for operator types without a rule — the
    partitioner is expected to cover every type the layers emit.
    """
    if isinstance(op, Gemm):
        if role is ShardRole.COLUMN:
            return "n"
        if role is ShardRole.ROW:
            return "k"
        if role is ShardRole.HEAD:
            # Attention QK^T/PV batched GEMMs: batch folds batch*heads.
            return "batch" if op.batch > 1 else "m"
        return "batch" if op.batch > 1 else "m"
    if isinstance(op, FusedAttention):
        return "num_heads" if role is not ShardRole.BATCH else "batch"
    if isinstance(op, (Conv2d, Conv3d)):
        if role is ShardRole.COLUMN:
            return "out_channels"
        if role is ShardRole.ROW:
            return "in_channels"
        return "batch"
    if isinstance(op, Softmax):
        return "rows"
    if isinstance(op, LayerNorm):
        return "rows"
    if isinstance(op, GroupNorm):
        return "spatial" if role is not ShardRole.BATCH else "batch"
    if isinstance(op, (Elementwise, Transpose)):
        return "numel"
    if isinstance(op, Embedding):
        return "tokens"
    if isinstance(op, Resample):
        return "channels" if role is not ShardRole.BATCH else "batch"
    raise TypeError(f"no sharding rule for operator type {type(op).__name__}")


def _splittable(op: Op, role: ShardRole, dim_name: str) -> bool:
    """Whether the chosen split keeps the op constructible on a shard."""
    if isinstance(op, Conv2d) and op.groups > 1:
        # Channel splits of grouped convs can violate group divisibility;
        # fall back to batch slicing (one rank runs the whole kernel).
        return dim_name not in ("in_channels", "out_channels")
    return True


def shard_op(op: Op, role: ShardRole, weights: list[int]) -> list[Op | None]:
    """Split one operator across ranks according to ``role``.

    ``weights`` gives each rank's share of the split dimension
    (``[1] * world`` for tensor parallelism, per-rank batch sizes for
    data parallelism).  Returns one op (or ``None``) per rank; the
    shards' total FLOPs equal the original's exactly.
    """
    dim_name = split_dim_name(op, role)
    if not _splittable(op, role, dim_name):
        dim_name = "batch"
    total = getattr(op, dim_name)
    parts = proportional_split(total, weights)
    return _replace_dim(op, dim_name, parts)
