"""Transformer blocks and stacks (LLMs and transformer-based TTI/TTV).

Figure 3's right-hand panel: Self-Attention, Cross-Attention and
FeedForward — unchanged from LLMs, differing across models only in layer
count and width (GPT-3: 96 x 12288, Parti: 80 x 4096, Muse: 48 x 2048).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import AttentionKind
from repro.ir.tensor import TensorSpec
from repro.layers.attention import MultiHeadAttention
from repro.layers.linear import FeedForward
from repro.layers.norm import LayerNormLayer, RMSNormLayer


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of a transformer stack."""

    dim: int
    num_layers: int
    num_heads: int
    ffn_hidden: int | None = None
    causal: bool = False
    gated_ffn: bool = False
    rms_norm: bool = False
    cross_dim: int | None = None

    def __post_init__(self) -> None:
        if min(self.dim, self.num_layers, self.num_heads) <= 0:
            raise ValueError(f"invalid transformer config {self}")
        if self.dim % self.num_heads:
            raise ValueError(
                f"dim {self.dim} not divisible by {self.num_heads} heads"
            )


# Replay-memo tables shared by every block built from one (frozen,
# hashable) config.  Blocks of a stack are structurally identical and
# carry the same scope name, so they emit byte-identical event streams
# for equal inputs; sharing the table lets block N replay what block 2
# recorded instead of each of the stack's layers re-walking separately.
_BLOCK_MEMOS: dict[TransformerConfig, dict] = {}


def _shared_block_memo(config: TransformerConfig) -> dict:
    return _BLOCK_MEMOS.setdefault(config, {})


class TransformerBlock(Module):
    """Pre-norm block: self-attention, optional cross-attention, FFN."""

    def __init__(self, config: TransformerConfig, name: str | None = None):
        super().__init__(name=name or "transformer_block")
        self.config = config
        norm_cls = RMSNormLayer if config.rms_norm else LayerNormLayer
        self.norm1 = norm_cls(config.dim)
        self.self_attn = MultiHeadAttention(
            config.dim,
            config.num_heads,
            causal=config.causal,
            kind=AttentionKind.TOKEN,
            name="self_attn",
        )
        if config.cross_dim is not None:
            self.norm_cross = norm_cls(config.dim)
            self.cross_attn = MultiHeadAttention(
                config.dim,
                config.num_heads,
                kv_dim=config.cross_dim,
                kind=AttentionKind.TOKEN,
                name="cross_attn",
            )
        else:
            self.cross_attn = None
        self.norm2 = norm_cls(config.dim)
        self.ff = FeedForward(
            config.dim, hidden_dim=config.ffn_hidden, gated=config.gated_ffn
        )

    def forward(
        self,
        ctx: ExecutionContext,
        x: TensorSpec,
        context: TensorSpec | None = None,
        past_length: int = 0,
    ) -> TensorSpec:
        self.norm1(ctx, x)
        self.self_attn(ctx, x, past_length=past_length)
        if self.cross_attn is not None and context is not None:
            self.norm_cross(ctx, x)
            self.cross_attn(ctx, x, context=context)
        self.norm2(ctx, x)
        self.ff(ctx, x)
        return x


class TransformerStack(Module):
    """``num_layers`` transformer blocks plus a final norm."""

    def __init__(self, config: TransformerConfig, name: str | None = None):
        super().__init__(name=name or "transformer")
        self.config = config
        self.blocks: list[TransformerBlock] = []
        shared_memo = _shared_block_memo(config)
        for index in range(config.num_layers):
            block = TransformerBlock(config)
            object.__setattr__(block, "_memo", shared_memo)
            self.blocks.append(self.add_module(f"block_{index}", block))
        norm_cls = RMSNormLayer if config.rms_norm else LayerNormLayer
        self.final_norm = norm_cls(config.dim)

    def forward(
        self,
        ctx: ExecutionContext,
        x: TensorSpec,
        context: TensorSpec | None = None,
        past_length: int = 0,
    ) -> TensorSpec:
        for block in self.blocks:
            x = block(ctx, x, context=context, past_length=past_length)
        self.final_norm(ctx, x)
        return x
