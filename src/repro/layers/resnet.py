"""ResNet blocks — the convolutional backbone of diffusion UNets.

Figure 3 of the paper shows diffusion models as alternating Resnet and
Attention blocks; these Resnet blocks are where the Convolution time
that dominates post-Flash-Attention execution (Section IV-A) comes from.
"""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import Elementwise
from repro.ir.tensor import TensorSpec
from repro.layers.conv import Conv2dLayer, TemporalConv
from repro.layers.linear import Linear
from repro.layers.norm import GroupNormLayer


class ResnetBlock2D(Module):
    """GN -> SiLU -> 3x3 conv -> (+time emb) -> GN -> SiLU -> 3x3 conv
    with a residual (1x1-projected when channels change)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        time_embed_dim: int | None = None,
        name: str | None = None,
    ):
        super().__init__(name=name or "resnet_block")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.norm1 = GroupNormLayer(in_channels)
        self.conv1 = Conv2dLayer(in_channels, out_channels)
        self.norm2 = GroupNormLayer(out_channels)
        self.conv2 = Conv2dLayer(out_channels, out_channels)
        if time_embed_dim:
            self.time_proj = Linear(time_embed_dim, out_channels)
        else:
            self.time_proj = None
        if in_channels != out_channels:
            self.skip = Conv2dLayer(
                in_channels, out_channels, kernel=1, name="skip_conv"
            )
        else:
            self.skip = None

    def forward(
        self,
        ctx: ExecutionContext,
        x: TensorSpec,
        time_embedding: TensorSpec | None = None,
    ) -> TensorSpec:
        batch = x.shape[0]
        self.norm1(ctx, x)
        ctx.emit(
            Elementwise("silu", numel=x.numel, inputs=1, flops_per_element=5.0)
        )
        h = self.conv1(ctx, x)
        if self.time_proj is not None and time_embedding is not None:
            projected = self.time_proj(ctx, time_embedding)
            ctx.emit(
                Elementwise(
                    "add_time_embedding",
                    numel=h.numel,
                    inputs=2,
                    flops_per_element=1.0,
                )
            )
            del projected
        self.norm2(ctx, h)
        ctx.emit(
            Elementwise("silu", numel=h.numel, inputs=1, flops_per_element=5.0)
        )
        h = self.conv2(ctx, h)
        if self.skip is not None:
            self.skip(ctx, x)
        ctx.emit(
            Elementwise(
                "residual_add", numel=h.numel, inputs=2, flops_per_element=1.0
            )
        )
        del batch
        return h


class ResnetBlock3D(Module):
    """Pseudo-3D resnet block: 2D block applied per frame + temporal conv.

    The factorized convolution TTV models use so video does not pay a
    full 3D-conv FLOP bill (Section II-B).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        time_embed_dim: int | None = None,
        name: str | None = None,
    ):
        super().__init__(name=name or "resnet_block_3d")
        self.spatial = ResnetBlock2D(
            in_channels, out_channels, time_embed_dim, name="spatial"
        )
        self.temporal = TemporalConv(out_channels)

    def forward(
        self,
        ctx: ExecutionContext,
        x: TensorSpec,
        time_embedding: TensorSpec | None = None,
    ) -> TensorSpec:
        if x.rank != 5:
            raise ValueError(
                f"{self.name}: expected (B, C, F, H, W), got {x.shape}"
            )
        batch, channels, frames, h, w = x.shape
        as_frames = x.with_shape(batch * frames, channels, h, w)
        out = self.spatial(ctx, as_frames, time_embedding)
        out_channels = out.shape[1]
        video = out.with_shape(batch, out_channels, frames, h, w)
        return self.temporal(ctx, video)
