"""Attention layers.

This module owns the baseline-vs-Flash lowering decision (Figure 6's
left/right bars) and defines the three attention varieties the paper
analyzes:

* :class:`MultiHeadAttention` — ordinary token attention with optional
  causality, KV-caching (decode) and cross-attention, used by the LLM
  and transformer-TTI models;
* :class:`SpatialSelfAttention` / :class:`SpatialTransformer` — image
  attention inside UNets, whose sequence length is the flattened latent
  (``H*W``, Section V);
* :class:`TemporalAttentionLayer` — TTV frame attention, whose sequence
  length is the *frame count* after the Figure 10 dimension rearrange.
"""

from __future__ import annotations

from repro.ir.context import AttentionImpl, ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import (
    AttentionInfo,
    AttentionKind,
    AttentionRole,
    Elementwise,
    FusedAttention,
    Gemm,
    OpCategory,
    Softmax,
    Transpose,
)
from repro.ir.tensor import TensorSpec
from repro.layers.linear import Linear
from repro.ir.ops import OpCategory as _Cat
from repro.layers.norm import GroupNormLayer, LayerNormLayer

ANCHOR = frozenset({"attention_anchor"})


def emit_attention_core(
    ctx: ExecutionContext,
    *,
    batch: int,
    num_heads: int,
    seq_q: int,
    seq_kv: int,
    head_dim: int,
    role: AttentionRole,
    kind: AttentionKind,
    causal: bool = False,
    element_stride_bytes: int = 0,
) -> None:
    """Lower one attention call to kernels per the context's impl.

    Baseline lowering mirrors the pre-Flash PyTorch path (diffusers /
    fairseq era): QK^T GEMM materializing the similarity matrix, a
    scale (and mask, if causal) pass over it, softmax, then the PV GEMM
    re-reading it.  Flash lowering is a single fused kernel.
    """
    info = AttentionInfo(
        role=role,
        kind=kind,
        seq_q=seq_q,
        seq_kv=seq_kv,
        head_dim=head_dim,
        num_heads=num_heads,
        batch=batch,
        element_stride_bytes=element_stride_bytes,
    )
    if ctx.attention_impl is AttentionImpl.FLASH:
        ctx.emit(
            FusedAttention(
                "flash_attention",
                batch=batch,
                seq_q=seq_q,
                seq_kv=seq_kv,
                head_dim=head_dim,
                num_heads=num_heads,
                causal=causal,
                attention=info,
            ),
            flags=ANCHOR,
        )
        return
    batch_heads = batch * num_heads
    similarity_numel = batch_heads * seq_q * seq_kv
    ctx.emit(
        Gemm(
            "attn_qk",
            m=seq_q,
            n=seq_kv,
            k=head_dim,
            batch=batch_heads,
            category_override=OpCategory.ATTENTION,
            attention=info,
        ),
        flags=ANCHOR,
    )
    # Scale (and causal-mask fill) pass over the similarity matrix.
    passes = 2 if causal else 1
    for index in range(passes):
        ctx.emit(
            Elementwise(
                "attn_scale" if index == 0 else "attn_mask",
                numel=similarity_numel,
                inputs=1,
                flops_per_element=1.0,
                category_override=OpCategory.ATTENTION,
                attention=info,
            )
        )
    ctx.emit(
        Softmax(
            "attn_softmax",
            rows=batch_heads * seq_q,
            cols=seq_kv,
            attention=info,
        )
    )
    ctx.emit(
        Gemm(
            "attn_pv",
            m=seq_q,
            n=head_dim,
            k=seq_kv,
            batch=batch_heads,
            category_override=OpCategory.ATTENTION,
            attention=info,
        )
    )


class MultiHeadAttention(Module):
    """Token-sequence attention with optional cross-context and KV cache."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        kv_dim: int | None = None,
        causal: bool = False,
        kind: AttentionKind = AttentionKind.TOKEN,
        name: str | None = None,
    ):
        super().__init__(name=name or "attention")
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.kind = kind
        kv_dim = kv_dim or dim
        self.q_proj = Linear(dim, dim, bias=False, category=_Cat.ATTENTION, name="q_proj")
        self.k_proj = Linear(kv_dim, dim, bias=False, category=_Cat.ATTENTION, name="k_proj")
        self.v_proj = Linear(kv_dim, dim, bias=False, category=_Cat.ATTENTION, name="v_proj")
        self.out_proj = Linear(dim, dim, bias=False, category=_Cat.ATTENTION, name="out_proj")

    def forward(
        self,
        ctx: ExecutionContext,
        x: TensorSpec,
        context: TensorSpec | None = None,
        past_length: int = 0,
    ) -> TensorSpec:
        """x: (B, N, dim). ``context`` switches to cross-attention;
        ``past_length`` adds a KV cache (decode)."""
        if x.rank != 3:
            raise ValueError(f"{self.name}: expected (B, N, D), got {x.shape}")
        batch, seq_q, _ = x.shape
        kv_source = context if context is not None else x
        seq_kv = kv_source.shape[1] + (
            past_length if context is None else 0
        )
        q = self.q_proj(ctx, x)
        self.k_proj(ctx, kv_source)
        self.v_proj(ctx, kv_source)
        role = AttentionRole.CROSS if context is not None else AttentionRole.SELF
        emit_attention_core(
            ctx,
            batch=batch,
            num_heads=self.num_heads,
            seq_q=seq_q,
            seq_kv=seq_kv,
            head_dim=self.head_dim,
            role=role,
            kind=self.kind,
            causal=self.causal and context is None,
        )
        return self.out_proj(ctx, q)


class SpatialSelfAttention(Module):
    """Imagen-style attention block on (B, C, H, W) feature maps.

    GroupNorm, fused QKV 1x1 projection, attention over the flattened
    ``H*W`` sequence, output projection.  Sequence length is
    ``(H*W)`` — the paper's Section V relationship to image size.
    """

    def __init__(
        self,
        channels: int,
        head_dim: int = 64,
        text_dim: int | None = None,
        text_seq: int = 0,
        name: str | None = None,
    ):
        super().__init__(name=name or "spatial_attention")
        self.channels = channels
        self.head_dim = min(head_dim, channels)
        self.num_heads = max(1, channels // self.head_dim)
        self.text_dim = text_dim
        self.text_seq = text_seq
        self.norm = GroupNormLayer(channels)
        self.qkv = Linear(channels, 3 * channels, category=_Cat.ATTENTION, name="qkv_proj")
        self.out = Linear(channels, channels, category=_Cat.ATTENTION, name="out_proj")
        if text_dim is not None:
            self.text_kv = Linear(text_dim, 2 * channels, category=_Cat.ATTENTION, name="text_kv_proj")

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank != 4:
            raise ValueError(
                f"{self.name}: expected (B, C, H, W), got {x.shape}"
            )
        batch, channels, h, w = x.shape
        seq = h * w
        self.norm(ctx, x)
        # einops-style (B, C, H, W) -> (B, HW, C) rearrange is a copy.
        ctx.emit(
            Transpose(
                "rearrange_in",
                numel=x.numel,
                category_override=OpCategory.ATTENTION,
            )
        )
        tokens = x.with_shape(batch, seq, channels)
        self.qkv(ctx, tokens)
        emit_attention_core(
            ctx,
            batch=batch,
            num_heads=self.num_heads,
            seq_q=seq,
            seq_kv=seq,
            head_dim=self.head_dim,
            role=AttentionRole.SELF,
            kind=AttentionKind.SPATIAL,
        )
        if self.text_dim is not None and self.text_seq:
            text = TensorSpec((batch, self.text_seq, self.text_dim), x.dtype)
            self.text_kv(ctx, text)
            emit_attention_core(
                ctx,
                batch=batch,
                num_heads=self.num_heads,
                seq_q=seq,
                seq_kv=self.text_seq,
                head_dim=self.head_dim,
                role=AttentionRole.CROSS,
                kind=AttentionKind.SPATIAL,
            )
        self.out(ctx, tokens)
        ctx.emit(
            Transpose(
                "rearrange_out",
                numel=x.numel,
                category_override=OpCategory.ATTENTION,
            )
        )
        return x


class SpatialTransformer(Module):
    """Stable-Diffusion-style transformer block on feature maps.

    1x1 proj-in, then ``depth`` blocks of (LayerNorm, spatial
    self-attention, LayerNorm, text cross-attention, LayerNorm, GEGLU
    feed-forward), then 1x1 proj-out with residual.
    """

    def __init__(
        self,
        channels: int,
        head_dim: int,
        text_dim: int,
        text_seq: int,
        depth: int = 1,
        name: str | None = None,
    ):
        super().__init__(name=name or "spatial_transformer")
        from repro.layers.linear import FeedForward

        self.channels = channels
        self.head_dim = min(head_dim, channels)
        self.num_heads = max(1, channels // self.head_dim)
        self.text_dim = text_dim
        self.text_seq = text_seq
        self.depth = depth
        self.norm = GroupNormLayer(channels)
        self.proj_in = Linear(channels, channels, name="proj_in")
        self.proj_out = Linear(channels, channels, name="proj_out")
        self.norms1: list[LayerNormLayer] = []
        self.norms2: list[LayerNormLayer] = []
        self.norms3: list[LayerNormLayer] = []
        self.self_qkvs: list[Linear] = []
        self.self_outs: list[Linear] = []
        self.cross_qs: list[Linear] = []
        self.cross_kvs: list[Linear] = []
        self.cross_outs: list[Linear] = []
        self.ffs: list[FeedForward] = []
        for index in range(depth):
            self.norms1.append(
                self.add_module(f"norm1_{index}", LayerNormLayer(channels))
            )
            self.self_qkvs.append(
                self.add_module(
                    f"self_qkv_{index}",
                    Linear(channels, 3 * channels, category=_Cat.ATTENTION, name="self_qkv"),
                )
            )
            self.self_outs.append(
                self.add_module(
                    f"self_out_{index}",
                    Linear(channels, channels, category=_Cat.ATTENTION, name="self_out"),
                )
            )
            self.norms2.append(
                self.add_module(f"norm2_{index}", LayerNormLayer(channels))
            )
            self.norms3.append(
                self.add_module(f"norm3_{index}", LayerNormLayer(channels))
            )
            self.cross_qs.append(
                self.add_module(
                    f"cross_q_{index}",
                    Linear(channels, channels, category=_Cat.ATTENTION, name="cross_q"),
                )
            )
            self.cross_kvs.append(
                self.add_module(
                    f"cross_kv_{index}",
                    Linear(text_dim, 2 * channels, category=_Cat.ATTENTION, name="cross_kv"),
                )
            )
            self.cross_outs.append(
                self.add_module(
                    f"cross_out_{index}",
                    Linear(channels, channels, category=_Cat.ATTENTION, name="cross_out"),
                )
            )
            self.ffs.append(
                self.add_module(
                    f"ff_{index}",
                    FeedForward(channels, hidden_dim=4 * channels, gated=True),
                )
            )

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank != 4:
            raise ValueError(
                f"{self.name}: expected (B, C, H, W), got {x.shape}"
            )
        batch, channels, h, w = x.shape
        seq = h * w
        self.norm(ctx, x)
        tokens = x.with_shape(batch, seq, channels)
        self.proj_in(ctx, tokens)
        text = TensorSpec((batch, self.text_seq, self.text_dim), x.dtype)
        for index in range(self.depth):
            self.norms1[index](ctx, tokens)
            self.self_qkvs[index](ctx, tokens)
            emit_attention_core(
                ctx,
                batch=batch,
                num_heads=self.num_heads,
                seq_q=seq,
                seq_kv=seq,
                head_dim=self.head_dim,
                role=AttentionRole.SELF,
                kind=AttentionKind.SPATIAL,
            )
            self.self_outs[index](ctx, tokens)
            self.norms2[index](ctx, tokens)
            self.cross_qs[index](ctx, tokens)
            self.cross_kvs[index](ctx, text)
            emit_attention_core(
                ctx,
                batch=batch,
                num_heads=self.num_heads,
                seq_q=seq,
                seq_kv=self.text_seq,
                head_dim=self.head_dim,
                role=AttentionRole.CROSS,
                kind=AttentionKind.SPATIAL,
            )
            self.cross_outs[index](ctx, tokens)
            self.norms3[index](ctx, tokens)
            self.ffs[index](ctx, tokens)
        self.proj_out(ctx, tokens)
        return x


class TemporalAttentionLayer(Module):
    """Frame-wise attention on (B, C, F, H, W) video activations.

    Implements the Figure 10 rearrangement: spatial positions move into
    the batch dimension and the frame axis becomes the sequence, so the
    effective sequence length is the number of frames.  The two
    ``einops``-style rearranges are materialized copies and are part of
    what module-level profiling attributes to Temporal Attention.
    """

    def __init__(
        self,
        channels: int,
        head_dim: int = 64,
        materialize_transpose: bool = True,
        name: str | None = None,
    ):
        super().__init__(name=name or "temporal_attention")
        self.channels = channels
        self.head_dim = min(head_dim, channels)
        self.num_heads = max(1, channels // self.head_dim)
        self.materialize_transpose = materialize_transpose
        self.norm = GroupNormLayer(channels)
        self.qkv = Linear(channels, 3 * channels, category=_Cat.ATTENTION, name="qkv_proj")
        self.out = Linear(channels, channels, category=_Cat.ATTENTION, name="out_proj")

    def attention_info(self, x: TensorSpec) -> AttentionInfo:
        """The attention configuration this input produces (for the
        Figure 12 cache study)."""
        batch, channels, frames, h, w = x.shape
        stride = 0
        if not self.materialize_transpose:
            stride = h * w * channels * x.dtype.size
        return AttentionInfo(
            role=AttentionRole.SELF,
            kind=AttentionKind.TEMPORAL,
            seq_q=frames,
            seq_kv=frames,
            head_dim=self.head_dim,
            num_heads=self.num_heads,
            batch=batch * h * w,
            element_stride_bytes=stride,
        )

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank != 5:
            raise ValueError(
                f"{self.name}: expected (B, C, F, H, W), got {x.shape}"
            )
        batch, channels, frames, h, w = x.shape
        self.norm(ctx, x)
        if self.materialize_transpose:
            ctx.emit(
                Transpose(
                    "rearrange_in",
                    numel=x.numel,
                    category_override=OpCategory.ATTENTION,
                )
            )
        tokens = x.with_shape(batch * h * w, frames, channels)
        self.qkv(ctx, tokens)
        info = self.attention_info(x)
        emit_attention_core(
            ctx,
            batch=info.batch,
            num_heads=info.num_heads,
            seq_q=frames,
            seq_kv=frames,
            head_dim=info.head_dim,
            role=AttentionRole.SELF,
            kind=AttentionKind.TEMPORAL,
            element_stride_bytes=info.element_stride_bytes,
        )
        self.out(ctx, tokens)
        if self.materialize_transpose:
            ctx.emit(
                Transpose(
                    "rearrange_out",
                    numel=x.numel,
                    category_override=OpCategory.ATTENTION,
                )
            )
        return x
