"""Model building blocks (the ``torch.nn`` analog)."""

from repro.layers.attention import (
    MultiHeadAttention,
    SpatialSelfAttention,
    SpatialTransformer,
    TemporalAttentionLayer,
    emit_attention_core,
)
from repro.layers.conv import (
    Conv2dLayer,
    Conv3dLayer,
    Downsample,
    TemporalConv,
    Upsample,
)
from repro.layers.embedding import TimestepEmbedding, TokenEmbedding
from repro.layers.linear import FeedForward, Linear
from repro.layers.norm import GroupNormLayer, LayerNormLayer, RMSNormLayer
from repro.layers.resnet import ResnetBlock2D, ResnetBlock3D
from repro.layers.transformer import (
    TransformerBlock,
    TransformerConfig,
    TransformerStack,
)
from repro.layers.unet import UNet, UNetConfig

__all__ = [
    "Conv2dLayer",
    "Conv3dLayer",
    "Downsample",
    "FeedForward",
    "GroupNormLayer",
    "LayerNormLayer",
    "Linear",
    "MultiHeadAttention",
    "RMSNormLayer",
    "ResnetBlock2D",
    "ResnetBlock3D",
    "SpatialSelfAttention",
    "SpatialTransformer",
    "TemporalAttentionLayer",
    "TemporalConv",
    "TimestepEmbedding",
    "TokenEmbedding",
    "TransformerBlock",
    "TransformerConfig",
    "TransformerStack",
    "UNet",
    "UNetConfig",
    "Upsample",
    "emit_attention_core",
]
