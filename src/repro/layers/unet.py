"""UNet backbones for diffusion models (Figure 3, left panel).

The UNet alternates Resnet and Attention blocks while downsampling and
upsampling the latent — the structure responsible for both the
convolution-heavy operator mix of diffusion models (Section IV-A) and
the cyclic sequence-length profiles of Figure 7.

One configurable class covers the paper's variants:

* Stable-Diffusion-style latent UNets (SpatialTransformer attention with
  text cross-attention at several levels);
* Imagen-style pixel UNets and super-resolution UNets (simpler attention
  blocks, attention only at coarse resolutions, sometimes none at all);
* TTV UNets (Make-A-Video): pseudo-3D resnet blocks plus temporal
  attention layers inserted after spatial attention (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.tensor import TensorSpec
from repro.layers.attention import (
    SpatialSelfAttention,
    SpatialTransformer,
    TemporalAttentionLayer,
)
from repro.layers.conv import Conv2dLayer, Downsample, Upsample
from repro.layers.embedding import TimestepEmbedding
from repro.layers.norm import GroupNormLayer
from repro.layers.resnet import ResnetBlock2D, ResnetBlock3D


@dataclass(frozen=True)
class UNetConfig:
    """Architecture of a (2D or pseudo-3D) diffusion UNet.

    Attributes:
        in_channels: latent/pixel channels at the input.
        model_channels: base channel width (Table I "Embed Dim" analog).
        channel_mult: per-level width multipliers (Table I "Channel Mult").
        num_res_blocks: resnet blocks per level (Table I "Num Res Blocks").
        attention_levels: level indices (0 = full resolution) where
            spatial attention runs.  Imagen's "Attn Res [32,16,8]" on a
            64px input corresponds to levels (1, 2, 3).
        attention_style: ``"transformer"`` (SD: self+cross+FF blocks) or
            ``"block"`` (Imagen: plain self-attention, optional cross).
        head_dim: attention head width ("Per-Head Channels").
        text_dim: text-encoder output width consumed by cross-attention.
        text_seq: encoded text length.
        cross_attention_levels: levels with text cross-attention; for the
            transformer style this defaults to the attention levels.
        temporal: insert temporal layers (TTV models).
        temporal_attention_levels: levels where temporal attention runs
            (may include levels without spatial attention, as TTV models
            drop spatial attention at high resolution, Section VI-B).
        transformer_depth: transformer blocks per spatial transformer.
    """

    in_channels: int = 4
    model_channels: int = 320
    channel_mult: tuple[int, ...] = (1, 2, 4, 4)
    num_res_blocks: int = 2
    attention_levels: tuple[int, ...] = (0, 1, 2, 3)
    attention_style: str = "transformer"
    head_dim: int = 64
    text_dim: int = 768
    text_seq: int = 77
    cross_attention_levels: tuple[int, ...] | None = None
    temporal: bool = False
    temporal_attention_levels: tuple[int, ...] = field(default=())
    transformer_depth: int = 1

    def __post_init__(self) -> None:
        if self.attention_style not in ("transformer", "block", "none"):
            raise ValueError(
                f"unknown attention style {self.attention_style!r}"
            )
        for level in self.attention_levels:
            if not 0 <= level < len(self.channel_mult):
                raise ValueError(
                    f"attention level {level} out of range for "
                    f"{len(self.channel_mult)} levels"
                )

    @property
    def levels(self) -> int:
        return len(self.channel_mult)

    @property
    def time_embed_dim(self) -> int:
        return 4 * self.model_channels


class _StageAttention(Module):
    """The attention stack attached to one resnet block at one level."""

    def __init__(self, config: UNetConfig, level: int, channels: int):
        super().__init__(name=f"attn_level{level}")
        self.has_spatial = (
            config.attention_style != "none"
            and level in config.attention_levels
        )
        cross_levels = (
            config.cross_attention_levels
            if config.cross_attention_levels is not None
            else config.attention_levels
        )
        if self.has_spatial:
            if config.attention_style == "transformer":
                self.spatial = SpatialTransformer(
                    channels,
                    head_dim=config.head_dim,
                    text_dim=config.text_dim,
                    text_seq=config.text_seq,
                    depth=config.transformer_depth,
                )
            else:
                text_dim = (
                    config.text_dim if level in cross_levels else None
                )
                self.spatial = SpatialSelfAttention(
                    channels,
                    head_dim=config.head_dim,
                    text_dim=text_dim,
                    text_seq=config.text_seq,
                )
        self.has_temporal = (
            config.temporal and level in config.temporal_attention_levels
        )
        if self.has_temporal:
            self.temporal = TemporalAttentionLayer(
                channels, head_dim=config.head_dim
            )

    def forward(
        self, ctx: ExecutionContext, x: TensorSpec, frames: int
    ) -> TensorSpec:
        """x: (B*frames, C, H, W); frames=1 for image models."""
        if self.has_spatial:
            x = self.spatial(ctx, x)
        if self.has_temporal:
            batch_frames, channels, h, w = x.shape
            batch = batch_frames // frames
            video = x.with_shape(batch, channels, frames, h, w)
            self.temporal(ctx, video)
        return x


class UNet(Module):
    """A diffusion UNet; one forward pass is one denoising step."""

    def __init__(self, config: UNetConfig, name: str | None = None):
        super().__init__(name=name or "unet")
        self.config = config
        ch = config.model_channels
        self.time_embed = TimestepEmbedding(ch)
        self.conv_in = Conv2dLayer(config.in_channels, ch, name="conv_in")

        resnet_cls = ResnetBlock3D if config.temporal else ResnetBlock2D
        self.down_blocks: list[tuple[Module, _StageAttention]] = []
        self.downsamples: list[Downsample | None] = []
        in_ch = ch
        for level, mult in enumerate(config.channel_mult):
            out_ch = ch * mult
            for block in range(config.num_res_blocks):
                resnet = self.add_module(
                    f"down_{level}_{block}_resnet",
                    resnet_cls(in_ch, out_ch, config.time_embed_dim),
                )
                attention = self.add_module(
                    f"down_{level}_{block}_attn",
                    _StageAttention(config, level, out_ch),
                )
                self.down_blocks.append((resnet, attention))
                in_ch = out_ch
            if level < config.levels - 1:
                self.downsamples.append(
                    self.add_module(f"down_{level}_sample", Downsample(out_ch))
                )
            else:
                self.downsamples.append(None)

        mid_ch = ch * config.channel_mult[-1]
        self.mid_resnet1 = resnet_cls(mid_ch, mid_ch, config.time_embed_dim)
        self.mid_attention = _StageAttention(
            config, config.levels - 1, mid_ch
        )
        self.mid_resnet2 = resnet_cls(mid_ch, mid_ch, config.time_embed_dim)

        self.up_blocks: list[tuple[Module, _StageAttention, int, int]] = []
        self.upsamples: list[Upsample | None] = []
        for level in reversed(range(config.levels)):
            out_ch = ch * config.channel_mult[level]
            for block in range(config.num_res_blocks + 1):
                # Skip connections concatenate the matching down-path
                # activation, doubling the resnet input channels.
                merged_ch = in_ch + out_ch
                resnet = self.add_module(
                    f"up_{level}_{block}_resnet",
                    resnet_cls(merged_ch, out_ch, config.time_embed_dim),
                )
                attention = self.add_module(
                    f"up_{level}_{block}_attn",
                    _StageAttention(config, level, out_ch),
                )
                self.up_blocks.append((resnet, attention, merged_ch, out_ch))
                in_ch = out_ch
            if level > 0:
                self.upsamples.append(
                    self.add_module(f"up_{level}_sample", Upsample(out_ch))
                )
            else:
                self.upsamples.append(None)

        out_ch = ch * config.channel_mult[0]
        self.out_norm = GroupNormLayer(out_ch)
        self.conv_out = Conv2dLayer(
            out_ch, config.in_channels, name="conv_out"
        )

    def forward(
        self,
        ctx: ExecutionContext,
        latent: TensorSpec,
        frames: int = 1,
    ) -> TensorSpec:
        """latent: (B, in_channels, H, W); for TTV models B folds the
        frame dimension and ``frames`` declares it."""
        config = self.config
        if latent.rank != 4:
            raise ValueError(f"{self.name}: expected (B, C, H, W) latent")
        batch = latent.shape[0]
        time_embedding = self.time_embed(ctx, batch)
        x = self.conv_in(ctx, latent)

        block_index = 0
        for level in range(config.levels):
            for _ in range(config.num_res_blocks):
                resnet, attention = self.down_blocks[block_index]
                if config.temporal:
                    x = self._run_3d(ctx, resnet, x, frames, time_embedding)
                else:
                    x = resnet(ctx, x, time_embedding)
                x = attention(ctx, x, frames)
                block_index += 1
            downsample = self.downsamples[level]
            if downsample is not None:
                x = downsample(ctx, x)

        if config.temporal:
            x = self._run_3d(ctx, self.mid_resnet1, x, frames, time_embedding)
        else:
            x = self.mid_resnet1(ctx, x, time_embedding)
        x = self.mid_attention(ctx, x, frames)
        if config.temporal:
            x = self._run_3d(ctx, self.mid_resnet2, x, frames, time_embedding)
        else:
            x = self.mid_resnet2(ctx, x, time_embedding)

        block_index = 0
        upsample_index = 0
        for level in reversed(range(config.levels)):
            for _ in range(config.num_res_blocks + 1):
                resnet, attention, merged_ch, _ = self.up_blocks[block_index]
                merged = x.with_shape(x.shape[0], merged_ch, *x.shape[2:])
                if config.temporal:
                    x = self._run_3d(
                        ctx, resnet, merged, frames, time_embedding
                    )
                else:
                    x = resnet(ctx, merged, time_embedding)
                x = attention(ctx, x, frames)
                block_index += 1
            upsample = self.upsamples[upsample_index]
            upsample_index += 1
            if upsample is not None:
                x = upsample(ctx, x)

        self.out_norm(ctx, x)
        return self.conv_out(ctx, x)

    @staticmethod
    def _run_3d(
        ctx: ExecutionContext,
        resnet: ResnetBlock3D,
        x: TensorSpec,
        frames: int,
        time_embedding: TensorSpec,
    ) -> TensorSpec:
        batch_frames, channels, h, w = x.shape
        batch = batch_frames // frames
        video = x.with_shape(batch, channels, frames, h, w)
        out = resnet(ctx, video, time_embedding)
        _, out_ch, _, _, _ = out.shape
        return out.with_shape(batch * frames, out_ch, h, w)
