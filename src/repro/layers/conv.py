"""Convolution layers: the UNet's workhorse operators."""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import Conv2d, Conv3d, Resample
from repro.ir.tensor import TensorSpec


class Conv2dLayer(Module):
    """2D convolution on (B, C, H, W)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        name: str | None = None,
    ):
        super().__init__(name=name or f"conv{kernel}x{kernel}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride

    def own_param_count(self) -> int:
        return (
            self.in_channels * self.out_channels * self.kernel * self.kernel
            + self.out_channels
        )

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        batch, _, h, w = x.shape
        op = Conv2d(
            self.name,
            batch=batch,
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            h=h,
            w=w,
            kh=self.kernel,
            kw=self.kernel,
            stride=self.stride,
            dtype=x.dtype,
        )
        ctx.emit(op)
        return x.with_shape(batch, self.out_channels, op.out_h, op.out_w)


class Downsample(Module):
    """Stride-2 conv downsample between UNet stages."""

    def __init__(self, channels: int, name: str | None = None):
        super().__init__(name=name or "downsample")
        self.conv = Conv2dLayer(channels, channels, kernel=3, stride=2)

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        return self.conv(ctx, x)


class Upsample(Module):
    """Nearest-neighbour 2x upsample followed by a 3x3 conv."""

    def __init__(self, channels: int, name: str | None = None):
        super().__init__(name=name or "upsample")
        self.channels = channels
        self.conv = Conv2dLayer(channels, channels, kernel=3)

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        batch, channels, h, w = x.shape
        ctx.emit(
            Resample(
                "upsample2x",
                batch=batch,
                channels=channels,
                in_h=h,
                in_w=w,
                out_h=2 * h,
                out_w=2 * w,
                dtype=x.dtype,
            )
        )
        doubled = x.with_shape(batch, channels, 2 * h, 2 * w)
        return self.conv(ctx, doubled)


class Conv3dLayer(Module):
    """Full 3D convolution on (B, C, F, H, W)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: tuple[int, int, int] = (3, 3, 3),
        name: str | None = None,
    ):
        super().__init__(name=name or "conv3d")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kt, self.kh, self.kw = kernel

    def own_param_count(self) -> int:
        return (
            self.in_channels * self.out_channels * self.kt * self.kh * self.kw
            + self.out_channels
        )

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank != 5 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.in_channels}, F, H, W), "
                f"got {x.shape}"
            )
        batch, _, frames, h, w = x.shape
        ctx.emit(
            Conv3d(
                self.name,
                batch=batch,
                in_channels=self.in_channels,
                out_channels=self.out_channels,
                frames=frames,
                h=h,
                w=w,
                kt=self.kt,
                kh=self.kh,
                kw=self.kw,
                dtype=x.dtype,
            )
        )
        return x.with_shape(batch, self.out_channels, frames, h, w)


class TemporalConv(Module):
    """Pseudo-3D temporal convolution: (kt, 1, 1) kernel over frames.

    Make-A-Video-style models factorize 3D convs into a spatial 2D conv
    (applied per frame) plus this temporal 1D conv, which is what keeps
    their compute tractable (Section II-B).
    """

    def __init__(self, channels: int, kt: int = 3, name: str | None = None):
        super().__init__(name=name or "temporal_conv")
        self.conv = Conv3dLayer(
            channels, channels, kernel=(kt, 1, 1), name="temporal_conv1d"
        )

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        return self.conv(ctx, x)
