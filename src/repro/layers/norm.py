"""Normalization layers."""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import GroupNorm, LayerNorm
from repro.ir.tensor import TensorSpec


class LayerNormLayer(Module):
    """LayerNorm over the last dimension of a (..., dim) tensor."""

    def __init__(self, dim: int, name: str | None = None):
        super().__init__(name=name or "layer_norm")
        self.dim = dim

    def own_param_count(self) -> int:
        return 2 * self.dim

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected last dim {self.dim}, got {x.shape}"
            )
        ctx.emit(
            LayerNorm(
                self.name,
                rows=x.numel // self.dim,
                cols=self.dim,
                dtype=x.dtype,
            )
        )
        return x


class RMSNormLayer(Module):
    """RMSNorm (LLaMA): same traffic as LayerNorm, half the parameters."""

    def __init__(self, dim: int, name: str | None = None):
        super().__init__(name=name or "rms_norm")
        self.dim = dim

    def own_param_count(self) -> int:
        return self.dim

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        ctx.emit(
            LayerNorm(
                self.name,
                rows=x.numel // self.dim,
                cols=self.dim,
                dtype=x.dtype,
            )
        )
        return x


class GroupNormLayer(Module):
    """GroupNorm over (B, C, ...) activations — the UNet's normalizer.

    The paper singles GroupNorm out as 4-11% of diffusion-model time.
    """

    def __init__(self, channels: int, groups: int = 32, name: str | None = None):
        super().__init__(name=name or "group_norm")
        self.channels = channels
        self.groups = min(groups, channels)

    def own_param_count(self) -> int:
        return 2 * self.channels

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.rank < 2 or x.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.channels}, ...), got {x.shape}"
            )
        batch = x.shape[0]
        spatial = x.numel // (batch * self.channels)
        ctx.emit(
            GroupNorm(
                self.name,
                batch=batch,
                channels=self.channels,
                spatial=spatial,
                groups=self.groups,
                dtype=x.dtype,
            )
        )
        return x
