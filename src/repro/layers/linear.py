"""Linear layers and transformer feed-forward blocks."""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import Elementwise, Gemm, OpCategory
from repro.ir.tensor import TensorSpec


class Linear(Module):
    """Dense projection on the last tensor dimension.

    Lowers to a single GEMM with the weight as the reused B operand.
    The bias add is folded into the GEMM epilogue (as cuBLASLt does), so
    no separate kernel is emitted, but bias parameters are counted.

    ``category`` reassigns the GEMM's breakdown bucket: the paper's
    profiling framework attributes kernels to the *module* that launched
    them, so Q/K/V/output projections inside an attention module count
    as Attention time, not Linear time (visible in Figure 6, where
    attention remains 37-45% of LLM/transformer-TTI time even after
    Flash Attention).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        category: OpCategory | None = None,
        name: str | None = None,
    ):
        super().__init__(name=name or f"linear_{in_features}x{out_features}")
        if in_features <= 0 or out_features <= 0:
            raise ValueError("linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.bias = bias
        self.category = category

    def own_param_count(self) -> int:
        params = self.in_features * self.out_features
        if self.bias:
            params += self.out_features
        return params

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, "
                f"got {x.shape}"
            )
        rows = x.numel // self.in_features
        ctx.emit(
            Gemm(
                self.name,
                m=rows,
                n=self.out_features,
                k=self.in_features,
                b_is_weight=True,
                category_override=self.category,
                dtype=x.dtype,
            )
        )
        return x.with_shape(*x.shape[:-1], self.out_features)


class FeedForward(Module):
    """Transformer MLP: up-projection, activation, down-projection.

    ``gated=True`` models SwiGLU/GEGLU variants (LLaMA, SD's spatial
    transformer), which add a third projection and an extra elementwise
    multiply.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int | None = None,
        gated: bool = False,
        name: str | None = None,
    ):
        super().__init__(name=name or "feed_forward")
        self.dim = dim
        self.hidden_dim = hidden_dim or 4 * dim
        self.gated = gated
        self.up = Linear(dim, self.hidden_dim, name="up_proj")
        if gated:
            self.gate = Linear(dim, self.hidden_dim, name="gate_proj")
        self.down = Linear(self.hidden_dim, dim, name="down_proj")

    def forward(self, ctx: ExecutionContext, x: TensorSpec) -> TensorSpec:
        hidden = self.up(ctx, x)
        if self.gated:
            gate = self.gate(ctx, x)
            # Activation on the gate + multiply with the up branch.
            ctx.emit(
                Elementwise(
                    "glu", numel=gate.numel, inputs=2, flops_per_element=9.0
                )
            )
        else:
            ctx.emit(
                Elementwise(
                    "gelu", numel=hidden.numel, inputs=1, flops_per_element=8.0
                )
            )
        return self.down(ctx, hidden)
