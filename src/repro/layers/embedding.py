"""Embedding and conditioning layers."""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import Elementwise, Embedding
from repro.ir.tensor import TensorSpec
from repro.layers.linear import Linear


class TokenEmbedding(Module):
    """Vocabulary lookup producing (B, N, dim) activations."""

    def __init__(self, vocab: int, dim: int, name: str | None = None):
        super().__init__(name=name or "token_embedding")
        self.vocab = vocab
        self.dim = dim

    def own_param_count(self) -> int:
        return self.vocab * self.dim

    def forward(
        self, ctx: ExecutionContext, batch: int, seq: int
    ) -> TensorSpec:
        ctx.emit(
            Embedding(
                self.name, tokens=batch * seq, dim=self.dim, vocab=self.vocab
            )
        )
        return TensorSpec((batch, seq, self.dim))


class TimestepEmbedding(Module):
    """Sinusoidal timestep embedding + 2-layer MLP (diffusion models)."""

    def __init__(self, model_channels: int, name: str | None = None):
        super().__init__(name=name or "timestep_embedding")
        self.model_channels = model_channels
        self.fc1 = Linear(model_channels, 4 * model_channels)
        self.fc2 = Linear(4 * model_channels, 4 * model_channels)

    def forward(self, ctx: ExecutionContext, batch: int) -> TensorSpec:
        sinusoid = TensorSpec((batch, self.model_channels))
        hidden = self.fc1(ctx, sinusoid)
        ctx.emit(
            Elementwise(
                "silu", numel=hidden.numel, inputs=1, flops_per_element=5.0
            )
        )
        return self.fc2(ctx, hidden)
