"""Batch-size studies.

Figure 5's caption is conditional: "Transformer-based models tend to be
memory-bandwidth bound *at low batch sizes*" — and the paper notes low
batch is the appropriate TTI serving regime.  This module sweeps batch
size to expose the other side of that conditional: weight reuse across
the batch raises arithmetic intensity until the workload crosses the
ridge into the compute-bound region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.roofline import classify_bound
from repro.hw.spec import A100_80GB, GPUSpec
from repro.ir.context import AttentionImpl
from repro.kernels.base import DEFAULT_TUNING, TuningConstants
from repro.models.base import GenerativeModel
from repro.profiler.profiler import profile_model


@dataclass(frozen=True)
class BatchPoint:
    """One batch size in a serving sweep."""

    batch: int
    latency_s: float
    throughput_per_s: float
    traffic_intensity: float
    bound: str

    @property
    def latency_per_sample_s(self) -> float:
        return self.latency_s / self.batch


def sweep_batch_sizes(
    model: GenerativeModel,
    batches: list[int],
    *,
    gpu: GPUSpec = A100_80GB,
    attention_impl: AttentionImpl = AttentionImpl.FLASH,
    tuning: TuningConstants = DEFAULT_TUNING,
) -> list[BatchPoint]:
    """Profile one model across batch sizes."""
    if not batches:
        raise ValueError("need at least one batch size")
    points: list[BatchPoint] = []
    for batch in sorted(batches):
        if batch <= 0:
            raise ValueError("batch sizes must be positive")
        result = profile_model(
            model, gpu=gpu, attention_impl=attention_impl,
            tuning=tuning, batch=batch,
        )
        intensity = (
            result.trace.total_flops / result.trace.total_moved_bytes
        )
        points.append(
            BatchPoint(
                batch=batch,
                latency_s=result.total_time_s,
                throughput_per_s=batch / result.total_time_s,
                traffic_intensity=intensity,
                bound=classify_bound(gpu, intensity),
            )
        )
    return points


def batching_efficiency(points: list[BatchPoint]) -> float:
    """Throughput gain of the largest batch over batch-proportional
    scaling of the smallest (1.0 = batching is free)."""
    if len(points) < 2:
        raise ValueError("need at least two batch points")
    first, last = points[0], points[-1]
    ideal = first.throughput_per_s * last.batch / first.batch
    return last.throughput_per_s / ideal


def crossover_batch(points: list[BatchPoint]) -> int | None:
    """Smallest swept batch at which the model is compute-bound."""
    for point in points:
        if point.bound == "compute":
            return point.batch
    return None
