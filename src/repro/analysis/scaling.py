"""Scaling studies: image size (Figure 9) and frame count (Figure 13).

Figure 9 sweeps Stable Diffusion's output size and finds that once Flash
Attention is applied, *Convolution* execution time grows faster with
image size than Attention.  Figure 13 sweeps video frame count and finds
Temporal Attention FLOPs grow quadratically with frames while Spatial
Attention grows linearly, with a resolution-dependent crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import AttentionImpl, ExecutionContext
from repro.ir.ops import OpCategory
from repro.ir.tensor import TensorSpec
from repro.kernels.attention import attention_matmul_flops


@dataclass(frozen=True)
class ImageScalingPoint:
    """One image size in the Figure 9 sweep."""

    image_size: int
    attention_impl: str
    attention_time_s: float
    conv_time_s: float
    total_time_s: float


def sweep_image_sizes(
    sizes: list[int] | None = None,
    attention_impl: AttentionImpl = AttentionImpl.FLASH,
    denoising_steps: int = 1,
) -> list[ImageScalingPoint]:
    """Run the SD UNet at several output sizes; report op-class times.

    One denoising step per size is enough: all steps are identical, so
    ratios (the quantity Figure 9 plots) are unaffected.
    """
    from repro.models.stable_diffusion import (
        StableDiffusion,
        StableDiffusionConfig,
    )

    if sizes is None:
        sizes = [64, 128, 256, 512]
    points: list[ImageScalingPoint] = []
    for size in sizes:
        config = StableDiffusionConfig().at_image_size(size)
        model = StableDiffusion(config)
        ctx = ExecutionContext(attention_impl=attention_impl)
        latent = TensorSpec(
            (1, config.latent_channels, config.latent_size,
             config.latent_size)
        )
        for _ in range(denoising_steps):
            model.unet(ctx, latent)
        times = ctx.trace.time_by_category()
        points.append(
            ImageScalingPoint(
                image_size=size,
                attention_impl=attention_impl.value,
                attention_time_s=times.get(OpCategory.ATTENTION, 0.0),
                conv_time_s=times.get(OpCategory.CONV, 0.0),
                total_time_s=ctx.trace.total_time_s,
            )
        )
    return points


def scaling_rate(points: list[ImageScalingPoint], attribute: str) -> float:
    """Growth factor of one op class across the sweep (last over first)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    first = getattr(points[0], attribute)
    last = getattr(points[-1], attribute)
    if first <= 0:
        raise ValueError(f"{attribute} is zero at the smallest size")
    return last / first


@dataclass(frozen=True)
class FrameScalingPoint:
    """One frame count in the Figure 13 sweep."""

    frames: int
    spatial_flops: float
    temporal_flops: float


def sweep_frame_counts(
    frames: list[int] | None = None,
    *,
    spatial_grid: int = 16,
    channels: int = 1024,
    head_dim: int = 64,
    batch: int = 1,
) -> list[FrameScalingPoint]:
    """FLOPs of spatial vs temporal attention as frames grow.

    Per the paper's benchmark (based on TimeSformer-style space-time
    attention), FLOPs count only the two attention matmuls:

    * spatial: batch = B*F, sequence = grid^2  -> linear in F;
    * temporal: batch = B*grid^2, sequence = F -> quadratic in F.
    """
    if frames is None:
        frames = [4, 8, 16, 32, 64, 128, 256]
    heads = max(1, channels // head_dim)
    spatial_seq = spatial_grid * spatial_grid
    points: list[FrameScalingPoint] = []
    for count in frames:
        if count <= 0:
            raise ValueError("frame counts must be positive")
        spatial = attention_matmul_flops(
            batch * count, heads, spatial_seq, spatial_seq, head_dim
        )
        temporal = attention_matmul_flops(
            batch * spatial_seq, heads, count, count, head_dim
        )
        points.append(
            FrameScalingPoint(
                frames=count,
                spatial_flops=spatial,
                temporal_flops=temporal,
            )
        )
    return points


def crossover_frames(spatial_grid: int) -> int:
    """Frame count where temporal FLOPs overtake spatial FLOPs.

    Setting batch*F*S^2 = batch*S*F^2 gives F = S = grid^2: the
    crossover moves out quadratically with resolution, the paper's
    "increasing image resolution prolongs the cross-over point".
    """
    if spatial_grid <= 0:
        raise ValueError("grid must be positive")
    return spatial_grid * spatial_grid
