"""Long-video requirement projection (Section VI-B).

The paper closes with two trends — "(i) more frames, and (ii) higher
resolutions" — and argues temporal attention will dominate as video
generation matures from seconds-long clips toward movies.  This module
projects the attention FLOPs and similarity-matrix memory of a target
video (duration x fps x resolution) under the Figure 10 layouts, and
reports when temporal attention overtakes spatial and when its
similarity matrix stops fitting on a GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import A100_80GB, GPUSpec
from repro.kernels.attention import (
    attention_matmul_flops,
    similarity_matrix_bytes,
)


@dataclass(frozen=True)
class VideoWorkload:
    """A target generation: duration, frame rate, latent grid."""

    duration_s: float
    fps: int
    grid: int  # latent/token grid side
    channels: int = 1024
    head_dim: int = 64

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.fps <= 0 or self.grid <= 0:
            raise ValueError("video workload dims must be positive")

    @property
    def frames(self) -> int:
        return max(1, round(self.duration_s * self.fps))

    @property
    def pixels(self) -> int:
        return self.grid * self.grid

    @property
    def heads(self) -> int:
        return max(1, self.channels // self.head_dim)


@dataclass(frozen=True)
class VideoProjection:
    """Per-layer attention requirements for one workload."""

    workload: VideoWorkload
    spatial_flops: float
    temporal_flops: float
    temporal_similarity_bytes: float
    spatial_similarity_bytes: float

    @property
    def temporal_dominates(self) -> bool:
        return self.temporal_flops > self.spatial_flops

    def temporal_fits(
        self, gpu: GPUSpec = A100_80GB, budget_fraction: float = 0.25
    ) -> bool:
        """Whether one temporal similarity matrix fits an HBM budget."""
        return (
            self.temporal_similarity_bytes
            <= gpu.dram_capacity * budget_fraction
        )


def project(workload: VideoWorkload) -> VideoProjection:
    """Attention FLOPs/memory for one spatiotemporal layer pass."""
    frames = workload.frames
    pixels = workload.pixels
    heads = workload.heads
    spatial = attention_matmul_flops(
        frames, heads, pixels, pixels, workload.head_dim
    )
    temporal = attention_matmul_flops(
        pixels, heads, frames, frames, workload.head_dim
    )
    return VideoProjection(
        workload=workload,
        spatial_flops=spatial,
        temporal_flops=temporal,
        temporal_similarity_bytes=similarity_matrix_bytes(
            pixels, heads, frames, frames
        ),
        spatial_similarity_bytes=similarity_matrix_bytes(
            frames, heads, pixels, pixels
        ),
    )


def project_durations(
    durations_s: list[float],
    *,
    fps: int = 24,
    grid: int = 32,
) -> list[VideoProjection]:
    """Sweep target durations at fixed fps/resolution."""
    if not durations_s:
        raise ValueError("need at least one duration")
    return [
        project(VideoWorkload(duration_s=duration, fps=fps, grid=grid))
        for duration in sorted(durations_s)
    ]


def movie_generation_gap(
    clip: VideoWorkload, movie: VideoWorkload
) -> float:
    """Factor by which temporal-attention FLOPs grow clip -> movie.

    The paper's clips are 2-3 s; a movie scene is minutes.  Quadratic
    frame scaling makes this gap the headline argument for new TTV
    system designs.
    """
    return project(movie).temporal_flops / project(clip).temporal_flops
