"""Amdahl's-law decomposition of optimization speedups (Section IV-B).

The paper frames Flash Attention's end-to-end effect through Amdahl's
law: overall speedup is set by (i) the fraction of time in Attention and
(ii) the speedup of the Attention module itself.
"""

from __future__ import annotations


def amdahl_speedup(fraction: float, module_speedup: float) -> float:
    """End-to-end speedup when ``fraction`` of time speeds up by
    ``module_speedup``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if module_speedup <= 0:
        raise ValueError("module speedup must be positive")
    return 1.0 / (1.0 - fraction + fraction / module_speedup)


def max_speedup(fraction: float) -> float:
    """Amdahl ceiling: end-to-end speedup as module speedup -> inf."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    return 1.0 / (1.0 - fraction)


def required_module_speedup(fraction: float, target: float) -> float:
    """Module speedup needed to reach an end-to-end ``target``.

    Raises if the target exceeds the Amdahl ceiling for this fraction.
    """
    if target <= 1.0:
        return 1.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ceiling = float("inf") if fraction == 1.0 else max_speedup(fraction)
    if target >= ceiling:
        raise ValueError(
            f"target {target:.2f}x exceeds Amdahl ceiling {ceiling:.2f}x "
            f"for fraction {fraction:.2f}"
        )
    return fraction / (1.0 / target - (1.0 - fraction))


def implied_module_speedup(
    total_before_s: float,
    total_after_s: float,
    fraction_before: float,
) -> float:
    """Infer the module speedup from observed end-to-end times."""
    if min(total_before_s, total_after_s) <= 0:
        raise ValueError("times must be positive")
    saved = total_before_s - total_after_s
    module_before = fraction_before * total_before_s
    module_after = module_before - saved
    if module_after <= 0:
        raise ValueError(
            "observed saving exceeds the module's entire time; "
            "fraction_before is too small"
        )
    return module_before / module_after
