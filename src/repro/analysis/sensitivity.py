"""Sensitivity analysis over the cost model's tuning constants.

The ablation benchmarks sweep individual constants by hand; this module
generalizes that into a library facility: perturb any
:class:`~repro.kernels.base.TuningConstants` field, re-evaluate a
metric, and report elasticities.  It is how the repository demonstrates
which reproduced conclusions are *structural* (insensitive to
calibration) and which are *calibrated* (Figure 11's time ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable

from repro.kernels.base import DEFAULT_TUNING, TuningConstants

MetricFn = Callable[[TuningConstants], float]


def tunable_fields() -> list[str]:
    """Names of the float-valued tuning constants."""
    return [
        field.name
        for field in fields(TuningConstants)
        if isinstance(getattr(DEFAULT_TUNING, field.name), float)
    ]


@dataclass(frozen=True)
class SensitivityPoint:
    """Metric value at one perturbed constant value."""

    field_name: str
    value: float
    metric: float


@dataclass(frozen=True)
class SensitivityReport:
    """Elasticity of a metric with respect to one constant."""

    field_name: str
    baseline_value: float
    baseline_metric: float
    points: tuple[SensitivityPoint, ...]

    @property
    def max_relative_change(self) -> float:
        """Largest |metric/baseline - 1| across the sweep."""
        if self.baseline_metric == 0:
            raise ZeroDivisionError("baseline metric is zero")
        return max(
            abs(point.metric / self.baseline_metric - 1.0)
            for point in self.points
        )

    def is_structural(self, tolerance: float = 0.1) -> bool:
        """True when the metric moves less than ``tolerance`` across
        the whole sweep — the conclusion does not ride on this
        constant."""
        return self.max_relative_change <= tolerance


def sweep_constant(
    field_name: str,
    metric: MetricFn,
    *,
    scales: tuple[float, ...] = (0.5, 2.0),
    baseline: TuningConstants = DEFAULT_TUNING,
) -> SensitivityReport:
    """Evaluate ``metric`` with one constant scaled up and down.

    ``scales`` multiply the baseline value; integer-valued fields are
    rejected (tile sizes need dedicated sweeps).
    """
    if field_name not in tunable_fields():
        raise ValueError(
            f"{field_name!r} is not a float tuning constant; "
            f"tunable: {tunable_fields()}"
        )
    if not scales:
        raise ValueError("need at least one scale")
    base_value = getattr(baseline, field_name)
    baseline_metric = metric(baseline)
    points = []
    for scale in scales:
        if scale <= 0:
            raise ValueError("scales must be positive")
        value = base_value * scale
        perturbed = replace(baseline, **{field_name: value})
        points.append(
            SensitivityPoint(
                field_name=field_name,
                value=value,
                metric=metric(perturbed),
            )
        )
    return SensitivityReport(
        field_name=field_name,
        baseline_value=base_value,
        baseline_metric=baseline_metric,
        points=tuple(points),
    )


def classify_constants(
    metric: MetricFn,
    *,
    field_names: list[str] | None = None,
    tolerance: float = 0.1,
    scales: tuple[float, ...] = (0.5, 2.0),
) -> dict[str, SensitivityReport]:
    """Sweep several constants and report each one's elasticity."""
    names = field_names if field_names is not None else tunable_fields()
    return {
        name: sweep_constant(name, metric, scales=scales)
        for name in names
    }
