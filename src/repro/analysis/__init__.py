"""Analytical frameworks from the paper (Sections II, V, VI)."""

from repro.analysis.amdahl import (
    amdahl_speedup,
    implied_module_speedup,
    max_speedup,
    required_module_speedup,
)
from repro.analysis.attention_memory import (
    BYTES_PER_PARAM,
    MemoryScalingFit,
    cross_attention_matrix_shape,
    cumulative_unet_similarity_bytes,
    memory_scaling_exponent,
    self_attention_matrix_shape,
    self_attention_seq_len,
    similarity_matrix_bytes,
    stage_sequence_lengths,
)
from repro.analysis.fleet import (
    FleetSummary,
    TrainingJob,
    architecture_to_workload,
    summarize_fleet,
    synthesize_fleet,
)
from repro.analysis.video_trends import (
    VideoProjection,
    VideoWorkload,
    movie_generation_gap,
    project,
    project_durations,
)
from repro.analysis.pareto import (
    FIGURE4_DATASET,
    ModelQualityPoint,
    best_architecture_at_size,
    pareto_frontier,
    quality_per_parameter,
)
from repro.analysis.batching import (
    BatchPoint,
    batching_efficiency,
    crossover_batch,
    sweep_batch_sizes,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    SensitivityReport,
    classify_constants,
    sweep_constant,
    tunable_fields,
)
from repro.analysis.scaling import (
    FrameScalingPoint,
    ImageScalingPoint,
    crossover_frames,
    scaling_rate,
    sweep_frame_counts,
    sweep_image_sizes,
)

__all__ = [
    "BYTES_PER_PARAM",
    "BatchPoint",
    "VideoProjection",
    "VideoWorkload",
    "batching_efficiency",
    "crossover_batch",
    "movie_generation_gap",
    "project",
    "project_durations",
    "sweep_batch_sizes",
    "SensitivityPoint",
    "SensitivityReport",
    "classify_constants",
    "sweep_constant",
    "tunable_fields",
    "FIGURE4_DATASET",
    "FleetSummary",
    "FrameScalingPoint",
    "ImageScalingPoint",
    "MemoryScalingFit",
    "ModelQualityPoint",
    "TrainingJob",
    "amdahl_speedup",
    "architecture_to_workload",
    "best_architecture_at_size",
    "cross_attention_matrix_shape",
    "crossover_frames",
    "cumulative_unet_similarity_bytes",
    "implied_module_speedup",
    "max_speedup",
    "memory_scaling_exponent",
    "pareto_frontier",
    "quality_per_parameter",
    "required_module_speedup",
    "scaling_rate",
    "self_attention_matrix_shape",
    "self_attention_seq_len",
    "similarity_matrix_bytes",
    "stage_sequence_lengths",
    "summarize_fleet",
    "sweep_frame_counts",
    "sweep_image_sizes",
    "synthesize_fleet",
]
