"""Section V analytical framework: sequence length and similarity-matrix
memory as functions of image size.

These are the paper's closed-form expressions, implemented verbatim:

* Self-attention sequence length in a UNet is ``H_L * W_L`` (the
  flattened latent), so attention is an ``(H_L W_L) x (H_L W_L)`` matrix.
* Cross-attention attends the latent to the encoded text, giving an
  ``(H_L W_L) x text_encode`` matrix.
* Similarity-matrix memory for one attention call (FP16, one head,
  batch 1):   2 * (H_L W_L)^2 + 2 * (H_L W_L) * text_encode  bytes.
* Cumulative memory over a UNet pass sums that expression over the
  downsampling stages, with the latent shrinking by ``d`` per stage.

The punchline is the O(L^4) relationship between latent (or image) side
length and attention memory, which is why super-resolution networks
drop attention at high resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_PARAM = 2  # FP16, as the paper assumes.


def self_attention_seq_len(h_latent: int, w_latent: int) -> int:
    """Sequence length of a UNet self-attention call."""
    if h_latent <= 0 or w_latent <= 0:
        raise ValueError("latent dims must be positive")
    return h_latent * w_latent


def self_attention_matrix_shape(
    h_latent: int, w_latent: int
) -> tuple[int, int]:
    """(H_L * W_L) x (H_L * W_L), per the paper."""
    seq = self_attention_seq_len(h_latent, w_latent)
    return (seq, seq)


def cross_attention_matrix_shape(
    h_latent: int, w_latent: int, text_encode: int
) -> tuple[int, int]:
    """(H_L * W_L) x text_encode, per the paper."""
    if text_encode <= 0:
        raise ValueError("text encoding length must be positive")
    return (self_attention_seq_len(h_latent, w_latent), text_encode)


def similarity_matrix_bytes(
    h_latent: int, w_latent: int, text_encode: int
) -> float:
    """Memory for one (self + cross) attention call's similarity matrices.

    The paper's expression:  2 * H_L W_L * [H_L W_L + text_encode]
    (FP16 bytes, one head, batch 1).
    """
    pixels = self_attention_seq_len(h_latent, w_latent)
    if text_encode < 0:
        raise ValueError("text encoding length must be non-negative")
    return float(BYTES_PER_PARAM * pixels * (pixels + text_encode))


def cumulative_unet_similarity_bytes(
    h_latent: int,
    w_latent: int,
    text_encode: int,
    downsample_factor: int = 2,
    unet_depth: int = 3,
) -> float:
    """The paper's cumulative-memory formula over a UNet pass.

    Sums the similarity-matrix expression over the ``unet_depth``
    downsampling stages (each visited twice: once down, once up — the
    leading factor of 2), plus the bottleneck stage visited once:

        2 * sum_{n=0}^{depth-1} (HW / d^n) [ HW / d^n + text ]
          +     (HW / d^depth) [ HW / d^depth + text ]

    where the per-stage area shrinks by ``d`` per stage (d is the *area*
    reduction per stage; a stride-2 conv gives d = 4).
    """
    if downsample_factor < 1:
        raise ValueError("downsample factor must be >= 1")
    if unet_depth < 0:
        raise ValueError("unet depth must be non-negative")
    pixels = self_attention_seq_len(h_latent, w_latent)
    total = 0.0
    for stage in range(unet_depth):
        stage_pixels = pixels / downsample_factor**stage
        total += 2.0 * BYTES_PER_PARAM * stage_pixels * (
            stage_pixels + text_encode
        )
    bottleneck = pixels / downsample_factor**unet_depth
    total += BYTES_PER_PARAM * bottleneck * (bottleneck + text_encode)
    return total


def stage_sequence_lengths(
    h_latent: int,
    w_latent: int,
    downsample_factor: int = 2,
    unet_depth: int = 3,
) -> list[int]:
    """Self-attention sequence length at each UNet stage, top to bottom."""
    pixels = self_attention_seq_len(h_latent, w_latent)
    return [
        max(1, pixels // downsample_factor**stage)
        for stage in range(unet_depth + 1)
    ]


@dataclass(frozen=True)
class MemoryScalingFit:
    """Power-law fit of memory vs latent side length."""

    exponent: float
    sizes: tuple[int, ...]
    memories: tuple[float, ...]


def memory_scaling_exponent(
    sizes: list[int], text_encode: int = 0
) -> MemoryScalingFit:
    """Fit memory ~ L^k over a sweep of latent side lengths.

    With no text term the paper's expression is exactly quartic (k = 4);
    the text term softens small sizes.  Least-squares in log space.
    """
    import math

    if len(sizes) < 2:
        raise ValueError("need at least two sizes to fit an exponent")
    memories = [
        similarity_matrix_bytes(size, size, text_encode) for size in sizes
    ]
    logs_x = [math.log(size) for size in sizes]
    logs_y = [math.log(memory) for memory in memories]
    n = len(sizes)
    mean_x = sum(logs_x) / n
    mean_y = sum(logs_y) / n
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(logs_x, logs_y)
    ) / sum((x - mean_x) ** 2 for x in logs_x)
    return MemoryScalingFit(
        exponent=slope, sizes=tuple(sizes), memories=tuple(memories)
    )
