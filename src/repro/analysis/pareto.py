"""Model-quality Pareto analysis (Figure 4).

The paper plots published FID-on-COCO scores against trainable
parameters for the open TTI models and reads off a Pareto-optimal
frontier containing Imagen (pixel diffusion), Stable Diffusion (latent
diffusion) and Parti (transformer).  The FID/parameter values below are
the previously reported numbers the paper itself uses; the frontier
computation is ours.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelQualityPoint:
    """One model on the quality/size plane (lower FID is better)."""

    name: str
    fid: float
    parameters: float
    architecture: str  # "diffusion" or "transformer"

    def __post_init__(self) -> None:
        if self.fid <= 0 or self.parameters <= 0:
            raise ValueError("FID and parameters must be positive")


# Published FID-10K/30K on COCO and parameter counts, as cited in the
# paper's Figure 4 (models keyed by their common names).
FIGURE4_DATASET: tuple[ModelQualityPoint, ...] = (
    ModelQualityPoint("Imagen", 7.27, 3.0e9, "diffusion"),
    ModelQualityPoint("StableDiffusion", 12.63, 1.45e9, "diffusion"),
    ModelQualityPoint("GLIDE", 12.24, 5.0e9, "diffusion"),
    ModelQualityPoint("DALLE-2", 10.39, 5.5e9, "diffusion"),
    ModelQualityPoint("VQ-Diffusion", 13.86, 0.37e9, "diffusion"),
    ModelQualityPoint("ERNIE-ViLG", 6.75, 24e9, "diffusion"),
    ModelQualityPoint("Parti", 7.23, 20e9, "transformer"),
    ModelQualityPoint("Muse", 7.88, 3.0e9, "transformer"),
    ModelQualityPoint("Make-A-Scene", 11.84, 4.0e9, "transformer"),
    ModelQualityPoint("DALLE", 17.89, 12e9, "transformer"),
    ModelQualityPoint("CogView", 27.1, 4.0e9, "transformer"),
    ModelQualityPoint("CogView2", 24.0, 6.0e9, "transformer"),
    ModelQualityPoint("CM3Leon", 10.82, 7.0e9, "transformer"),
    ModelQualityPoint("RA-CM3", 15.7, 2.7e9, "transformer"),
    ModelQualityPoint("NUWA", 12.9, 0.87e9, "transformer"),
)


def pareto_frontier(
    points: tuple[ModelQualityPoint, ...] | list[ModelQualityPoint],
) -> list[ModelQualityPoint]:
    """Points not dominated in (FID, parameters) — both to minimize.

    A point is dominated when another has both lower-or-equal FID and
    lower-or-equal parameters (strictly better in at least one).
    Returned sorted by parameter count.
    """
    frontier = [
        candidate
        for candidate in points
        if not any(
            (other.fid <= candidate.fid
             and other.parameters <= candidate.parameters
             and (other.fid < candidate.fid
                  or other.parameters < candidate.parameters))
            for other in points
        )
    ]
    return sorted(frontier, key=lambda point: point.parameters)


def quality_per_parameter(point: ModelQualityPoint) -> float:
    """Inverse-FID per billion parameters: a crude efficiency score."""
    return (1.0 / point.fid) / (point.parameters / 1e9)


def best_architecture_at_size(
    points: tuple[ModelQualityPoint, ...] | list[ModelQualityPoint],
    max_parameters: float,
) -> ModelQualityPoint:
    """Lowest-FID model within a parameter budget.

    The paper's observation: under ~5B parameters, diffusion wins;
    transformers buy the last FID points with 4x the parameters.
    """
    eligible = [p for p in points if p.parameters <= max_parameters]
    if not eligible:
        raise ValueError(f"no models under {max_parameters:g} parameters")
    return min(eligible, key=lambda point: point.fid)
