"""Fleet-level workload model (Figure 1).

The paper opens with a fleet-wide observation from industry datacenters:
TTI/TTV models are an order of magnitude smaller than LLMs, yet train on
a comparable number of GPUs — 14x more GPUs *per model parameter* — and
run at ~1.4x (roughly 10 percentage points) higher average memory
utilization.  The underlying per-job data is proprietary, so this module
generates a synthetic fleet whose aggregates match the published ratios
(see DESIGN.md, substitutions) and exposes the analysis code path that
would compute them from real job telemetry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean

from repro.models.base import ModelArchitecture


@dataclass(frozen=True)
class TrainingJob:
    """One training job's telemetry snapshot."""

    job_id: str
    workload: str  # "llm" | "tti" | "ttv"
    model_parameters: float
    gpus: int
    memory_utilization: float  # fraction of HBM in use, averaged
    gpu_hours: float

    def __post_init__(self) -> None:
        if self.model_parameters <= 0 or self.gpus <= 0:
            raise ValueError("jobs need positive parameters and GPUs")
        if not 0.0 < self.memory_utilization <= 1.0:
            raise ValueError("memory utilization must be in (0, 1]")

    @property
    def gpus_per_parameter(self) -> float:
        return self.gpus / self.model_parameters


@dataclass(frozen=True)
class FleetSummary:
    """Aggregates the paper reports in Figure 1."""

    llm_gpus_per_param: float
    tti_gpus_per_param: float
    llm_memory_utilization: float
    tti_memory_utilization: float

    @property
    def gpus_per_param_ratio(self) -> float:
        """TTI over LLM GPUs-per-parameter (paper: ~14x)."""
        return self.tti_gpus_per_param / self.llm_gpus_per_param

    @property
    def memory_utilization_ratio(self) -> float:
        """TTI over LLM memory utilization (paper: ~1.4x)."""
        return self.tti_memory_utilization / self.llm_memory_utilization


# Operating points used to synthesize jobs: (parameter range, GPU range,
# memory-utilization range).  Chosen so the aggregate ratios land on the
# published Figure 1 values.
_JOB_PROFILES: dict[str, tuple[tuple[float, float], tuple[int, int], tuple[float, float]]] = {
    "llm": ((13e9, 175e9), (1024, 4096), (0.55, 0.75)),
    "tti": ((0.8e9, 4e9), (768, 2048), (0.82, 0.98)),
    "ttv": ((1.5e9, 6e9), (768, 2048), (0.80, 0.96)),
}


def synthesize_fleet(
    num_jobs: int = 120, seed: int = 2024
) -> list[TrainingJob]:
    """Generate a deterministic synthetic fleet.

    Roughly half the jobs are LLMs and half are TTI/TTV, mirroring the
    mixed generative fleet the paper describes.
    """
    if num_jobs < 4:
        raise ValueError("need at least 4 jobs for a meaningful fleet")
    rng = random.Random(seed)
    jobs: list[TrainingJob] = []
    kinds = ["llm", "tti", "ttv"]
    weights = [0.5, 0.35, 0.15]
    for index in range(num_jobs):
        kind = rng.choices(kinds, weights)[0]
        (p_lo, p_hi), (g_lo, g_hi), (m_lo, m_hi) = _JOB_PROFILES[kind]
        params = rng.uniform(p_lo, p_hi)
        gpus = rng.randint(g_lo, g_hi)
        jobs.append(
            TrainingJob(
                job_id=f"job-{index:04d}",
                workload=kind,
                model_parameters=params,
                gpus=gpus,
                memory_utilization=rng.uniform(m_lo, m_hi),
                gpu_hours=gpus * rng.uniform(24.0, 720.0),
            )
        )
    return jobs


def summarize_fleet(jobs: list[TrainingJob]) -> FleetSummary:
    """Compute the Figure 1 aggregates from per-job telemetry."""
    llm = [job for job in jobs if job.workload == "llm"]
    image_video = [job for job in jobs if job.workload in ("tti", "ttv")]
    if not llm or not image_video:
        raise ValueError("fleet must contain both LLM and TTI/TTV jobs")
    return FleetSummary(
        llm_gpus_per_param=mean(job.gpus_per_parameter for job in llm),
        tti_gpus_per_param=mean(
            job.gpus_per_parameter for job in image_video
        ),
        llm_memory_utilization=mean(job.memory_utilization for job in llm),
        tti_memory_utilization=mean(
            job.memory_utilization for job in image_video
        ),
    )


def architecture_to_workload(architecture: ModelArchitecture) -> str:
    """Map a model-suite architecture onto a fleet workload class."""
    if architecture is ModelArchitecture.LLM:
        return "llm"
    if architecture.is_video:
        return "ttv"
    return "tti"
