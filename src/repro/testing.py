"""Shared helpers behind the test and benchmark fixtures.

``tests/conftest.py`` and ``benchmarks/conftest.py`` historically each
carried their own copies of the suite-warming logic and experiment
assertions; both now delegate here so the two harnesses cannot drift
(the benchmark suite warming a different cache than the tests pin, or
the claim assertion diverging between them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments.suite_cache import all_profiles, model_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResult
    from repro.models.base import GenerativeModel
    from repro.profiler.profiler import ProfileResult


def suite_profile_map() -> "dict[str, tuple[ProfileResult, ProfileResult]]":
    """{name: (baseline, flash)} profiles, via the process-wide cache."""
    return all_profiles()


def suite_model_map() -> "dict[str, GenerativeModel]":
    """{name: model} singletons matching the cached profiles."""
    from repro.models.registry import suite_names

    return {name: model_instance(name) for name in suite_names()}


def assert_claims_hold(result: "ExperimentResult") -> None:
    """Fail with the text of every claim that does not hold."""
    assert result.all_claims_hold, (
        f"{result.experiment_id}: "
        + "; ".join(
            claim.claim for claim in result.claims if not claim.holds
        )
    )


def run_and_render(benchmark, experiment_run) -> "ExperimentResult":
    """Benchmark an experiment once, print its report, check claims.

    ``benchmark`` is the pytest-benchmark fixture; one round/iteration
    because experiments are deterministic and their cost is what is
    being measured, not their variance.
    """
    result = benchmark.pedantic(experiment_run, rounds=1, iterations=1)
    print()
    print(result.render())
    assert_claims_hold(result)
    return result
