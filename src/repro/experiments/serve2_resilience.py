"""serve2: overload protection and graceful degradation.

serve1 establishes that TTI/TTV serving is a systems problem; this
experiment asks what a deployment does when offered load exceeds
capacity anyway.  The same SD 2.1 / Muse flash service times are
driven through the fleet simulator with flash-crowd bursts at ~1.9x
capacity plus a generated crash/straggler schedule, under five
protection configurations:

1. **unprotected** — the serve1 fleet, no resilience mechanisms;
2. **shed-only** — admission control (queue-depth cap + per-model
   wait budgets) rejects requests it cannot serve in time;
3. **hedge-only** — a duplicate attempt is launched on the
   least-loaded other server once a request outlives the running p95;
4. **brownout-only** — a two-rung degradation ladder re-profiles the
   *actual model graphs* at reduced step counts (SD 50 -> 30 -> 20
   denoising steps, Muse 24 -> 16 -> 10 decode steps) and serves
   degraded requests while backlog persists;
5. **all-on** — all of the above plus a per-server circuit breaker
   that quarantines crash-looping or straggling servers.

Rung latencies are not guessed scalars: each rung's service time comes
from :func:`repro.profiler.profiler.profile_model` on the re-configured
graph, so the brownout trade-off inherits the paper's cost model.  The
checked claims pin the core resilience story: every mechanism conserves
requests (offered = completed + failed + shed), and the all-on fleet
strictly improves *both* p99 and goodput over the unprotected one.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.ir.context import AttentionImpl
from repro.models.muse import Muse, MuseConfig
from repro.models.stable_diffusion import (
    StableDiffusion,
    StableDiffusionConfig,
)
from repro.profiler.profiler import profile_model
from repro.serving.faults import RetryPolicy, generate_faults
from repro.serving.fleet import (
    FleetReport,
    PoolSpec,
    affine_batch_latency,
    simulate_fleet,
)
from repro.serving.resilience import (
    RESILIENCE_OFF,
    AdmissionConfig,
    BrownoutConfig,
    CircuitBreakerConfig,
    DegradedRung,
    HedgeConfig,
    ResilienceConfig,
)
from repro.serving.slo import SloReport, percentile, slo_report
from repro.serving.workload import (
    WorkloadMix,
    bursty_rate,
    generate_requests_pattern,
)

EXPERIMENT_ID = "serve2"

MODELS = ("stable_diffusion", "muse")
SHARES = {"stable_diffusion": 0.7, "muse": 0.3}
SEED = 17
FAULT_SEED = 23
DURATION_S = 600.0
SERVERS = 4
BASE_LOAD = 0.75
BURST_LOAD = 1.9
BURSTS = ((100.0, 80.0), (350.0, 80.0))
# Degradation ladder step counts: nominal -> rung 1 -> rung 2.
SD_STEPS = (50, 30, 20)
MUSE_STEPS = (24, 16, 10)
RETRY = RetryPolicy(
    max_retries=2, backoff_s=1.0, multiplier=2.0, max_backoff_s=8.0,
    jitter=0.5,
)


def _flash_service_times() -> dict[str, float]:
    profiles = all_profiles()
    return {name: profiles[name][1].total_time_s for name in MODELS}


def _degraded_service_times(rung: int) -> dict[str, float]:
    """Flash service times of the graphs re-configured for ``rung``.

    The rung re-prices the actual pipelines — fewer UNet invocations
    for SD, fewer parallel-decode steps for Muse — through the same
    profiler every other experiment uses.
    """
    sd = StableDiffusion(
        replace(StableDiffusionConfig(), denoising_steps=SD_STEPS[rung])
    )
    muse = Muse(replace(MuseConfig(), base_steps=MUSE_STEPS[rung]))
    return {
        model.name: profile_model(
            model, attention_impl=AttentionImpl.FLASH
        ).total_time_s
        for model in (sd, muse)
    }


def _rung(rung: int, service_s: dict[str, float]) -> DegradedRung:
    # Quality proxy: mean fraction of the nominal step count kept —
    # the knob the ladder actually turns (fewer denoising / decode
    # steps is the standard quality-for-latency trade in diffusion
    # serving).
    quality = 0.5 * (
        SD_STEPS[rung] / SD_STEPS[0] + MUSE_STEPS[rung] / MUSE_STEPS[0]
    )
    return DegradedRung(
        label=f"sd{SD_STEPS[rung]}/muse{MUSE_STEPS[rung]}",
        latency_fns={
            model: affine_batch_latency(time, marginal_fraction=0.7)
            for model, time in service_s.items()
        },
        quality=quality,
    )


def _pool(service_s: dict[str, float]) -> PoolSpec:
    return PoolSpec(
        name="a100",
        machine="dgx-a100-80g",
        servers=SERVERS,
        latency_fns={
            model: affine_batch_latency(time, marginal_fraction=0.7)
            for model, time in service_s.items()
        },
        max_batch=8,
    )


def _requests(service_s: dict[str, float]):
    mix = WorkloadMix(shares=dict(SHARES), service_s=dict(service_s))
    capacity = SERVERS * mix.saturation_rate()
    rate_fn = bursty_rate(
        BASE_LOAD * capacity,
        burst_rate=BURST_LOAD * capacity,
        bursts=BURSTS,
    )
    return generate_requests_pattern(
        mix, rate_fn, peak_rate=BURST_LOAD * capacity,
        duration_s=DURATION_S, seed=SEED,
    )


def _configs(
    deadlines: dict[str, float], brownout: BrownoutConfig
) -> list[tuple[str, ResilienceConfig]]:
    admission = AdmissionConfig(
        max_queue_depth=64,
        wait_budget_s={
            model: 2.0 * deadline
            for model, deadline in deadlines.items()
        },
    )
    hedge = HedgeConfig(quantile=95.0, min_samples=30)
    breaker = CircuitBreakerConfig(
        failure_threshold=3, window_s=60.0, cooldown_s=30.0,
        slow_factor=2.5,
    )
    return [
        ("unprotected", RESILIENCE_OFF),
        ("shed-only", ResilienceConfig(admission=admission)),
        ("hedge-only", ResilienceConfig(hedge=hedge)),
        ("brownout-only", ResilienceConfig(brownout=brownout)),
        (
            "all-on",
            ResilienceConfig(
                admission=admission, breaker=breaker, hedge=hedge,
                brownout=brownout,
            ),
        ),
    ]


def _run_scenarios() -> list[tuple[str, FleetReport, SloReport]]:
    service = _flash_service_times()
    deadlines = {name: 3.0 * service[name] for name in MODELS}
    brownout = BrownoutConfig(
        rungs=(
            _rung(1, _degraded_service_times(1)),
            _rung(2, _degraded_service_times(2)),
        ),
        step_down_backlog=4.0,
        step_up_backlog=1.0,
        check_interval_s=5.0,
        dwell_s=10.0,
    )
    requests = _requests(service)
    faults = generate_faults(
        servers=SERVERS, duration_s=DURATION_S, seed=FAULT_SEED,
        crash_rate_per_hour=6.0, mean_downtime_s=60.0,
        straggler_rate_per_hour=6.0, mean_straggler_s=90.0,
        slowdown=4.0,
    )
    scenarios = []
    for label, config in _configs(deadlines, brownout):
        report = simulate_fleet(
            requests, [_pool(service)], retry=RETRY, faults=faults,
            resilience=config,
        )
        scenarios.append((label, report, slo_report(report, deadlines)))
    return scenarios


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    scenarios = _run_scenarios()
    rows: list[list[object]] = []
    p99: dict[str, float] = {}
    by_label: dict[str, tuple[FleetReport, SloReport]] = {}
    for label, report, slo in scenarios:
        by_label[label] = (report, slo)
        latencies = [record.latency_s for record in report.completed]
        p99[label] = percentile(latencies, 99.0)
        stats = report.resilience
        rows.append(
            [
                label,
                f"{percentile(latencies, 50.0):.2f}",
                f"{percentile(latencies, 95.0):.2f}",
                f"{p99[label]:.2f}",
                f"{slo.goodput * 100:.1f}%",
                f"{slo.burn_rate(0.9):.1f}x",
                len(report.shed),
                len(report.failed),
                f"{stats.hedge_wins}/{stats.hedges_launched}",
                stats.degraded_completions,
                f"{slo.quality_debt:.1f}",
            ]
        )

    base_report, base_slo = by_label["unprotected"]
    all_report, all_slo = by_label["all-on"]
    conservation_ok = all(
        report.offered
        == len(report.completed) + len(report.failed) + len(report.shed)
        for _, report, _ in scenarios
    )
    rung_ok = all(
        sum(report.resilience.rung_completions) == len(report.completed)
        for _, report, _ in scenarios
    )
    brown_report, _ = by_label["brownout-only"]
    hedge_report, _ = by_label["hedge-only"]
    shed_slo = by_label["shed-only"][1]
    claims = [
        ClaimCheck(
            claim="all protections on strictly improves both p99 and "
            "goodput over the unprotected fleet under the same "
            "overload and faults",
            paper="graceful degradation as a serving requirement",
            measured=(
                f"p99 {p99['unprotected']:.1f}s -> {p99['all-on']:.1f}s, "
                f"goodput {base_slo.goodput * 100:.1f}% -> "
                f"{all_slo.goodput * 100:.1f}%"
            ),
            holds=(
                p99["all-on"] < p99["unprotected"]
                and all_slo.goodput > base_slo.goodput
            ),
        ),
        ClaimCheck(
            claim="every mechanism conserves requests: offered = "
            "completed + failed + shed, and per-rung counts sum to "
            "the completion count",
            paper="simulator invariant (no lost or invented requests)",
            measured=(
                f"conservation {'holds' if conservation_ok else 'FAILS'} "
                f"across {len(scenarios)} scenarios; rung sums "
                f"{'hold' if rung_ok else 'FAIL'}"
            ),
            holds=conservation_ok and rung_ok,
        ),
        ClaimCheck(
            claim="admission control trades completions for tail "
            "latency: shedding cuts p99 below unprotected",
            paper="load shedding bounds queueing delay",
            measured=(
                f"p99 {p99['unprotected']:.1f}s -> "
                f"{p99['shed-only']:.1f}s with "
                f"{shed_slo.shed} requests shed"
            ),
            holds=(
                p99["shed-only"] < p99["unprotected"]
                and shed_slo.shed > 0
            ),
        ),
        ClaimCheck(
            claim="hedging alone cannot create capacity — under "
            "sustained overload nearly every hedge loses — but once "
            "shedding and brownout keep queues short, hedges win "
            "races against slow servers",
            paper="tail-tolerant hedging helps tails, not throughput",
            measured=(
                f"hedge-only {hedge_report.resilience.hedge_wins}/"
                f"{hedge_report.resilience.hedges_launched} wins; "
                f"all-on {all_report.resilience.hedge_wins}/"
                f"{all_report.resilience.hedges_launched} "
                f"({hedge_report.resilience.hedge_wasted_s:.0f}s vs "
                f"{all_report.resilience.hedge_wasted_s:.0f}s wasted)"
            ),
            holds=(
                hedge_report.resilience.hedges_launched > 0
                and hedge_report.resilience.hedge_wins
                < 0.05 * hedge_report.resilience.hedges_launched
                and all_report.resilience.hedge_wins
                > hedge_report.resilience.hedge_wins
            ),
        ),
        ClaimCheck(
            claim="the brownout ladder serves degraded-but-on-time "
            "requests during bursts and steps back up after them",
            paper="quality-for-latency degradation (fewer "
            "denoising/decode steps)",
            measured=(
                f"{brown_report.resilience.degraded_completions} "
                f"degraded completions, quality debt "
                f"{by_label['brownout-only'][1].quality_debt:.1f}, "
                f"{brown_report.resilience.rung_changes} rung changes"
            ),
            holds=(
                brown_report.resilience.degraded_completions > 0
                and brown_report.resilience.rung_changes >= 2
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Overload protection: shedding, hedging, circuit "
        "breaking and brownout under flash-crowd bursts",
        headers=[
            "scenario", "p50 s", "p95 s", "p99 s", "goodput",
            "burn@0.9", "shed", "failed", "hedge w/l", "degraded",
            "debt",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Bursts run at 1.9x fleet capacity; faults are a seeded "
            "crash+straggler schedule shared by all scenarios.",
            "Brownout rung latencies are profiled from the "
            "re-configured SD/Muse graphs (not scaled), qualities are "
            "the kept fraction of nominal step counts.",
            "burn@0.9 is the error-budget burn rate against a 90% "
            "goodput objective.",
        ],
    )
