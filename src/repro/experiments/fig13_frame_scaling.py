"""Figure 13: attention FLOPs vs frame count.

Spatial attention FLOPs grow linearly with frames (frames fold into the
batch); temporal attention FLOPs grow quadratically (frames are the
sequence).  The crossover sits at F = grid^2 and moves out with
resolution.
"""

from __future__ import annotations

from repro.analysis.scaling import crossover_frames, sweep_frame_counts
from repro.experiments.base import ClaimCheck, ExperimentResult

EXPERIMENT_ID = "fig13"

FRAME_COUNTS = [4, 8, 16, 32, 64, 128, 256, 512]
GRIDS = (8, 16)


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    rows: list[list[object]] = []
    sweeps = {
        grid: sweep_frame_counts(FRAME_COUNTS, spatial_grid=grid)
        for grid in GRIDS
    }
    for grid, points in sweeps.items():
        for point in points:
            rows.append(
                [
                    f"{grid}x{grid}",
                    point.frames,
                    f"{point.spatial_flops/1e9:.2f}",
                    f"{point.temporal_flops/1e9:.2f}",
                    "temporal"
                    if point.temporal_flops > point.spatial_flops
                    else "spatial",
                ]
            )

    def growth(points, attribute):
        doubled = [
            getattr(b, attribute) / getattr(a, attribute)
            for a, b in zip(points, points[1:])
        ]
        return sum(doubled) / len(doubled)

    small = sweeps[GRIDS[0]]
    spatial_growth = growth(small, "spatial_flops")
    temporal_growth = growth(small, "temporal_flops")

    def measured_crossover(points):
        for point in points:
            if point.temporal_flops > point.spatial_flops:
                return point.frames
        return None

    crossover_small = measured_crossover(sweeps[GRIDS[0]])
    crossover_large = measured_crossover(sweeps[GRIDS[1]])
    predicted_small = crossover_frames(GRIDS[0])
    claims = [
        ClaimCheck(
            claim="spatial attention FLOPs scale linearly with frames",
            paper="linear",
            measured=f"x{spatial_growth:.2f} per frame doubling",
            holds=1.9 <= spatial_growth <= 2.1,
        ),
        ClaimCheck(
            claim="temporal attention FLOPs scale quadratically "
            "('exponentially' in the paper's phrasing)",
            paper="super-linear",
            measured=f"x{temporal_growth:.2f} per frame doubling",
            holds=3.8 <= temporal_growth <= 4.2,
        ),
        ClaimCheck(
            claim="temporal is cheaper at small frame counts but "
            "overtakes spatial as frames grow",
            paper="crossover exists",
            measured=(
                f"first temporal-dominant point at {crossover_small} "
                f"frames (predicted {predicted_small})"
            ),
            holds=crossover_small is not None
            and crossover_small >= predicted_small,
        ),
        ClaimCheck(
            claim="higher resolution prolongs the crossover point",
            paper="crossover moves out with resolution",
            measured=(
                f"{GRIDS[0]}x{GRIDS[0]}: {crossover_small} frames; "
                f"{GRIDS[1]}x{GRIDS[1]}: "
                f"{crossover_large or 'beyond sweep'}"
            ),
            holds=crossover_large is None
            or crossover_large > crossover_small,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Spatial vs temporal attention FLOPs as frame count grows",
        headers=["grid", "frames", "spatial GFLOPs", "temporal GFLOPs",
                 "dominant"],
        rows=rows,
        claims=claims,
    )
