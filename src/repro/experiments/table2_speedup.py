"""Table II: end-to-end Flash-Attention speedup across the suite."""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.models.registry import DISPLAY_NAMES
from repro.profiler.breakdown import speedup_report

EXPERIMENT_ID = "table2"

PAPER_SPEEDUPS = {
    "llama": 1.52,
    "imagen": 1.22,
    "stable_diffusion": 1.67,
    "muse": 1.11,
    "parti": 1.17,
    "prod_image": 1.04,
    "make_a_video": 1.06,
    "phenaki": 1.15,
}


def measured_speedups() -> dict[str, float]:
    """End-to-end Flash-Attention speedup per suite model."""
    return {
        name: speedup_report(baseline.trace, flash.trace).end_to_end_speedup
        for name, (baseline, flash) in all_profiles().items()
    }


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    measured = measured_speedups()
    rows = [
        [
            DISPLAY_NAMES[name],
            f"{PAPER_SPEEDUPS[name]:.2f}x",
            f"{measured[name]:.2f}x",
            f"{(measured[name] - PAPER_SPEEDUPS[name]):+.2f}",
        ]
        for name in measured
    ]
    absolute_close = all(
        abs(measured[name] - PAPER_SPEEDUPS[name]) <= 0.12
        for name in measured
    )
    # Ordering: the paper's strongest structural facts.
    sd_highest = measured["stable_diffusion"] == max(measured.values())
    llama_second = measured["llama"] == max(
        value for name, value in measured.items()
        if name != "stable_diffusion"
    )
    prod_and_mav_lowest = set(
        sorted(measured, key=measured.get)[:2]
    ) == {"prod_image", "make_a_video"}
    spread_ok = (
        1.0 <= min(measured.values()) <= 1.08
        and 1.4 <= max(measured.values()) <= 1.9
    )
    claims = [
        ClaimCheck(
            claim="per-model speedups within ±0.12 of Table II",
            paper="1.04x-1.67x",
            measured=", ".join(
                f"{DISPLAY_NAMES[n]} {v:.2f}" for n, v in measured.items()
            ),
            holds=absolute_close,
        ),
        ClaimCheck(
            claim="Stable Diffusion gains the most end-to-end",
            paper="1.67x (max)",
            measured=f"{measured['stable_diffusion']:.2f}x",
            holds=sd_highest,
        ),
        ClaimCheck(
            claim="LLaMA gains second-most",
            paper="1.52x",
            measured=f"{measured['llama']:.2f}x",
            holds=llama_second,
        ),
        ClaimCheck(
            claim="Prod Image and Make-A-Video gain the least",
            paper="1.04x / 1.06x",
            measured=(
                f"{measured['prod_image']:.2f}x / "
                f"{measured['make_a_video']:.2f}x"
            ),
            holds=prod_and_mav_lowest,
        ),
        ClaimCheck(
            claim="speedups span ~4-67%",
            paper="1.04x-1.67x",
            measured=(
                f"{min(measured.values()):.2f}x-{max(measured.values()):.2f}x"
            ),
            holds=spread_ok,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="End-to-end speedup of Flash Attention vs baseline",
        headers=["model", "paper", "measured", "delta"],
        rows=rows,
        claims=claims,
    )
