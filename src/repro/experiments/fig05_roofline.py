"""Figure 5: the model suite on an A100 roofline.

Arithmetic intensity follows the paper's definition — FLOPs over
required model capacity (parameter bytes) — evaluated per *sequential
iteration* of each model's generation loop, which is what the roofline
placement reflects at serving time:

* a diffusion model's iteration is one denoising step: an entire image
  worth of FLOPs against one read of the UNet's parameters (the paper's
  "high parameter reuse");
* an autoregressive transformer's iteration is one decode step: 2 FLOPs
  per parameter byte read — the far memory-bound end;
* parallel-decode transformers (Muse, Phenaki) sit in between, with one
  token-grid refinement per iteration.

Compute- vs memory-bound placement uses traffic intensity (FLOPs over
bytes actually moved) from the Flash-Attention traces, the optimized
configuration a roofline characterizes.
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles, model_instance
from repro.hw.roofline import classify_bound
from repro.hw.spec import A100_80GB
from repro.ir.trace import Trace
from repro.models.registry import DISPLAY_NAMES

EXPERIMENT_ID = "fig5"

# Figure 5 plots the four Table I models; the wider suite is shown in
# the output table but claims are checked on the figure's own models.
DIFFUSION = ("imagen", "stable_diffusion")

# One representative iteration scope per model (module-path prefix).
_ITERATION_SCOPE = {
    "imagen": "stage_64px",  # one base-model denoise step (below)
    "stable_diffusion": "denoise_0",
    "prod_image": "denoise_0",
    "make_a_video": "decoder",
    "muse": "base_step_0",
    "phenaki": "refine_step_0",
}


def _scope_trace(trace: Trace, prefix: str) -> Trace:
    return trace.filter(
        lambda event: event.module_path.startswith(prefix)
    )


def _iteration_flops(name: str, trace: Trace) -> float:
    scope = _ITERATION_SCOPE[name]
    scoped = _scope_trace(trace, scope)
    if name == "imagen":
        # stage scope holds all base denoise steps; take one.
        scoped = _scope_trace(trace, "stage_64px.denoise_0")
    if name == "make_a_video":
        scoped = _scope_trace(trace, "decoder.denoise_0")
    return scoped.total_flops


def capacity_intensities() -> dict[str, float]:
    """Per-iteration FLOPs over model capacity for each suite model."""
    out: dict[str, float] = {}
    for name, (baseline, _flash) in all_profiles().items():
        model = model_instance(name)
        param_bytes = model.param_bytes()
        if name == "llama":
            decode = baseline.trace.filter(
                lambda event: event.module_path.split(".")[0] == "decode"
            )
            steps = model.config.decode_tokens
            out[name] = decode.total_flops / steps / param_bytes
        elif name == "parti":
            # Serving semantics: one KV-cached decode step reads every
            # parameter to produce 2 FLOPs per weight.
            out[name] = (
                2.0 * model.param_count() / model.param_bytes()
            )
        else:
            out[name] = _iteration_flops(
                name, baseline.trace
            ) / param_bytes
    return out


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    spec = A100_80GB
    capacity = capacity_intensities()
    rows: list[list[object]] = []
    traffic_bound: dict[str, str] = {}
    for name, (_baseline, flash) in all_profiles().items():
        trace = flash.trace
        traffic = trace.total_flops / trace.total_moved_bytes
        bound = classify_bound(spec, traffic)
        traffic_bound[name] = bound
        rows.append(
            [
                DISPLAY_NAMES[name],
                f"{capacity[name]:.3g}",
                f"{traffic:.3g}",
                bound,
            ]
        )

    autoregressive = ("llama", "parti")
    max_diffusion = max(capacity[name] for name in DIFFUSION)
    min_diffusion = min(capacity[name] for name in DIFFUSION)
    max_ar = max(capacity[name] for name in autoregressive)
    parallel = ("muse",)
    max_parallel = max(capacity[name] for name in parallel)
    ratio = max_diffusion / max_ar
    claims = [
        ClaimCheck(
            claim="diffusion arithmetic intensity exceeds "
            "autoregressive transformers by up to ~100x",
            paper="up to 100x",
            measured=f"{ratio:.0f}x",
            holds=ratio >= 50.0,
        ),
        ClaimCheck(
            claim="diffusion models sit in the compute-bound region",
            paper="compute-bound",
            measured=", ".join(
                f"{DISPLAY_NAMES[n]}:{traffic_bound[n]}" for n in DIFFUSION
            ),
            holds=all(
                traffic_bound[name] == "compute" for name in DIFFUSION
            ),
        ),
        ClaimCheck(
            claim="autoregressive decode is memory-bound at low batch",
            paper="memory-bound",
            measured=(
                f"LLaMA decode {capacity['llama']:.1f} FLOP/B, Parti "
                f"decode {capacity['parti']:.1f} FLOP/B "
                f"(ridge {spec.ridge_point():.0f})"
            ),
            holds=max_ar < spec.ridge_point(),
        ),
        ClaimCheck(
            claim="diffusion intensity exceeds parallel-decode "
            "transformer TTI (Muse)",
            paper="diffusion > transformer TTI",
            measured=(
                f"min diffusion {min_diffusion:.3g} vs max parallel "
                f"{max_parallel:.3g}"
            ),
            holds=min_diffusion > max_parallel,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Roofline placement on {spec.name} "
        f"(ridge {spec.ridge_point():.0f} FLOP/B)",
        headers=[
            "model", "capacity FLOP/B (per iteration)",
            "traffic FLOP/B", "bound",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Capacity intensity per sequential generation iteration; "
            "LLaMA/Parti use their decode steps (Table III semantics).",
        ],
    )
