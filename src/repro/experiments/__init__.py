"""One module per table/figure of the paper's evaluation.

Each module exposes ``run() -> ExperimentResult`` with the reproduced
rows plus claim checks against the published values.  The CLI runner is
``python -m repro.experiments`` (or the ``repro-experiments`` script).
"""

from repro.experiments.base import ClaimCheck, ExperimentResult

__all__ = ["ClaimCheck", "ExperimentResult"]
