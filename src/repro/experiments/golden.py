"""Golden-trace summaries: the numbers the regression suite pins.

The experiments check *claims* (shape, ordering, coarse bands) so that
honest recalibration does not break them; the golden suite is the
opposite contract: it pins exact numeric outputs of the performance
model — Table I parameter counts and latencies, Table II speedups,
Figure 6 breakdown shares, dist1 scaling efficiencies — to committed
JSON files, so a change to any kernel-cost constant that silently
shifts the paper numbers fails tier-1 instead of drifting unnoticed.

Each ``*_summary`` function returns a JSON-serializable nested dict of
pure floats; :func:`compare_summaries` diffs two such trees with a
tight relative tolerance (1e-9 by default — loose enough for libm
variation across platforms, tight enough that any real model change
trips it).  Refresh the committed files with ``pytest tests/golden
--update-golden`` after an *intentional* model change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable

from repro.distributed.scaling import strong_scaling
from repro.experiments.suite_cache import all_profiles, model_instance
from repro.ir.ops import OpCategory
from repro.kernels.base import TuningConstants
from repro.models.registry import suite_names
from repro.profiler.breakdown import breakdown, speedup_report

DIST1_MODELS = ("stable_diffusion", "make_a_video")
DIST1_MACHINES = ("dgx-a100-80g", "dgx-h100")
DIST1_WORLDS = (1, 2, 4, 8)


def table1_summary() -> dict:
    """Generator parameter counts and baseline latencies (Table I)."""
    from repro.experiments.table1_taxonomy import (
        _TTI_MODELS,
        generator_params,
    )

    profiles = all_profiles()
    return {
        name: {
            "generator_params": float(generator_params(name)),
            "baseline_latency_s": profiles[name][0].total_time_s,
            "baseline_flops": profiles[name][0].trace.total_flops,
        }
        for name in _TTI_MODELS
    }


def table2_summary() -> dict:
    """End-to-end Flash speedup per suite model (Table II)."""
    return {
        name: speedup_report(
            baseline.trace, flash.trace
        ).end_to_end_speedup
        for name, (baseline, flash) in all_profiles().items()
    }


def fig6_summary() -> dict:
    """Operator-category time shares per model and impl (Figure 6)."""
    summary: dict = {}
    for name, (baseline, flash) in all_profiles().items():
        summary[name] = {
            impl: {
                category.value: fraction
                for category, fraction in sorted(
                    breakdown(result.trace).fractions().items(),
                    key=lambda item: item[0].value,
                )
            }
            for impl, result in (("baseline", baseline),
                                 ("flash", flash))
        }
    return summary


def dist1_summary(
    tuning: TuningConstants | None = None,
    *,
    models: tuple[str, ...] = DIST1_MODELS,
    machines: tuple[str, ...] = DIST1_MACHINES,
    worlds: tuple[int, ...] = DIST1_WORLDS,
) -> dict:
    """Strong-scaling latencies and efficiencies (dist1).

    ``tuning`` exists so the regression suite can demonstrate that a
    perturbed kernel-cost constant produces a summary that *fails* the
    golden comparison.
    """
    kwargs = {} if tuning is None else {"tuning": tuning}
    summary: dict = {}
    for name in models:
        for machine in machines:
            points = strong_scaling(
                model_instance(name), machine, worlds, **kwargs
            )
            summary[f"{name}|{machine}"] = {
                str(point.world): {
                    "time_s": point.time_s,
                    "efficiency": point.efficiency,
                    "comm_time_s": point.comm_time_s,
                }
                for point in points
            }
    return summary


def serve1_summary() -> dict:
    """Fleet-serving latency percentiles and SLO accounting (serve1).

    Pins the seeded fleet simulation: per-model p50/p95, goodput,
    violation seconds and availability for the flash fleet with and
    without the injected crash.  The discrete-event simulator is
    deterministic under a fixed seed, so these are exact numbers, not
    distributions.
    """
    from repro.experiments.serve1_fleet import (
        A100_SERVERS,
        CRASH,
        MODELS,
        _pool,
        _scenario,
        _service_times,
    )
    from repro.serving.faults import FaultSchedule

    flash_service = _service_times(use_flash=True)
    deadlines = {name: 3.0 * flash_service[name] for name in MODELS}
    summary: dict = {}
    for label, faults in (
        ("flash", FaultSchedule()),
        ("flash_crash", FaultSchedule(crashes=(CRASH,))),
    ):
        pools = [
            _pool("a100", "dgx-a100-80g", A100_SERVERS, flash_service)
        ]
        report, slo = _scenario(
            flash_service, pools, faults=faults, deadlines=deadlines
        )
        summary[label] = {
            "goodput": slo.goodput,
            "violation_s": slo.violation_s,
            "availability": slo.availability,
            "completion_rate": report.completion_rate,
            "per_model": {
                entry.model: {
                    "p50_s": entry.p50_s,
                    "p95_s": entry.p95_s,
                }
                for entry in slo.per_model
            },
        }
    return summary


def serve2_summary() -> dict:
    """Resilience-scenario accounting under overload (serve2).

    Pins the five protection configurations of the serve2 experiment:
    p99, goodput and the full shed/hedge/degraded decomposition per
    scenario.  This is the regression contract for the resilience
    layer — any change to admission, breaker, hedging or brownout
    mechanics that shifts the comparison fails here, with the serve1
    golden simultaneously guaranteeing the all-mechanisms-off
    simulator did not move.
    """
    from repro.experiments.serve2_resilience import _run_scenarios
    from repro.serving.slo import percentile

    summary: dict = {}
    for label, report, slo in _run_scenarios():
        latencies = [record.latency_s for record in report.completed]
        stats = report.resilience
        summary[label] = {
            "p50_s": percentile(latencies, 50.0),
            "p99_s": percentile(latencies, 99.0),
            "goodput": slo.goodput,
            "completed": float(len(report.completed)),
            "failed": float(len(report.failed)),
            "shed": float(len(report.shed)),
            "hedges_launched": float(stats.hedges_launched),
            "hedge_wins": float(stats.hedge_wins),
            "hedge_wasted_s": stats.hedge_wasted_s,
            "breaker_opens": float(stats.breaker_opens),
            "degraded": float(stats.degraded_completions),
            "quality_debt": slo.quality_debt,
            "rung_completions": {
                str(rung): float(count)
                for rung, count in enumerate(stats.rung_completions)
            },
        }
    return summary


def serve3_summary() -> dict:
    """Client-structured vs Poisson traffic comparison (serve3).

    Pins the four (traffic, policy) runs of the serve3 experiment —
    goodput, percentile and shed/failed accounting per run, the
    dispersion index of each trace, and the per-tier breakdown of the
    unprotected client run.  This is the regression contract for the
    traffic layer *and* for the experiment's headline ranking flip:
    if either trace generation or the admission interaction moves,
    the flip margin recorded here moves with it and the golden fails.
    """
    from repro.experiments.serve3_traffic import dispersion_index
    from repro.experiments.serve3_traffic import (
        _run_scenarios as serve3_scenarios,
    )
    from repro.serving.slo import tier_slo_report

    scenarios, traces, deadlines = serve3_scenarios()
    summary: dict = {
        "traces": {
            label: {
                "requests": float(len(trace)),
                "service_sum_s": float(trace.batch.service_s.sum()),
                "dispersion": dispersion_index(trace),
            }
            for label, trace in traces.items()
        }
    }
    for traffic_label, policy_label, report, slo in scenarios:
        summary[f"{traffic_label}|{policy_label}"] = {
            "goodput": slo.goodput,
            "completed": float(len(report.completed)),
            "failed": float(len(report.failed)),
            "shed": float(len(report.shed)),
            "per_model": {
                entry.model: {
                    "p50_s": entry.p50_s,
                    "p95_s": entry.p95_s,
                    "p99_s": entry.p99_s,
                }
                for entry in slo.per_model
            },
        }
        if (traffic_label, policy_label) == ("client", "no-admission"):
            tiers = tier_slo_report(
                report, traces["client"], deadlines
            )
            summary["client_tiers"] = {
                entry.tier: {
                    "clients": float(entry.clients),
                    "offered": float(entry.offered),
                    "p95_s": entry.p95_s,
                    "goodput": entry.goodput,
                }
                for entry in tiers.per_tier
            }
    return summary


def serve4_summary() -> dict:
    """Chaos-campaign arms under a correlated zone outage (serve4).

    Pins all four serve4 arms — latency percentiles, goodput and the
    terminal-state decomposition per arm — plus the per-domain
    availability/MTTD/MTTR table of the orchestrated arm and the
    engine bit-equality and invariant verdicts.  This is the
    regression contract for the failure-domain compiler and the
    recovery-orchestration path: a change to jitter draws, cordon
    semantics, standby promotion or re-admission staggering moves
    these numbers and fails here instead of drifting.
    """
    from repro.experiments.serve4_chaos import _run_scenarios
    from repro.serving.slo import percentile

    scenarios, _ = _run_scenarios()
    summary: dict = {}
    for entry in scenarios:
        report = entry["report"]
        latencies = [
            record.latency_s for record in report.completed
        ]
        summary[entry["label"]] = {
            "p50_s": percentile(latencies, 50.0),
            "p99_s": percentile(latencies, 99.0),
            "goodput": entry["slo"].goodput,
            "completed": float(len(report.completed)),
            "failed": float(len(report.failed)),
            "shed": float(len(report.shed)),
            "makespan_s": report.makespan_s,
            "engines_identical": float(entry["engines_identical"]),
            "invariant_violations": float(sum(
                len(verdict.violations)
                for verdict in entry["invariants"]
            )),
        }
        if entry["label"] == "all-on+orchestration":
            summary["domains"] = {
                domain.domain: {
                    "servers": float(domain.servers),
                    "events": float(domain.events),
                    "down_server_s": domain.down_server_s,
                    "availability": domain.availability,
                    "mttd_s": domain.mttd_s,
                    "mttr_s": domain.mttr_s,
                }
                for domain in entry["domains"].per_domain
            }
    return summary


def obs1_summary() -> dict:
    """Telemetry-driven regression attribution (obs1).

    Pins both breaker arms of the obs1 experiment — the SLO
    accounting, the telemetry counters, the queue-depth peak, the
    per-server breaker-open interval counts, the tail-overlap
    attribution fraction and the burn-rate alert firings.  Because
    every number is computed *from the telemetry log*, this golden is
    simultaneously the regression contract for the collection
    pipeline (spans, gauges, events, alerts) and for the experiment's
    headline attribution.
    """
    from repro.experiments.obs1_attribution import (
        ALERT_RULES,
        _run_scenarios as obs1_scenarios,
        tail_overlap_fraction,
    )
    from repro.obs import evaluate_alerts

    scenarios, blind_report, deadlines = obs1_scenarios()
    tuned_p99 = {
        m.model: m.p99_s for m in scenarios["tuned"][1].per_model
    }["stable_diffusion"]
    summary: dict = {
        "blind_completed": float(len(blind_report.completed)),
    }
    for label, (report, slo, log) in scenarios.items():
        firings = evaluate_alerts(log, deadlines, rules=ALERT_RULES)
        summary[label] = {
            "goodput": slo.goodput,
            "completed": float(len(report.completed)),
            "failed": float(len(report.failed)),
            "shed": float(len(report.shed)),
            "per_model": {
                entry.model: {
                    "p50_s": entry.p50_s,
                    "p95_s": entry.p95_s,
                    "p99_s": entry.p99_s,
                }
                for entry in slo.per_model
            },
            "breaker_opens": log.counter_final("breaker_opens"),
            "retries": log.counter_final("retries"),
            "queue_depth_peak": log.series_named(
                "pool.a100.queue_depth"
            ).peak,
            "open_intervals_per_server": {
                str(server): float(len(intervals))
                for server, intervals in
                log.breaker_open_intervals().items()
            },
            "tail_overlap": tail_overlap_fraction(log, tuned_p99),
            "alerts": [
                {
                    "rule": firing.rule,
                    "start_s": firing.start_s,
                    "end_s": firing.end_s,
                    "peak_burn": firing.peak_burn,
                }
                for firing in firings
            ],
        }
    return summary


def dist2_summary() -> dict:
    """Parallelism auto-planner search + fleet wiring (dist2).

    Pins, per model × machine combo: the costed tp=8 baseline, the
    planner's best-throughput and best-latency picks (config label,
    latency, throughput, memory, bubble), the full Pareto frontier,
    and the basis amortization counters — plus the goodput/p95 of the
    auto-planned vs hand-picked fleet replay.  Any drift in the kernel
    or collective cost models, the symbolic axis algebra, the pipeline
    schedules or the memory model moves these numbers and fails here.
    """
    from repro.experiments.dist2_planner import (
        MACHINES as dist2_machines,
        MODELS as dist2_models,
        _run_fleet as dist2_fleet,
        _run_searches as dist2_searches,
    )

    def point(p) -> dict:
        return {
            "config": p.config.label,
            "latency_s": p.latency_s,
            "throughput_rps": p.throughput_rps,
            "memory_bytes": p.memory_bytes,
            "bubble_fraction": p.bubble_fraction,
        }

    summary: dict = {"fleet": dist2_fleet()}
    searches = dist2_searches()
    for _, registry_name in dist2_models:
        for machine in dist2_machines:
            result, baseline = searches[(registry_name, machine)]
            summary[f"{registry_name}|{machine}"] = {
                "baseline": point(baseline),
                "best_throughput": point(result.best_throughput()),
                "best_latency": point(result.best_latency()),
                "frontier": [point(p) for p in result.frontier],
                "stats": {
                    key: float(value)
                    for key, value in result.stats.items()
                },
            }
    return summary


GOLDEN_SUMMARIES: dict[str, Callable[[], dict]] = {
    "table1": table1_summary,
    "table2": table2_summary,
    "fig06_shares": fig6_summary,
    "dist1": dist1_summary,
    "dist2": dist2_summary,
    "serve1": serve1_summary,
    "serve2": serve2_summary,
    "serve3": serve3_summary,
    "serve4": serve4_summary,
    "obs1": obs1_summary,
}


def write_golden(name: str, path: Path) -> dict:
    """Compute summary ``name`` and write it as golden JSON at ``path``.

    The single write path for both the ``--update-golden`` refresh and
    the refresh-path tests, so the on-disk format cannot fork.
    Returns the summary that was written.
    """
    actual = GOLDEN_SUMMARIES[name]()
    path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
    return actual


def _flatten(tree: dict, prefix: str = "") -> dict[str, object]:
    flat: dict[str, object] = {}
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def compare_summaries(
    expected: dict,
    actual: dict,
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> list[str]:
    """Diff two summary trees; returns human-readable mismatches.

    An empty list means the trees agree to within the tolerances.
    Missing or extra keys are mismatches too — a model that stops (or
    starts) reporting a number is as much a regression as one that
    shifts it.
    """
    flat_expected = _flatten(expected)
    flat_actual = _flatten(actual)
    mismatches: list[str] = []
    for path in sorted(set(flat_expected) | set(flat_actual)):
        if path not in flat_expected:
            mismatches.append(f"{path}: unexpected new value")
            continue
        if path not in flat_actual:
            mismatches.append(f"{path}: missing from actual")
            continue
        want, got = flat_expected[path], flat_actual[path]
        if isinstance(want, float) and isinstance(got, (int, float)):
            if not math.isclose(
                want, float(got), rel_tol=rel_tol, abs_tol=abs_tol
            ):
                drift = (
                    (float(got) - want) / want * 100.0 if want else 0.0
                )
                mismatches.append(
                    f"{path}: expected {want!r}, got {got!r} "
                    f"({drift:+.3f}%)"
                )
        elif want != got:
            mismatches.append(f"{path}: expected {want!r}, got {got!r}")
    return mismatches
