"""Figure 9: attention vs convolution scaling with image size."""

from __future__ import annotations

from repro.analysis.scaling import scaling_rate, sweep_image_sizes
from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.ir.context import AttentionImpl

EXPERIMENT_ID = "fig9"

SIZES = [64, 128, 256, 512]


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    baseline_points = sweep_image_sizes(
        SIZES, attention_impl=AttentionImpl.BASELINE
    )
    flash_points = sweep_image_sizes(
        SIZES, attention_impl=AttentionImpl.FLASH
    )
    rows = []
    for impl, points in (("baseline", baseline_points),
                         ("flash", flash_points)):
        for point in points:
            rows.append(
                [
                    impl,
                    f"{point.image_size}x{point.image_size}",
                    f"{point.attention_time_s*1e3:.2f}",
                    f"{point.conv_time_s*1e3:.2f}",
                    f"{point.total_time_s*1e3:.2f}",
                ]
            )
    baseline_attention_rate = scaling_rate(
        baseline_points, "attention_time_s"
    )
    baseline_conv_rate = scaling_rate(baseline_points, "conv_time_s")
    flash_attention_rate = scaling_rate(flash_points, "attention_time_s")
    flash_conv_rate = scaling_rate(flash_points, "conv_time_s")
    conv_dominates_large_flash = (
        flash_points[-1].conv_time_s > flash_points[-1].attention_time_s
    )
    claims = [
        ClaimCheck(
            claim="before Flash, attention time scales faster than "
            "convolution with image size",
            paper="attention scales faster",
            measured=(
                f"attention x{baseline_attention_rate:.0f} vs conv "
                f"x{baseline_conv_rate:.0f} over {SIZES[0]}->{SIZES[-1]}px"
            ),
            holds=baseline_attention_rate > baseline_conv_rate,
        ),
        ClaimCheck(
            claim="after Flash, convolution scales faster than attention",
            paper="convolution becomes the limiting factor",
            measured=(
                f"attention x{flash_attention_rate:.0f} vs conv "
                f"x{flash_conv_rate:.0f}"
            ),
            holds=flash_conv_rate > flash_attention_rate,
        ),
        ClaimCheck(
            claim="convolution dominates attention at 512px with Flash",
            paper="conv is the limiting factor",
            measured=(
                f"conv {flash_points[-1].conv_time_s*1e3:.1f}ms vs "
                f"attention "
                f"{flash_points[-1].attention_time_s*1e3:.1f}ms"
            ),
            holds=conv_dominates_large_flash,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Stable Diffusion attention vs convolution time as image "
        "size scales (one UNet pass)",
        headers=["impl", "image", "attention ms", "conv ms", "total ms"],
        rows=rows,
        claims=claims,
    )
