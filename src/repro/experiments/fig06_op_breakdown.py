"""Figure 6: operator breakdown, baseline vs Flash Attention."""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.ir.ops import OpCategory
from repro.models.registry import DISPLAY_NAMES
from repro.profiler.breakdown import breakdown

EXPERIMENT_ID = "fig6"

DIFFUSION = ("imagen", "stable_diffusion", "prod_image", "make_a_video")
TRANSFORMER = ("muse", "parti", "phenaki")
_SHOWN = (
    OpCategory.ATTENTION,
    OpCategory.CONV,
    OpCategory.LINEAR,
    OpCategory.GROUPNORM,
    OpCategory.NORM,
    OpCategory.ELEMENTWISE,
)


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    rows: list[list[object]] = []
    baseline_attention: dict[str, float] = {}
    flash_fraction: dict[str, dict[OpCategory, float]] = {}
    baseline_fraction: dict[str, dict[OpCategory, float]] = {}
    for name, (baseline, flash) in all_profiles().items():
        base_breakdown = breakdown(baseline.trace)
        flash_breakdown = breakdown(flash.trace)
        baseline_attention[name] = base_breakdown.fraction(
            OpCategory.ATTENTION
        )
        baseline_fraction[name] = base_breakdown.fractions()
        flash_fraction[name] = flash_breakdown.fractions()
        for impl, result in (("baseline", base_breakdown),
                             ("flash", flash_breakdown)):
            # Flash bar is normalized to the model's baseline time,
            # exactly as in the paper's figure.
            normalized = result.normalized_to(base_breakdown.total_time_s)
            rows.append(
                [
                    DISPLAY_NAMES[name],
                    impl,
                    *(f"{normalized.get(cat, 0.0):.3f}" for cat in _SHOWN),
                    f"{sum(normalized.values()):.3f}",
                ]
            )

    avg_attention = sum(baseline_attention.values()) / len(
        baseline_attention
    )
    max_conv_flash = max(
        flash_fraction[name].get(OpCategory.CONV, 0.0)
        for name in DIFFUSION
    )
    max_linear_flash = max(
        flash_fraction[name].get(OpCategory.LINEAR, 0.0)
        for name in TRANSFORMER
    )
    conv_dominant = all(
        max(flash_fraction[name], key=flash_fraction[name].get)
        is OpCategory.CONV
        for name in ("imagen", "stable_diffusion", "prod_image",
                     "make_a_video")
    )
    llm_like_attention = [
        flash_fraction[name].get(OpCategory.ATTENTION, 0.0)
        for name in ("llama", "muse", "parti", "phenaki")
    ]
    image_diffusion = ("imagen", "stable_diffusion", "prod_image")
    diffusion_attention_flash = [
        flash_fraction[name].get(OpCategory.ATTENTION, 0.0)
        for name in image_diffusion
    ]
    baseline_conv_diffusion = max(
        baseline_fraction[name].get(OpCategory.CONV, 0.0)
        for name in image_diffusion
    )
    pixel_conv = baseline_fraction["imagen"].get(OpCategory.CONV, 0.0)
    latent_conv = baseline_fraction["stable_diffusion"].get(
        OpCategory.CONV, 0.0
    )
    groupnorm_range = [
        baseline_fraction[name].get(OpCategory.GROUPNORM, 0.0)
        for name in DIFFUSION
    ]
    claims = [
        ClaimCheck(
            claim="attention averages ~41% of baseline suite time",
            paper="41.3%",
            measured=f"{avg_attention*100:.1f}%",
            holds=0.30 <= avg_attention <= 0.55,
        ),
        ClaimCheck(
            claim="convolution up to ~44% for diffusion TTI after Flash",
            paper="up to 44%",
            measured=f"{max_conv_flash*100:.0f}%",
            holds=0.35 <= max_conv_flash <= 0.70,
        ),
        ClaimCheck(
            claim="linear up to ~49% for transformer TTI after Flash",
            paper="up to 49%",
            measured=f"{max_linear_flash*100:.0f}%",
            holds=0.35 <= max_linear_flash <= 0.60,
        ),
        ClaimCheck(
            claim="convolution is the largest block for diffusion models "
            "after Flash Attention",
            paper="bottleneck shifts to Convolution",
            measured="dominant" if conv_dominant else "not dominant",
            holds=conv_dominant,
        ),
        ClaimCheck(
            claim="LLM/transformer attention stays 37-45% after Flash",
            paper="37-45%",
            measured=", ".join(f"{f*100:.0f}%" for f in llm_like_attention),
            holds=all(0.30 <= f <= 0.62 for f in llm_like_attention),
        ),
        ClaimCheck(
            claim="diffusion attention drops to 13-25% after Flash",
            paper="13-25%",
            measured=", ".join(
                f"{f*100:.0f}%" for f in diffusion_attention_flash
            ),
            holds=all(0.05 <= f <= 0.30 for f in diffusion_attention_flash),
        ),
        ClaimCheck(
            claim="baseline convolution up to ~36% in diffusion models",
            paper="up to 36%",
            measured=f"{baseline_conv_diffusion*100:.0f}%",
            holds=0.25 <= baseline_conv_diffusion <= 0.75,
        ),
        ClaimCheck(
            claim="pixel-based models spend more baseline time on "
            "convolution than latent-based",
            paper="~15pp more",
            measured=(
                f"Imagen {pixel_conv*100:.0f}% vs SD {latent_conv*100:.0f}%"
            ),
            holds=pixel_conv > latent_conv,
        ),
        ClaimCheck(
            claim="GroupNorm takes 4-11% of diffusion-model time",
            paper="4-11%",
            measured=", ".join(f"{f*100:.1f}%" for f in groupnorm_range),
            holds=all(0.01 <= f <= 0.15 for f in groupnorm_range),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Operator breakdown, baseline vs Flash Attention "
        "(flash bars normalized to baseline time)",
        headers=[
            "model", "impl",
            *(category.value for category in _SHOWN),
            "total",
        ],
        rows=rows,
        claims=claims,
    )
