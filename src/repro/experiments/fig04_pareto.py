"""Figure 4: FID-vs-parameters Pareto frontier of TTI models."""

from __future__ import annotations

from repro.analysis.pareto import FIGURE4_DATASET, pareto_frontier
from repro.experiments.base import ClaimCheck, ExperimentResult

EXPERIMENT_ID = "fig4"


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    frontier = pareto_frontier(FIGURE4_DATASET)
    frontier_names = {point.name for point in frontier}
    rows = [
        [
            point.name,
            point.architecture,
            f"{point.fid:.2f}",
            f"{point.parameters/1e9:.2f}B",
            "yes" if point.name in frontier_names else "",
        ]
        for point in sorted(FIGURE4_DATASET, key=lambda p: p.parameters)
    ]
    # The paper highlights Imagen, Stable Diffusion and Parti as
    # Pareto-optimal representatives of their architecture classes.
    highlighted = {"Imagen", "StableDiffusion", "Parti"}
    diffusion_on_frontier = [
        point for point in frontier if point.architecture == "diffusion"
    ]
    best_diffusion = min(
        (p for p in FIGURE4_DATASET if p.architecture == "diffusion"),
        key=lambda p: p.fid,
    )
    parti = next(p for p in FIGURE4_DATASET if p.name == "Parti")
    small_diffusion = min(
        (p for p in FIGURE4_DATASET
         if p.architecture == "diffusion" and p.fid <= parti.fid * 1.01),
        key=lambda p: p.parameters,
    )
    claims = [
        ClaimCheck(
            claim="Imagen, Stable Diffusion and Parti lie on the frontier",
            paper="all three Pareto-optimal",
            measured=", ".join(sorted(frontier_names & highlighted)),
            holds=highlighted <= frontier_names,
        ),
        ClaimCheck(
            claim="diffusion gives higher quality per parameter",
            paper="diffusion dominates at small sizes",
            measured=(
                f"{len(diffusion_on_frontier)}/{len(frontier)} frontier "
                "points are diffusion"
            ),
            holds=len(diffusion_on_frontier) >= len(frontier) / 2,
        ),
        ClaimCheck(
            claim="Parti matches diffusion quality at ~4x the parameters",
            paper="4x",
            measured=(
                f"Parti {parti.parameters/1e9:.0f}B vs "
                f"{small_diffusion.name} "
                f"{small_diffusion.parameters/1e9:.1f}B = "
                f"{parti.parameters/small_diffusion.parameters:.1f}x"
            ),
            holds=3.0
            <= parti.parameters / small_diffusion.parameters
            <= 10.0,
        ),
    ]
    del best_diffusion
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="FID vs parameters with Pareto frontier",
        headers=["model", "architecture", "FID", "params", "frontier"],
        rows=rows,
        claims=claims,
        notes=[
            "FID/parameter values are the previously reported numbers the "
            "paper plots; the frontier computation is reproduced here.",
        ],
    )
