"""Experiment result structure shared by every table/figure module."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reporting.table import render_table


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim compared against the reproduced measurement."""

    claim: str
    paper: str
    measured: str
    holds: bool


@dataclass
class ExperimentResult:
    """Rows + claim checks for one table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    claims: list[ClaimCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def to_dict(self) -> dict:
        """JSON-serializable form (for plotting pipelines)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[str(cell) for cell in row] for row in self.rows],
            "claims": [
                {
                    "claim": claim.claim,
                    "paper": claim.paper,
                    "measured": claim.measured,
                    "holds": claim.holds,
                }
                for claim in self.claims
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Full text report: table, claim checks, notes."""
        parts = [
            render_table(
                self.headers,
                self.rows,
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        if self.claims:
            claim_rows = [
                [
                    "PASS" if claim.holds else "MISS",
                    claim.claim,
                    claim.paper,
                    claim.measured,
                ]
                for claim in self.claims
            ]
            parts.append(
                render_table(
                    ["check", "claim", "paper", "measured"],
                    claim_rows,
                    title="Claim checks",
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)
