"""obs1: telemetry attributes a p99 regression to breaker flapping.

A fleet-level p99 regression has two classic proximate causes that
aggregate counters cannot distinguish: the servers got slower, or the
control plane took capacity away and queues built up.  This experiment
stages exactly that ambiguity and resolves it from telemetry alone —
request spans, time-series gauges and fleet events collected by
:class:`repro.obs.Telemetry` — never from :class:`FleetReport`
aggregates.

Setup: one 24-server pool at ~0.8 load, with a mild gray failure — a
1.4x slowdown on a third of the servers for a ten-minute window.  Two
breaker configurations serve the identical workload:

* **tuned** counts only crashes as failures (``slow_factor=None``).
  The stragglers cost ~40% latency on a third of batches; p99 barely
  moves.
* **flappy** counts any batch 1.3x over nominal as a failure and
  trips on the first one (``failure_threshold=1``).  Every straggler
  batch re-opens the breaker, so all eight slow servers flap
  open/half-open for the whole window — the fleet loses a third of
  its capacity to a 1.4x slowdown, queues explode and p99 regresses
  by an order of magnitude.

The attribution chain, read off the telemetry: breaker-open events
cluster inside the straggler window and *precede* the queue-depth
blow-up (event ordering); tail requests spend their lives queued
while breakers are open (span/interval overlap); and the multi-window
burn-rate alert pages on the flappy arm only.  Telemetry is also
proven inert: the flappy arm re-run with collection disabled produces
the byte-identical completion stream.  The committed golden
(``tests/golden/obs1.json``) pins every number.
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.obs import BurnRateRule, Telemetry, TelemetryLog, evaluate_alerts
from repro.serving.faults import FaultSchedule, RetryPolicy, Straggler
from repro.serving.fleet import (
    PoolSpec,
    affine_batch_latency,
    simulate_fleet,
)
from repro.serving.resilience import CircuitBreakerConfig, ResilienceConfig
from repro.serving.slo import slo_report
from repro.serving.workload import WorkloadMix, generate_requests

EXPERIMENT_ID = "obs1"

MODELS = ("stable_diffusion", "muse")
SHARES = {"stable_diffusion": 0.7, "muse": 0.3}
SEED = 23
DURATION_S = 1800.0
SERVERS = 24
LOAD = 0.8
STRAGGLER_SERVERS = tuple(range(8))
STRAGGLE_START_S = 600.0
STRAGGLE_END_S = 1200.0
SLOWDOWN = 1.4
DEADLINE_FACTOR = 5.0
SAMPLE_INTERVAL_S = 5.0
QUEUE_ALARM_DEPTH = 2.0 * SERVERS
RETRY = RetryPolicy(max_retries=2, backoff_s=2.0, timeout_s=None)

TUNED = ResilienceConfig(
    breaker=CircuitBreakerConfig(
        failure_threshold=3,
        window_s=60.0,
        cooldown_s=30.0,
        slow_factor=None,
    )
)
FLAPPY = ResilienceConfig(
    breaker=CircuitBreakerConfig(
        failure_threshold=1,
        window_s=30.0,
        cooldown_s=30.0,
        slow_factor=1.3,
    )
)

ALERT_RULES = (
    BurnRateRule(
        name="page-fast-burn",
        objective=0.95,
        long_window_s=300.0,
        short_window_s=60.0,
        threshold=10.0,
        severity="page",
    ),
)


def _service_times() -> dict[str, float]:
    profiles = all_profiles()
    return {name: profiles[name][1].total_time_s for name in MODELS}


def _requests(service: dict[str, float]):
    mix = WorkloadMix(shares=SHARES, service_s=service)
    mean_service = sum(
        SHARES[name] * service[name] for name in MODELS
    )
    rate = LOAD * SERVERS / mean_service
    return generate_requests(
        mix, arrival_rate=rate, duration_s=DURATION_S, seed=SEED
    )


def _pool(service: dict[str, float]) -> PoolSpec:
    return PoolSpec(
        name="a100",
        machine="dgx-a100-80g",
        servers=SERVERS,
        latency_fns={
            model: affine_batch_latency(time, marginal_fraction=0.9)
            for model, time in service.items()
        },
        max_batch=8,
    )


def _faults() -> FaultSchedule:
    return FaultSchedule(
        stragglers=tuple(
            Straggler(
                server=server,
                at_s=STRAGGLE_START_S,
                duration_s=STRAGGLE_END_S - STRAGGLE_START_S,
                slowdown=SLOWDOWN,
            )
            for server in STRAGGLER_SERVERS
        )
    )


def _run_scenarios():
    """Simulate both breaker arms with telemetry, plus a blind re-run.

    Returns ``(scenarios, blind_report, deadlines)`` where
    ``scenarios`` maps arm label -> ``(report, slo, telemetry_log)``
    and ``blind_report`` is the flappy arm re-simulated with telemetry
    disabled (the inertness control).
    """
    service = _service_times()
    deadlines = {
        name: DEADLINE_FACTOR * service[name] for name in MODELS
    }
    requests = _requests(service)
    pool = _pool(service)
    faults = _faults()
    scenarios: dict[str, tuple] = {}
    for label, resilience in (("tuned", TUNED), ("flappy", FLAPPY)):
        telemetry = Telemetry(sample_interval_s=SAMPLE_INTERVAL_S)
        report = simulate_fleet(
            requests, [pool], retry=RETRY, faults=faults,
            resilience=resilience, telemetry=telemetry,
        )
        scenarios[label] = (
            report, slo_report(report, deadlines), telemetry.log()
        )
    blind_report = simulate_fleet(
        requests, [pool], retry=RETRY, faults=faults,
        resilience=FLAPPY,
    )
    return scenarios, blind_report, deadlines


def _open_intervals(log: TelemetryLog) -> list[tuple[float, float]]:
    """Every breaker-open interval in the run, across servers."""
    return [
        interval
        for spans in log.breaker_open_intervals().values()
        for interval in spans
    ]


def tail_overlap_fraction(
    log: TelemetryLog, latency_floor_s: float
) -> float:
    """Fraction of tail completions queued while a breaker was open.

    A completion is *tail* when its span latency exceeds
    ``latency_floor_s``; its queue interval is submit -> dispatch.
    The overlap fraction is the span-level attribution: when it is
    near 1, the tail was made in the queue during open-breaker time,
    not on slow servers.
    """
    intervals = _open_intervals(log)
    tail = 0
    overlapping = 0
    for span in log.spans:
        if span.state != "complete":
            continue
        latency = span.latency_s
        if latency is None or latency <= latency_floor_s:
            continue
        tail += 1
        dispatch = span.first("dispatch")
        queued_until = (
            dispatch.ts_s if dispatch is not None else log.makespan_s
        )
        queued_from = span.submitted_at_s
        if any(
            start < queued_until and end > queued_from
            for start, end in intervals
        ):
            overlapping += 1
    return overlapping / tail if tail else 0.0


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    scenarios, blind_report, deadlines = _run_scenarios()
    tuned_report, tuned_slo, tuned_log = scenarios["tuned"]
    flappy_report, flappy_slo, flappy_log = scenarios["flappy"]

    rows: list[list[object]] = []
    for label, (report, slo, log) in scenarios.items():
        entry = {m.model: m for m in slo.per_model}
        sd = entry["stable_diffusion"]
        rows.append([
            label,
            sum(m.offered for m in slo.per_model),
            f"{sd.p50_s:.2f}",
            f"{sd.p99_s:.2f}",
            f"{slo.goodput * 100:.1f}%",
            int(log.counter_final("breaker_opens")),
            f"{log.series_named('pool.a100.queue_depth').peak:.0f}",
        ])

    inert = (
        blind_report.completed == flappy_report.completed
        and blind_report.failed == flappy_report.failed
        and blind_report.shed == flappy_report.shed
    )

    tuned_sd_p99 = {
        m.model: m for m in tuned_slo.per_model
    }["stable_diffusion"].p99_s
    flappy_sd_p99 = {
        m.model: m for m in flappy_slo.per_model
    }["stable_diffusion"].p99_s
    regression = (
        flappy_sd_p99 / tuned_sd_p99 if tuned_sd_p99 else float("inf")
    )

    opens = flappy_log.events_named("breaker_open")
    open_times = [event.ts_s for event in opens]
    opens_in_window = (
        bool(open_times)
        and min(open_times) >= STRAGGLE_START_S
        and max(open_times) <= STRAGGLE_END_S + 60.0
    )
    per_server = flappy_log.breaker_open_intervals()
    flapping = all(
        len(per_server.get(server, ())) >= 2
        for server in STRAGGLER_SERVERS
    )
    tuned_opens = int(tuned_log.counter_final("breaker_opens"))

    queue = flappy_log.series_named("pool.a100.queue_depth")
    queue_alarm_t = queue.first_time_above(QUEUE_ALARM_DEPTH)
    first_open_t = min(open_times) if open_times else None
    ordering = (
        first_open_t is not None
        and queue_alarm_t is not None
        and first_open_t < queue_alarm_t
    )

    overlap = tail_overlap_fraction(flappy_log, tuned_sd_p99)

    flappy_alerts = evaluate_alerts(
        flappy_log, deadlines, rules=ALERT_RULES
    )
    tuned_alerts = evaluate_alerts(
        tuned_log, deadlines, rules=ALERT_RULES
    )
    pages = [f for f in flappy_alerts if f.severity == "page"]

    claims = [
        ClaimCheck(
            claim="telemetry collection is inert: the flappy arm "
            "re-run with telemetry disabled yields the identical "
            "completion, failure and shed streams",
            paper="observability must not perturb the system "
            "under observation",
            measured=(
                f"{len(flappy_report.completed)} completions "
                f"compare {'equal' if inert else 'UNEQUAL'}"
            ),
            holds=inert,
        ),
        ClaimCheck(
            claim="the flappy breaker turns a 1.4x gray failure into "
            "a >1.5x p99 regression at identical load",
            paper="misconfigured protection amplifies tail latency "
            "(gray-failure literature)",
            measured=(
                f"stable_diffusion p99 {tuned_sd_p99:.2f}s tuned vs "
                f"{flappy_sd_p99:.2f}s flappy ({regression:.1f}x)"
            ),
            holds=regression > 1.5,
        ),
        ClaimCheck(
            claim="fleet events localize the mechanism: every "
            "straggler server flaps (>= 2 open intervals), all opens "
            "fall inside the straggler window, and the tuned arm "
            "records zero opens",
            paper="span/event telemetry attributes regressions to "
            "control-plane behaviour",
            measured=(
                f"{len(opens)} opens across "
                f"{len(per_server)} servers in "
                f"[{min(open_times):.0f}, {max(open_times):.0f}]s; "
                f"tuned opens = {tuned_opens}"
            ) if open_times else "no breaker opens recorded",
            holds=(
                opens_in_window and flapping and tuned_opens == 0
                and set(per_server) == set(STRAGGLER_SERVERS)
            ),
        ),
        ClaimCheck(
            claim="causality runs breaker -> queue: the first "
            "breaker open precedes the queue-depth alarm "
            f"(depth > {QUEUE_ALARM_DEPTH:.0f})",
            paper="time-series ordering distinguishes cause from "
            "symptom",
            measured=(
                f"first open at {first_open_t:.0f}s, queue alarm at "
                f"{queue_alarm_t:.0f}s"
                if ordering else "ordering unresolved"
            ),
            holds=ordering,
        ),
        ClaimCheck(
            claim="the tail is made in the queue, not on slow "
            "servers: over 80% of completions slower than the tuned "
            "p99 were queued while a breaker was open",
            paper="span-level attribution (queue interval vs "
            "open-breaker intervals)",
            measured=f"{overlap * 100:.0f}% of tail spans overlap",
            holds=overlap > 0.8,
        ),
        ClaimCheck(
            claim="the multi-window burn-rate rule pages on the "
            "flappy arm and stays silent on the tuned arm",
            paper="SLO burn-rate alerting (SRE workbook, minute-"
            "scale windows for a half-hour run)",
            measured=(
                f"flappy: {len(pages)} page firing(s), peak burn "
                + (f"{max(f.peak_burn for f in pages):.0f}x; "
                   if pages else "n/a; ")
                + f"tuned: {len(tuned_alerts)} firing(s)"
            ),
            holds=bool(pages) and not tuned_alerts,
        ),
    ]
    notes = [
        "Both arms serve the identical request stream and fault "
        f"schedule: {SLOWDOWN}x stragglers on servers "
        f"{STRAGGLER_SERVERS[0]}-{STRAGGLER_SERVERS[-1]} during "
        f"[{STRAGGLE_START_S:.0f}, {STRAGGLE_END_S:.0f}]s.",
        "All mechanism claims are computed from the telemetry log "
        "(spans, gauges, fleet events) — FleetReport aggregates are "
        "only used for the inertness control.",
        "p50/p99 columns are stable_diffusion latencies; opens and "
        "peak-queue columns come from fleet.breaker_opens and "
        "pool.a100.queue_depth.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Telemetry attributes a p99 regression to breaker "
        "flapping, not server slowdown",
        headers=[
            "breaker", "offered", "p50 s", "p99 s", "goodput",
            "opens", "peak queue",
        ],
        rows=rows,
        claims=claims,
        notes=notes,
    )
