"""Figure 11: temporal vs spatial attention time and FLOPs in
Make-A-Video.

The paper finds Temporal Attention takes ~2x the execution time of
Spatial Attention over a Make-A-Video inference while using ~9x fewer
FLOPs (FLOPs counted from the two attention matmuls).  We measure both
from the Make-A-Video trace; module time follows the hook attribution
(projections, rearranges and norms inside each attention module count
toward it).  Times are taken from the Flash-Attention profile —
Make-A-Video-era codebases run memory-efficient attention — and the
baseline-attention ratio is reported alongside.
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import suite_profiles
from repro.profiler.breakdown import temporal_spatial_report

EXPERIMENT_ID = "fig11"


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    baseline, flash = suite_profiles("make_a_video")
    flash_report = temporal_spatial_report(flash.trace)
    baseline_report = temporal_spatial_report(baseline.trace)
    rows = [
        [
            "spatial",
            f"{flash_report.spatial_time_s*1e3:.1f}",
            f"{baseline_report.spatial_time_s*1e3:.1f}",
            f"{flash_report.spatial_matmul_flops/1e12:.2f}",
        ],
        [
            "temporal",
            f"{flash_report.temporal_time_s*1e3:.1f}",
            f"{baseline_report.temporal_time_s*1e3:.1f}",
            f"{flash_report.temporal_matmul_flops/1e12:.2f}",
        ],
    ]
    claims = [
        ClaimCheck(
            claim="temporal attention takes ~2x the time of spatial",
            paper="2x",
            measured=f"{flash_report.time_ratio:.2f}x (flash), "
            f"{baseline_report.time_ratio:.2f}x (baseline)",
            holds=1.5 <= flash_report.time_ratio <= 2.8,
        ),
        ClaimCheck(
            claim="temporal attention uses ~9x fewer FLOPs",
            paper="9x",
            measured=f"{flash_report.flop_ratio:.1f}x fewer",
            holds=6.0 <= flash_report.flop_ratio <= 14.0,
        ),
        ClaimCheck(
            claim="temporal is slower despite the FLOP deficit "
            "(a locality bottleneck, not a compute one)",
            paper="unique bottleneck",
            measured=(
                f"time ratio {flash_report.time_ratio:.2f} with "
                f"{flash_report.flop_ratio:.1f}x fewer FLOPs"
            ),
            holds=flash_report.time_ratio > 1.0
            and flash_report.flop_ratio > 1.0,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Temporal vs spatial attention over Make-A-Video inference",
        headers=[
            "attention", "module time ms (flash)",
            "module time ms (baseline)", "matmul TFLOPs",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Module time includes projections, rearranges and norms "
            "emitted by the attention modules (hook attribution).",
        ],
    )
