"""serve1: fleet serving under load, faults and hardware mixes.

The paper's closing argument — TTI/TTV deployment is a systems problem
— made quantitative: the same SD 2.1 / Muse service times every other
experiment uses are fed through the fleet simulator at ~70% offered
load, and the serving metrics a deployment team is paged on (p50/p95/
p99, goodput under deadline, utilization, availability) fall out.

Four seed-pinned scenarios on two pool configurations:

1. all-A100 pool, baseline attention, fault-free;
2. all-A100 pool, Flash Attention, fault-free — Table II's 1.6x SD
   service-time cut becomes a p95 cut at equal traffic;
3. all-A100 pool, Flash, with one server crashed mid-run — goodput
   and availability degrade, SLO-violation seconds appear;
4. mixed A100+H100 fleet (H100 service times profiled on that GPU, not
   scaled), Flash, fault-free — the Section V future-hardware point as
   extra fleet headroom.

Checked claims: Flash cuts p95 at equal load; a single crash
measurably costs goodput and violation seconds; the mixed fleet beats
the all-A100 fleet's p95; the fault-free fleet lands near its target
utilization.
"""

from __future__ import annotations

from repro.distributed.registry import machine_from_name
from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles, model_instance
from repro.ir.context import AttentionImpl
from repro.serving.faults import Crash, FaultSchedule, RetryPolicy
from repro.serving.fleet import (
    FleetReport,
    PoolSpec,
    affine_batch_latency,
    simulate_fleet,
)
from repro.serving.slo import SloReport, percentile, slo_report
from repro.serving.workload import WorkloadMix, generate_requests

EXPERIMENT_ID = "serve1"

MODELS = ("stable_diffusion", "muse")
SHARES = {"stable_diffusion": 0.7, "muse": 0.3}
SEED = 11
DURATION_S = 600.0
TARGET_LOAD = 0.7
A100_SERVERS = 4
CRASH = Crash(server=0, at_s=120.0, downtime_s=240.0)
RETRY = RetryPolicy(max_retries=2, backoff_s=1.0, timeout_s=None)


def _service_times(use_flash: bool) -> dict[str, float]:
    profiles = all_profiles()
    return {
        name: profiles[name][1 if use_flash else 0].total_time_s
        for name in MODELS
    }


def _h100_service_times() -> dict[str, float]:
    """Flash service times profiled on the H100, not peak-scaled."""
    from repro.profiler.profiler import profile_model

    gpu = machine_from_name("dgx-h100").gpu
    return {
        name: profile_model(
            model_instance(name), gpu=gpu,
            attention_impl=AttentionImpl.FLASH,
        ).total_time_s
        for name in MODELS
    }


def _pool(
    name: str, machine: str, servers: int, service_s: dict[str, float]
) -> PoolSpec:
    # Diffusion/TTI inference is compute-bound at serving batch sizes
    # (Section II-C: low-batch is the natural TTI regime), so batching
    # amortizes little: the batch-latency curve is close to linear.
    return PoolSpec(
        name=name,
        machine=machine,
        servers=servers,
        latency_fns={
            model: affine_batch_latency(time, marginal_fraction=0.7)
            for model, time in service_s.items()
        },
        max_batch=8,
    )


def _scenario(
    service_s: dict[str, float],
    pools: list[PoolSpec],
    *,
    faults: FaultSchedule,
    deadlines: dict[str, float],
) -> tuple[FleetReport, SloReport]:
    mix = WorkloadMix(shares=dict(SHARES), service_s=dict(service_s))
    # Offered load targets 70% of the single-request capacity of the
    # all-A100 configuration, so every scenario sees identical traffic
    # timing (the service times differ, the arrival process does not).
    arrival_rate = TARGET_LOAD * A100_SERVERS * mix.saturation_rate()
    requests = generate_requests(
        mix, arrival_rate=arrival_rate, duration_s=DURATION_S, seed=SEED
    )
    report = simulate_fleet(
        requests, pools, retry=RETRY, faults=faults
    )
    return report, slo_report(report, deadlines)


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    baseline_service = _service_times(use_flash=False)
    flash_service = _service_times(use_flash=True)
    h100_service = _h100_service_times()
    # Deadlines: 3x the flash service time per model, shared by every
    # scenario so goodput numbers are comparable across them.
    deadlines = {name: 3.0 * flash_service[name] for name in MODELS}
    one_crash = FaultSchedule(crashes=(CRASH,))

    scenarios: list[tuple[str, str, FleetReport, SloReport]] = []
    for label, service, faults in (
        ("a100x4 baseline", baseline_service, FaultSchedule()),
        ("a100x4 flash", flash_service, FaultSchedule()),
        ("a100x4 flash +crash", flash_service, one_crash),
    ):
        pools = [
            _pool("a100", "dgx-a100-80g", A100_SERVERS, service),
        ]
        report, slo = _scenario(
            service, pools, faults=faults, deadlines=deadlines
        )
        injected = "yes" if not faults.is_empty else "no"
        scenarios.append((label, injected, report, slo))
    mixed_pools = [
        _pool("a100", "dgx-a100-80g", 2, flash_service),
        _pool("h100", "dgx-h100", 2, h100_service),
    ]
    mixed_report, mixed_slo = _scenario(
        flash_service, mixed_pools, faults=FaultSchedule(),
        deadlines=deadlines,
    )
    scenarios.append(("a100x2+h100x2 flash", "no", mixed_report, mixed_slo))

    rows: list[list[object]] = []
    fleet_p95: dict[str, float] = {}
    for label, injected, report, slo in scenarios:
        latencies = [record.latency_s for record in report.completed]
        fleet_p95[label] = percentile(latencies, 95.0)
        utilization = ", ".join(
            f"{stats.name} {stats.utilization * 100:.0f}%"
            for stats in report.pools
        )
        rows.append(
            [
                label,
                injected,
                f"{percentile(latencies, 50.0):.2f}",
                f"{percentile(latencies, 95.0):.2f}",
                f"{percentile(latencies, 99.0):.2f}",
                f"{slo.goodput * 100:.1f}%",
                f"{slo.violation_s:.0f}",
                f"{slo.availability * 100:.2f}%",
                utilization,
            ]
        )

    baseline_label = "a100x4 baseline"
    flash_label = "a100x4 flash"
    crash_label = "a100x4 flash +crash"
    mixed_label = "a100x2+h100x2 flash"
    slo_by_label = {label: slo for label, _, _, slo in scenarios}
    report_by_label = {
        label: report for label, _, report, _ in scenarios
    }
    p95_cut = 1.0 - fleet_p95[flash_label] / fleet_p95[baseline_label]
    goodput_drop = (
        slo_by_label[flash_label].goodput
        - slo_by_label[crash_label].goodput
    )
    violation_added = (
        slo_by_label[crash_label].violation_s
        - slo_by_label[flash_label].violation_s
    )
    fault_free_util = report_by_label[flash_label].pools[0].utilization
    sd_speedup = (
        baseline_service["stable_diffusion"]
        / flash_service["stable_diffusion"]
    )
    claims = [
        ClaimCheck(
            claim="Flash Attention's service-time cut becomes a p95 "
            "latency cut at ~70% load, same traffic",
            paper=f"SD service time cut {sd_speedup:.2f}x (Table II)",
            measured=(
                f"fleet p95 {fleet_p95[baseline_label]:.2f}s -> "
                f"{fleet_p95[flash_label]:.2f}s "
                f"({p95_cut * 100:.0f}% lower)"
            ),
            holds=p95_cut >= 0.15,
        ),
        ClaimCheck(
            claim="one crashed server (240 s outage) measurably costs "
            "goodput and adds SLO-violation seconds",
            paper="availability is a serving metric, not a given",
            measured=(
                f"goodput -{goodput_drop * 100:.1f}pp, "
                f"+{violation_added:.0f} violation-seconds, "
                f"availability "
                f"{slo_by_label[crash_label].availability * 100:.2f}%"
            ),
            holds=goodput_drop > 0.0 and violation_added > 10.0,
        ),
        ClaimCheck(
            claim="a mixed A100+H100 fleet beats the all-A100 fleet's "
            "p95 at identical traffic",
            paper="future hardware as fleet headroom (Section V)",
            measured=(
                f"p95 {fleet_p95[flash_label]:.2f}s (A100x4) vs "
                f"{fleet_p95[mixed_label]:.2f}s (mixed)"
            ),
            holds=fleet_p95[mixed_label] < fleet_p95[flash_label],
        ),
        ClaimCheck(
            claim="the fault-free flash fleet runs near its 70% load "
            "target (dynamic batching absorbs part of it)",
            paper="70% offered load",
            measured=f"A100 pool utilization {fault_free_util * 100:.0f}%",
            holds=0.40 <= fault_free_util <= 0.85,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Fleet serving: Flash speedup, fault injection and "
        "hardware mix at ~70% load",
        headers=[
            "scenario", "fault", "p50 s", "p95 s", "p99 s", "goodput",
            "violation s", "avail", "pool utilization",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Deadlines are 3x each model's Flash service time; traffic "
            "is one seed-pinned Poisson stream shared by all scenarios.",
            "H100 pool service times are profiled on the H100 spec, "
            "not peak-ratio scaled.",
        ],
    )
