"""Figure 1: fleet-wide GPUs-per-parameter and memory utilization."""

from __future__ import annotations

from repro.analysis.fleet import summarize_fleet, synthesize_fleet
from repro.experiments.base import ClaimCheck, ExperimentResult

EXPERIMENT_ID = "fig1"


def run(num_jobs: int = 120, seed: int = 2024) -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    jobs = synthesize_fleet(num_jobs=num_jobs, seed=seed)
    summary = summarize_fleet(jobs)
    rows = [
        [
            "LLM",
            sum(1 for job in jobs if job.workload == "llm"),
            f"{summary.llm_gpus_per_param:.3e}",
            f"{summary.llm_memory_utilization:.2f}",
        ],
        [
            "TTI/TTV",
            sum(1 for job in jobs if job.workload != "llm"),
            f"{summary.tti_gpus_per_param:.3e}",
            f"{summary.tti_memory_utilization:.2f}",
        ],
    ]
    ratio = summary.gpus_per_param_ratio
    mem_ratio = summary.memory_utilization_ratio
    claims = [
        ClaimCheck(
            claim="TTI models use ~14x more GPUs per parameter than LLMs",
            paper="14x",
            measured=f"{ratio:.1f}x",
            holds=8.0 <= ratio <= 22.0,
        ),
        ClaimCheck(
            claim="TTI memory utilization ~1.4x (roughly 10pp higher)",
            paper="1.4x",
            measured=f"{mem_ratio:.2f}x",
            holds=1.2 <= mem_ratio <= 1.6,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Fleet-wide GPUs/parameter and memory utilization",
        headers=["workload", "jobs", "gpus/param", "mem util"],
        rows=rows,
        claims=claims,
        notes=[
            "Fleet telemetry is proprietary; jobs are synthesized to the "
            "published aggregate ratios (see DESIGN.md substitutions).",
        ],
    )
