"""Figure 12: L1/L2 cache hit rates for spatial vs temporal attention.

The paper reads these from NVIDIA Nsight Compute; we replay the
attention kernels' address streams through the set-associative cache
simulator (see repro.kernels.attention for the mechanism).
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.ir.ops import AttentionInfo, AttentionKind, AttentionRole
from repro.kernels.attention import simulate_attention_cache

EXPERIMENT_ID = "fig12"


def attention_configs(
    *,
    grid: int = 64,
    frames: int = 16,
    channels: int = 512,
    head_dim: int = 64,
    batch: int = 1,
) -> tuple[AttentionInfo, AttentionInfo]:
    """(spatial, temporal) attention configs at a Make-A-Video-like
    operating point: 64x64 latent grid, 16 frames."""
    heads = max(1, channels // head_dim)
    pixels = grid * grid
    spatial = AttentionInfo(
        role=AttentionRole.SELF,
        kind=AttentionKind.SPATIAL,
        seq_q=pixels,
        seq_kv=pixels,
        head_dim=head_dim,
        num_heads=heads,
        batch=batch * frames,
    )
    temporal = AttentionInfo(
        role=AttentionRole.SELF,
        kind=AttentionKind.TEMPORAL,
        seq_q=frames,
        seq_kv=frames,
        head_dim=head_dim,
        num_heads=heads,
        batch=batch * pixels,
        element_stride_bytes=pixels * channels * 2,
    )
    return spatial, temporal


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    spatial_info, temporal_info = attention_configs()
    spatial = simulate_attention_cache(spatial_info)
    temporal = simulate_attention_cache(temporal_info)
    rows = []
    for kernel in ("gemm", "softmax", "elementwise"):
        spatial_rates = spatial.as_dict()[kernel]
        temporal_rates = temporal.as_dict()[kernel]
        rows.append(
            [
                kernel,
                f"{spatial_rates['l1']*100:.1f}%",
                f"{temporal_rates['l1']*100:.1f}%",
                f"{spatial_rates['l2']*100:.1f}%",
                f"{temporal_rates['l2']*100:.1f}%",
            ]
        )
    eps = 0.02  # hit-rate resolution floor for ratio claims
    gemm_l1_gap = spatial.gemm.l1_hit_rate / max(
        temporal.gemm.l1_hit_rate, eps
    )
    softmax_l1_gap = spatial.softmax.l1_hit_rate / max(
        temporal.softmax.l1_hit_rate, eps
    )
    gemm_l2_gap = spatial.gemm.l2_hit_rate / max(
        temporal.gemm.l2_hit_rate, eps
    )
    claims = [
        ClaimCheck(
            claim="temporal GEMM L1 hit rate is ~10x lower",
            paper="~10x lower",
            measured=(
                f"{spatial.gemm.l1_hit_rate*100:.0f}% vs "
                f"{temporal.gemm.l1_hit_rate*100:.0f}% "
                f"({gemm_l1_gap:.0f}x)"
            ),
            holds=gemm_l1_gap >= 8.0,
        ),
        ClaimCheck(
            claim="temporal softmax L1 hit rate is ~10x lower",
            paper="~10x lower",
            measured=(
                f"{spatial.softmax.l1_hit_rate*100:.0f}% vs "
                f"{temporal.softmax.l1_hit_rate*100:.0f}% "
                f"({softmax_l1_gap:.0f}x)"
            ),
            holds=softmax_l1_gap >= 8.0,
        ),
        ClaimCheck(
            claim="temporal GEMM L2 hit rate is ~10x lower",
            paper="~10x lower",
            measured=(
                f"{spatial.gemm.l2_hit_rate*100:.0f}% vs "
                f"{temporal.gemm.l2_hit_rate*100:.0f}% "
                f"({gemm_l2_gap:.0f}x)"
            ),
            holds=gemm_l2_gap >= 8.0,
        ),
        ClaimCheck(
            claim="temporal softmax/elementwise L2 hit rates are the "
            "same or higher",
            paper="same or higher",
            measured=(
                f"softmax {temporal.softmax.l2_hit_rate*100:.0f}% vs "
                f"{spatial.softmax.l2_hit_rate*100:.0f}%; elementwise "
                f"{temporal.elementwise.l2_hit_rate*100:.0f}% vs "
                f"{spatial.elementwise.l2_hit_rate*100:.0f}%"
            ),
            holds=(
                temporal.softmax.l2_hit_rate
                >= spatial.softmax.l2_hit_rate - 0.01
                and temporal.elementwise.l2_hit_rate
                >= spatial.elementwise.l2_hit_rate - 0.01
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Simulated cache hit rates during spatial vs temporal "
        "attention (A100 geometry)",
        headers=[
            "kernel", "L1 spatial", "L1 temporal", "L2 spatial",
            "L2 temporal",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Nsight Compute is replaced by a trace-driven cache "
            "simulator fed with the kernels' address streams "
            "(DESIGN.md substitutions).",
        ],
    )
