"""Figure 7: sequence length over the course of inference."""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.models.registry import DISPLAY_NAMES
from repro.profiler.seqlen import fundamental_period, sequence_length_profile

EXPERIMENT_ID = "fig7"

_MODELS = ("stable_diffusion", "imagen", "muse", "parti")

# The figure profiles the *generator* component of each pipeline (the
# paper's plots exclude the text encoders).
_GENERATOR_MARKER = {
    "stable_diffusion": "unet",
    "imagen": "base_unet",
    "muse": "base_transformer",
    "parti": "decoder",
}


def profiles_per_model() -> dict[str, list[int]]:
    """Self-attention seq_q per call, truncated to a displayable window."""
    out: dict[str, list[int]] = {}
    for name in _MODELS:
        baseline, _ = all_profiles()[name]
        marker = _GENERATOR_MARKER[name]
        generator_trace = baseline.trace.filter(
            lambda event, marker=marker: marker
            in event.module_path.split(".")
        )
        samples = sequence_length_profile(generator_trace)
        period = fundamental_period(samples)
        # Figure 7 truncates to the fundamental period; cap the window
        # for plotting-equivalent output.
        window = period if len(period) < len(samples) else samples[:96]
        out[name] = [sample.seq_q for sample in window]
    return out


def _is_u_shaped(values: list[int]) -> bool:
    """Down-then-up within one UNet pass (allowing plateaus)."""
    if len(values) < 3:
        return False
    low = values.index(min(values))
    descent = values[: low + 1]
    ascent = values[low:]
    return (
        low not in (0, len(values) - 1)
        and all(a >= b for a, b in zip(descent, descent[1:]))
        and all(a <= b for a, b in zip(ascent, ascent[1:]))
    )


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    per_model = profiles_per_model()
    rows = []
    for name, values in per_model.items():
        preview = ", ".join(str(v) for v in values[:12])
        if len(values) > 12:
            preview += ", ..."
        rows.append(
            [
                DISPLAY_NAMES[name],
                len(values),
                min(values),
                max(values),
                preview,
            ]
        )
    sd = per_model["stable_diffusion"]
    imagen = per_model["imagen"]
    muse = per_model["muse"]
    parti = per_model["parti"]
    sd_range = max(sd) / min(sd)
    claims = [
        ClaimCheck(
            claim="diffusion sequence length varies cyclically "
            "(U-shaped per UNet pass)",
            paper="U-shaped, cyclic",
            measured=f"SD {'U-shaped' if _is_u_shaped(sd) else 'not U'}, "
            f"Imagen {'U-shaped' if _is_u_shaped(imagen) else 'not U'}",
            holds=_is_u_shaped(sd) and _is_u_shaped(imagen),
        ),
        ClaimCheck(
            claim="SD sequence length varies by at least 4x "
            "(peaking at 4096)",
            paper=">=4x, max 4096",
            measured=f"{sd_range:.0f}x, max {max(sd)}",
            holds=sd_range >= 4.0 and max(sd) == 4096,
        ),
        ClaimCheck(
            claim="Muse sequence length is constant (parallel decoding)",
            paper="flat",
            measured=f"{min(muse)}..{max(muse)}",
            holds=min(muse) == max(muse),
        ),
        ClaimCheck(
            claim="Parti sequence length increases over inference "
            "(autoregressive)",
            paper="linear ramp",
            measured=f"{parti[0]} -> {parti[-1]}",
            holds=parti == sorted(parti) and parti[-1] > parti[0],
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Self-attention sequence length over inference "
        "(fundamental period)",
        headers=["model", "calls", "min", "max", "profile"],
        rows=rows,
        claims=claims,
        notes=[
            "Parti's ramp is a staircase because decode steps are "
            "bucketed (32 steps per bucket) for trace-size control.",
        ],
    )
