"""Table III + Section IV-B: prefill/decode correspondence.

Two parts:

1. The correspondence table itself — which phase of LLM inference each
   TTI architecture's generation step resembles, verified by the shapes
   our attention layers actually emit.
2. The quantitative consequence: Flash-Attention *kernel* speedup at
   prefill-like shapes (diffusion: all pixels at once) is 1.1-2.5x
   greater than at decode-like shapes (transformer TTI), and the
   attention-module speedups across the suite reflect that.
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.ir.context import AttentionImpl, ExecutionContext
from repro.ir.ops import AttentionKind, AttentionRole
from repro.layers.attention import emit_attention_core
from repro.models.registry import DISPLAY_NAMES
from repro.profiler.breakdown import speedup_report

EXPERIMENT_ID = "table3"

DIFFUSION = ("imagen", "stable_diffusion", "prod_image", "make_a_video")
TRANSFORMER = ("muse", "parti", "phenaki")


def attention_kernel_speedup(
    seq_q: int, seq_kv: int, *, batch: int = 8, num_heads: int = 8,
    head_dim: int = 64,
) -> float:
    """Baseline-vs-Flash speedup of one attention call at given shape."""
    times = {}
    for impl in (AttentionImpl.BASELINE, AttentionImpl.FLASH):
        ctx = ExecutionContext(attention_impl=impl)
        emit_attention_core(
            ctx,
            batch=batch,
            num_heads=num_heads,
            seq_q=seq_q,
            seq_kv=seq_kv,
            head_dim=head_dim,
            role=AttentionRole.SELF,
            kind=AttentionKind.TOKEN,
        )
        times[impl] = ctx.trace.total_time_s
    return times[AttentionImpl.BASELINE] / times[AttentionImpl.FLASH]


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    rows = [
        ["LLM", "1st token (whole prompt)", "2nd token (1xN query)"],
        ["Diffusion", "all pixels at once (prefill-like)", "n/a"],
        ["Transformer TTI", "process text prompt",
         "autoregressive tokens (decode-like)"],
    ]
    prefill_speedup = attention_kernel_speedup(4096, 4096)
    decode_speedup = attention_kernel_speedup(1, 4096)
    kernel_ratio = prefill_speedup / decode_speedup

    module_speedups = {
        name: speedup_report(
            baseline.trace, flash.trace
        ).attention_module_speedup
        for name, (baseline, flash) in all_profiles().items()
    }
    diffusion_mean = sum(
        module_speedups[name] for name in DIFFUSION
    ) / len(DIFFUSION)
    transformer_mean = sum(
        module_speedups[name] for name in TRANSFORMER
    ) / len(TRANSFORMER)
    suite_ratio = diffusion_mean / transformer_mean
    claims = [
        ClaimCheck(
            claim="prefill-shaped attention gains far more from Flash "
            "than decode-shaped",
            paper="prefill >> decode",
            measured=(
                f"prefill {prefill_speedup:.2f}x vs decode "
                f"{decode_speedup:.2f}x ({kernel_ratio:.1f}x greater)"
            ),
            holds=prefill_speedup > 1.5 * decode_speedup,
        ),
        ClaimCheck(
            claim="diffusion attention-module speedup is 1.1-2.5x greater "
            "than transformer TTI",
            paper="1.1-2.5x greater",
            measured=(
                f"diffusion mean {diffusion_mean:.2f}x vs transformer "
                f"mean {transformer_mean:.2f}x = {suite_ratio:.2f}x"
            ),
            holds=1.1 <= suite_ratio <= 2.5,
        ),
    ]
    notes = [
        "attention-module speedups (incl. projections): "
        + ", ".join(
            f"{DISPLAY_NAMES[name]} {value:.2f}x"
            for name, value in module_speedups.items()
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Prefill/decode correspondence across architectures",
        headers=["architecture", "prefill analog", "decode analog"],
        rows=rows,
        claims=claims,
        notes=notes,
    )
