"""Figure 10: tensor-dimension rearrangement for spatial vs temporal
attention.

A shape-algebra check: both attention flavours view the same
(B, C, F, H, W) activation, but spatial attention folds frames into the
batch (sequence = H*W) while temporal attention folds pixels into the
batch (sequence = F).
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.ir.ops import AttentionKind
from repro.ir.tensor import TensorSpec
from repro.layers.attention import TemporalAttentionLayer

EXPERIMENT_ID = "fig10"


def spatial_view(
    batch: int, channels: int, frames: int, h: int, w: int
) -> tuple[int, int, int]:
    """(effective batch, sequence, width) for spatial attention."""
    return (batch * frames, h * w, channels)


def temporal_view(
    batch: int, channels: int, frames: int, h: int, w: int
) -> tuple[int, int, int]:
    """(effective batch, sequence, width) for temporal attention."""
    return (batch * h * w, frames, channels)


def run(
    batch: int = 1, channels: int = 512, frames: int = 16,
    h: int = 32, w: int = 32,
) -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    spatial = spatial_view(batch, channels, frames, h, w)
    temporal = temporal_view(batch, channels, frames, h, w)
    layer = TemporalAttentionLayer(channels)
    info = layer.attention_info(
        TensorSpec((batch, channels, frames, h, w))
    )
    rows = [
        ["spatial", *spatial, "image size (H*W)"],
        ["temporal", *temporal, "number of frames (F)"],
    ]
    claims = [
        ClaimCheck(
            claim="spatial sequence length is proportional to image size",
            paper="seq = H*W",
            measured=f"{spatial[1]} (= {h}*{w})",
            holds=spatial[1] == h * w,
        ),
        ClaimCheck(
            claim="temporal sequence length is the frame count",
            paper="seq = F",
            measured=f"{temporal[1]}",
            holds=temporal[1] == frames
            and info.seq_q == frames
            and info.kind is AttentionKind.TEMPORAL,
        ),
        ClaimCheck(
            claim="element count is preserved by the rearrange",
            paper="pure layout change",
            measured=f"{spatial[0]*spatial[1]*spatial[2]} elements",
            holds=(
                spatial[0] * spatial[1] * spatial[2]
                == temporal[0] * temporal[1] * temporal[2]
            ),
        ),
        ClaimCheck(
            claim="the temporal layer folds pixels into the batch",
            paper="other dims shift into batch size",
            measured=f"batch {info.batch} (= B*H*W)",
            holds=info.batch == batch * h * w,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Q/K/V layout for spatial vs temporal attention on a "
        f"(B={batch}, C={channels}, F={frames}, H={h}, W={w}) activation",
        headers=["kind", "batch", "seq len", "width", "seq governed by"],
        rows=rows,
        claims=claims,
    )
