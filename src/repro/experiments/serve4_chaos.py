"""serve4: correlated failure domains and recovery orchestration.

serve2 protects a fleet against *independent* faults; this experiment
injects the failure mode that actually dominates availability budgets
— a whole zone dropping at once — and measures what the recovery path
does to the retry storm that follows.  A three-zone fleet (one pool
per zone, warm standbys in each) serves the SD 2.1 / Muse flash mix
while a chaos campaign takes zone 0 down for two minutes mid-run and
degrades zone 2's interconnect later (the collective slowdown comes
from the sharded-profiler's measured communication fraction, not a
guessed scalar).  Four arms:

1. **no-chaos** — the same fleet and traffic with no campaign (the
   availability baseline);
2. **unprotected** — campaign on, no resilience, synchronized
   recovery: every crashed server rejoins at the same instant and the
   accumulated retry backlog slams into the restored zone;
3. **all-on** — serve2's full protection stack (admission, breaker,
   hedging, profiled brownout ladder), still synchronized recovery;
4. **all-on+orchestration** — the same stack plus a compiled recovery
   plan: warm standbys outside the failed domain are promoted at
   detection time and the zone is re-admitted server-by-server with a
   stagger that spreads the thundering herd.

Every arm runs on *both* fleet engines and the reports must agree
bit-for-bit — chaos campaigns are part of the engine-equivalence
contract, not an oracle-only feature.  Every report must also pass
the chaos invariant checker (terminal-state uniqueness, conservation,
clock monotonicity, bounded quality debt): correlated failures may
degrade service arbitrarily but must never corrupt the accounting.
"""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.serve2_resilience import (
    _degraded_service_times,
    _rung,
)
from repro.experiments.suite_cache import all_profiles, model_instance
from repro.profiler.distributed import profile_sharded
from repro.serving.chaos import check_invariants
from repro.serving.columnar import simulate_fleet_columnar
from repro.serving.domains import (
    DegradedLink,
    OrchestrationConfig,
    ZoneOutage,
    compile_campaign,
    topology_for_pools,
)
from repro.serving.faults import RetryPolicy
from repro.serving.fleet import (
    PoolSpec,
    affine_batch_latency,
    simulate_fleet,
)
from repro.serving.resilience import (
    RESILIENCE_OFF,
    AdmissionConfig,
    BrownoutConfig,
    CircuitBreakerConfig,
    HedgeConfig,
    ResilienceConfig,
)
from repro.serving.slo import domain_slo_report, percentile, slo_report
from repro.serving.workload import WorkloadMix, generate_requests

EXPERIMENT_ID = "serve4"

MODELS = ("stable_diffusion", "muse")
SHARES = {"stable_diffusion": 0.7, "muse": 0.3}
SEED = 41
DURATION_S = 600.0
ZONES = 3
SERVERS_PER_ZONE = 3
STANDBY_PER_ZONE = 2
LOAD = 0.7
OUTAGE = dict(at_s=150.0, duration_s=120.0, stagger_s=6.0)
DEGRADED = dict(at_s=380.0, duration_s=90.0, bandwidth_factor=0.25)
# Deliberately aggressive: short backoff and many attempts make the
# synchronized-recovery retry storm visible.
RETRY = RetryPolicy(
    max_retries=4, backoff_s=0.5, multiplier=2.0, max_backoff_s=4.0,
    jitter=0.5, timeout_s=30.0,
)
ORCHESTRATION = OrchestrationConfig(
    detection_delay_s=10.0, readmission_stagger_s=8.0,
    promote_stagger_s=2.0,
)


def _flash_service_times() -> dict[str, float]:
    profiles = all_profiles()
    return {name: profiles[name][1].total_time_s for name in MODELS}


def _pools(service_s: dict[str, float]) -> list[PoolSpec]:
    latency_fns = {
        model: affine_batch_latency(time, marginal_fraction=0.7)
        for model, time in service_s.items()
    }
    return [
        PoolSpec(
            name=f"zone{zone}",
            machine="dgx-a100-80g",
            servers=SERVERS_PER_ZONE,
            latency_fns=latency_fns,
            max_batch=8,
            max_servers=SERVERS_PER_ZONE + STANDBY_PER_ZONE,
            zone=zone,
        )
        for zone in range(ZONES)
    ]


def _comm_fraction() -> float:
    """Measured exposed-collective share of a TP-2 SD replica."""
    return profile_sharded(
        model_instance("stable_diffusion"),
        machine="dgx-a100-80g", world=2, strategy="tp",
    ).comm_fraction


def _campaign_events(comm_fraction: float):
    return [
        ZoneOutage(zone=0, **OUTAGE),
        DegradedLink(
            scope="zone", index=2, comm_fraction=comm_fraction,
            **DEGRADED,
        ),
    ]


def _resilience(deadlines: dict[str, float]) -> ResilienceConfig:
    """serve2's full protection stack, profiled brownout included."""
    return ResilienceConfig(
        admission=AdmissionConfig(
            max_queue_depth=64,
            wait_budget_s={
                model: 2.0 * deadline
                for model, deadline in deadlines.items()
            },
        ),
        breaker=CircuitBreakerConfig(
            failure_threshold=3, window_s=60.0, cooldown_s=30.0,
            slow_factor=2.5,
        ),
        hedge=HedgeConfig(quantile=95.0, min_samples=30),
        brownout=BrownoutConfig(
            rungs=(
                _rung(1, _degraded_service_times(1)),
                _rung(2, _degraded_service_times(2)),
            ),
            step_down_backlog=4.0,
            step_up_backlog=1.0,
            check_interval_s=5.0,
            dwell_s=10.0,
        ),
    )


def _run_scenarios():
    """All four arms on both engines, with invariant verdicts.

    Returns ``(scenarios, deadlines)`` where each scenario is a dict
    with the arm label, the (oracle) report, its SLO and domain
    reports, the engine bit-equality flag, and both engines'
    invariant verdicts.
    """
    service = _flash_service_times()
    deadlines = {name: 3.0 * service[name] for name in MODELS}
    pools = _pools(service)
    topology = topology_for_pools(pools)
    mix = WorkloadMix(shares=dict(SHARES), service_s=dict(service))
    capacity = ZONES * SERVERS_PER_ZONE * mix.saturation_rate()
    requests = generate_requests(
        mix, arrival_rate=LOAD * capacity, duration_s=DURATION_S,
        seed=SEED,
    )
    events = _campaign_events(_comm_fraction())
    plain = compile_campaign(
        topology, events, pools=pools, seed=SEED
    )
    orchestrated = compile_campaign(
        topology, events, pools=pools, seed=SEED,
        orchestration=ORCHESTRATION,
    )
    protection = _resilience(deadlines)
    arms = [
        ("no-chaos", None, RESILIENCE_OFF),
        ("unprotected", plain, RESILIENCE_OFF),
        ("all-on", plain, protection),
        ("all-on+orchestration", orchestrated, protection),
    ]
    empty = compile_campaign(topology, [], pools=pools, seed=SEED)
    scenarios = []
    for label, compiled, resilience in arms:
        faults = compiled.faults if compiled is not None else None
        plan = compiled.plan if compiled is not None else None
        kwargs = dict(
            retry=RETRY, resilience=resilience, plan=plan
        )
        if faults is not None:
            kwargs["faults"] = faults
        oracle = simulate_fleet(requests, pools, **kwargs)
        columnar = simulate_fleet_columnar(
            requests, pools, **kwargs
        ).to_report()
        brownout = resilience.brownout
        scenarios.append({
            "label": label,
            "report": oracle,
            "slo": slo_report(oracle, deadlines),
            "domains": domain_slo_report(
                oracle, compiled if compiled is not None else empty
            ),
            "engines_identical": oracle == columnar,
            "invariants": tuple(
                check_invariants(requests, rep, brownout=brownout)
                for rep in (oracle, columnar)
            ),
        })
    return scenarios, deadlines


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    scenarios, _ = _run_scenarios()
    by_label = {entry["label"]: entry for entry in scenarios}
    rows: list[list[object]] = []
    p99: dict[str, float] = {}
    for entry in scenarios:
        report = entry["report"]
        latencies = [
            record.latency_s for record in report.completed
        ]
        p99[entry["label"]] = percentile(latencies, 99.0)
        zone0 = entry["domains"].domain("zone:0")
        rows.append([
            entry["label"],
            f"{percentile(latencies, 50.0):.2f}",
            f"{p99[entry['label']]:.2f}",
            f"{entry['slo'].goodput * 100:.1f}%",
            len(report.completed),
            len(report.shed),
            len(report.failed),
            f"{zone0.availability * 100:.2f}%",
            (
                "—" if zone0.mttr_s is None
                else f"{zone0.mttr_s:.0f}s"
            ),
        ])

    baseline = by_label["no-chaos"]
    storm = by_label["unprotected"]
    protected = by_label["all-on"]
    managed = by_label["all-on+orchestration"]
    engines_ok = all(
        entry["engines_identical"] for entry in scenarios
    )
    invariants_ok = all(
        verdict.ok
        for entry in scenarios
        for verdict in entry["invariants"]
    )
    zone0_managed = managed["domains"].domain("zone:0")
    claims = [
        ClaimCheck(
            claim="a zone outage with synchronized recovery degrades "
            "the unprotected fleet: goodput drops and the "
            "post-recovery retry surge inflates tail latency",
            paper="correlated failures dominate availability budgets",
            measured=(
                f"goodput {baseline['slo'].goodput * 100:.1f}% -> "
                f"{storm['slo'].goodput * 100:.1f}%, "
                f"failed {len(baseline['report'].failed)} -> "
                f"{len(storm['report'].failed)}, p99 "
                f"{p99['no-chaos']:.1f}s -> {p99['unprotected']:.1f}s"
            ),
            holds=(
                storm["slo"].goodput < baseline["slo"].goodput
                and p99["unprotected"] > p99["no-chaos"]
            ),
        ),
        ClaimCheck(
            claim="recovery orchestration — standby promotion at "
            "detection plus staggered re-admission — improves "
            "goodput over the same protection stack with "
            "synchronized recovery",
            paper="recovery shape matters as much as protection",
            measured=(
                f"goodput {protected['slo'].goodput * 100:.1f}% -> "
                f"{managed['slo'].goodput * 100:.1f}%, p99 "
                f"{p99['all-on']:.1f}s -> "
                f"{p99['all-on+orchestration']:.1f}s"
            ),
            holds=(
                managed["slo"].goodput > protected["slo"].goodput
            ),
        ),
        ClaimCheck(
            claim="both engines replay every chaos arm "
            "bit-identically — correlated campaigns and recovery "
            "plans are inside the engine-equivalence contract",
            paper="columnar-engine contract (bit-exact oracle parity)",
            measured=(
                f"{len(scenarios)} arms compared, "
                f"{'all' if engines_ok else 'NOT all'} bit-identical"
            ),
            holds=engines_ok,
        ),
        ClaimCheck(
            claim="the invariant checker passes on every arm and "
            "engine: chaos degrades service, never the accounting",
            paper="simulator invariant (no lost or invented requests)",
            measured=(
                f"{sum(len(e['invariants']) for e in scenarios)} "
                f"reports checked, "
                f"{'0' if invariants_ok else 'some'} violations"
            ),
            holds=invariants_ok,
        ),
        ClaimCheck(
            claim="domain SLO accounting resolves the outage: MTTD "
            "equals the configured detection delay and the hit "
            "zone's availability reflects the outage window",
            paper="MTTR/MTTD as first-class serving metrics",
            measured=(
                f"zone:0 MTTD "
                f"{zone0_managed.mttd_s:.0f}s "
                f"(configured {ORCHESTRATION.detection_delay_s:.0f}s),"
                f" availability {zone0_managed.availability * 100:.1f}%"
            ),
            holds=(
                zone0_managed.mttd_s is not None
                and abs(
                    zone0_managed.mttd_s
                    - ORCHESTRATION.detection_delay_s
                ) < 1e-9
                and zone0_managed.availability < 1.0
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Correlated zone failure: chaos campaign, retry storm, "
        "and recovery orchestration",
        headers=[
            "scenario", "p50 s", "p99 s", "goodput", "completed",
            "shed", "failed", "zone0 avail", "zone0 MTTR",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Campaign: zone 0 down for 120s mid-run (staggered "
            "crashes), zone 2's interconnect at quarter bandwidth "
            "for 90s with the collective share measured by the "
            "TP-2 sharded profile.",
            "The retry policy is deliberately aggressive (4 retries, "
            "0.5s base backoff) so synchronized recovery produces a "
            "visible thundering herd.",
            "Every arm runs on both fleet engines; reports must be "
            "bit-identical and pass the chaos invariant checker.",
            "The overload-tuned protection stack alone can *hurt* "
            "under correlated recovery (hedges and brownout react to "
            "the backlog but not to its cause); pairing it with "
            "recovery orchestration recovers the loss.",
        ],
    )
