"""CLI harness: regenerate any (or every) table/figure of the paper.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig6 table2
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import dist2_planner, dist_future_hw
from repro.experiments import fig01_fleet, fig04_pareto, fig05_roofline
from repro.experiments import fig06_op_breakdown, fig07_seqlen_profile
from repro.experiments import fig08_seqlen_distribution, fig09_image_scaling
from repro.experiments import fig10_layouts, fig11_temporal_cost
from repro.experiments import fig12_cache, fig13_frame_scaling
from repro.experiments import obs1_attribution
from repro.experiments import serve1_fleet, serve2_resilience
from repro.experiments import serve3_traffic, serve4_chaos
from repro.experiments import table1_taxonomy, table2_speedup
from repro.experiments import table3_prefill_decode
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": fig01_fleet.run,
    "fig4": fig04_pareto.run,
    "fig5": fig05_roofline.run,
    "table1": table1_taxonomy.run,
    "fig6": fig06_op_breakdown.run,
    "table2": table2_speedup.run,
    "table3": table3_prefill_decode.run,
    "fig7": fig07_seqlen_profile.run,
    "fig8": fig08_seqlen_distribution.run,
    "fig9": fig09_image_scaling.run,
    "fig10": fig10_layouts.run,
    "fig11": fig11_temporal_cost.run,
    "fig12": fig12_cache.run,
    "fig13": fig13_frame_scaling.run,
    "dist1": dist_future_hw.run,
    "dist2": dist2_planner.run,
    "serve1": serve1_fleet.run,
    "serve2": serve2_resilience.run,
    "serve3": serve3_traffic.run,
    "serve4": serve4_chaos.run,
    "obs1": obs1_attribution.run,
}


def run_experiments(names: list[str]) -> list[ExperimentResult]:
    """Run experiments by id; 'all' expands to the full set."""
    expanded: list[str] = []
    for name in names:
        if name == "all":
            expanded.extend(EXPERIMENTS)
        elif name in EXPERIMENTS:
            expanded.append(name)
        else:
            raise ValueError(
                f"unknown experiment {name!r}; known: "
                f"{', '.join(EXPERIMENTS)}, all"
            )
    return [EXPERIMENTS[name]() for name in expanded]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (fig1..fig13, table1..table3, "
             "dist1..dist2, serve1..serve4) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write results as JSON (for plotting pipelines)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments or ["all"]
    try:
        results = run_experiments(names)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps([result.to_dict() for result in results], indent=2)
        )
    failures = 0
    for result in results:
        print(result.render())
        print()
        failures += sum(1 for claim in result.claims if not claim.holds)
    total_claims = sum(len(result.claims) for result in results)
    print(
        f"== {len(results)} experiments, "
        f"{total_claims - failures}/{total_claims} claims hold =="
    )
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
