"""serve3: client-structured traffic flips an admission-control call.

serve1 and serve2 drive the fleet with (rate-modulated) Poisson
arrivals — every request exchangeable with every other.  ServeGen
(arXiv:2505.09999) shows production traffic is client-structured
instead: per-client rates are heavy-tailed, clients burst on and off,
and clients differ in what they ask for.  This experiment makes the
systems consequence concrete: the *same* admission-control policy,
judged at the *same offered load*, is the right call under
client-structured traffic and the wrong call under Poisson traffic.

Setup: a client population over the flash-profiled SD 2.1 / Muse
service times (with denoising-step and image-size request properties),
run through a launch-day-spike scenario, and its :func:`poissonized`
twin — the identical request multiset (same count, same service-time
and model composition) re-arrived as homogeneous Poisson.  Each trace
is simulated with admission control off and on; goodput decides.

The admission front door is a token bucket refilled at 1.05x the
trace's own average rate (plus queue-depth and estimated-wait caps) —
a sound configuration *if* arrivals were Poisson.  Under
client-structured traffic the spike plus per-client bursts spend long
stretches far above the average, piling queues beyond the deadline
horizon; shedding that excess protects everyone else and admission
*raises* goodput.  Under the Poisson twin the same offered load never
sustains excursions, so the bucket only trims ordinary fluctuation —
requests that would have finished on time — and admission *lowers*
goodput.  A capacity plan or policy choice validated on
Poisson arrivals therefore mis-ranks the configurations — the paper's
deployability argument needs the traffic model, not just the cost
model.  The committed golden (``tests/golden/serve3.json``) pins the
flip exactly; the per-tier breakdown (:func:`tier_slo_report`) shows
the heavy tier both causes and absorbs most of the damage.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles
from repro.serving.fleet import (
    PoolSpec,
    affine_batch_latency,
    simulate_fleet,
)
from repro.serving.resilience import (
    RESILIENCE_OFF,
    AdmissionConfig,
    ResilienceConfig,
)
from repro.serving.slo import slo_report, tier_slo_report
from repro.serving.traffic import (
    BurstModel,
    ClientPopulation,
    ModelTrafficCard,
    TrafficTrace,
    apply_scenario,
    generate_traffic,
    launch_day_spike,
    poissonized,
    steps_spec,
)

EXPERIMENT_ID = "serve3"

MODELS = ("stable_diffusion", "muse")
SHARES = {"stable_diffusion": 0.7, "muse": 0.3}
SEED = 11
POISSON_SEED = 12
DURATION_S = 1800.0
SERVERS = 6
N_CLIENTS = 400
BASE_LOAD = 0.62
TAIL_ALPHA = 1.6
BURST = BurstModel(mean_on_s=60.0, mean_off_s=600.0, on_factor=8.0)
DISPERSION_BIN_S = 60.0
RATE_HEADROOM = 1.05
BUCKET_BURST = 30.0


def _flash_service_times() -> dict[str, float]:
    profiles = all_profiles()
    return {name: profiles[name][1].total_time_s for name in MODELS}


def _population(service: dict[str, float]) -> ClientPopulation:
    """The launch-day client base over the profiled service times.

    SD requests vary their denoising-step count (the base service time
    is the 20-step point; 30- and 50-step variants scale it), Muse
    requests are fixed-shape.  ``mean_rate_per_client`` is solved so
    the *time-average* offered load — including the spike window —
    lands at ``BASE_LOAD``-weighted capacity.
    """
    cards = (
        ModelTrafficCard(
            name="stable_diffusion",
            base_service_s=service["stable_diffusion"],
            share=SHARES["stable_diffusion"],
            properties=(steps_spec(),),
        ),
        ModelTrafficCard(
            name="muse",
            base_service_s=service["muse"],
            share=SHARES["muse"],
            properties=(),
        ),
    )
    base = ClientPopulation(
        cards=cards,
        n_clients=N_CLIENTS,
        mean_rate_per_client=1.0,  # placeholder, rescaled below
        tail_alpha=TAIL_ALPHA,
        burst=BURST,
        model_loyalty=0.5,
        property_spread=1.5,
    )
    capacity = SERVERS / base.mean_service_s()
    population = ClientPopulation(
        cards=cards,
        n_clients=N_CLIENTS,
        mean_rate_per_client=BASE_LOAD * capacity / N_CLIENTS,
        tail_alpha=TAIL_ALPHA,
        burst=BURST,
        model_loyalty=0.5,
        property_spread=1.5,
    )
    return apply_scenario(population, launch_day_spike(DURATION_S))


def _pool(service: dict[str, float]) -> PoolSpec:
    return PoolSpec(
        name="a100",
        machine="dgx-a100-80g",
        servers=SERVERS,
        latency_fns={
            model: affine_batch_latency(time, marginal_fraction=0.7)
            for model, time in service.items()
        },
        max_batch=8,
    )


def _admission(
    deadlines: dict[str, float], mean_rate: float
) -> ResilienceConfig:
    """Admission provisioned against the *declared* average load.

    The token bucket refills at 1.05x the trace's mean offered rate —
    a perfectly reasonable front door if arrivals were Poisson, since
    the average never exceeds it.  Client-structured traffic spends
    long stretches far above its own average, which is exactly the
    case this policy protects against (and Poisson fluctuation is the
    case it needlessly penalizes).
    """
    return ResilienceConfig(
        admission=AdmissionConfig(
            max_queue_depth=48,
            wait_budget_s={
                model: 1.5 * deadline
                for model, deadline in deadlines.items()
            },
            rate_per_s=RATE_HEADROOM * mean_rate,
            burst=BUCKET_BURST,
        )
    )


def dispersion_index(
    trace: TrafficTrace, bin_s: float = DISPERSION_BIN_S
) -> float:
    """Variance-to-mean ratio of arrival counts in fixed bins.

    1.0 for a homogeneous Poisson process; client-structured traffic
    is overdispersed (bursts and rate windows inflate the variance).
    """
    bins = int(trace.duration_s / bin_s)
    counts, _ = np.histogram(
        trace.batch.arrival_s, bins=bins, range=(0.0, trace.duration_s)
    )
    mean = float(counts.mean()) if bins else 0.0
    if mean == 0.0:
        return 0.0
    return float(counts.var()) / mean


def _run_scenarios():
    """Simulate {client, poisson} x {no admission, admission}.

    Returns ``(scenarios, traces, deadlines)`` where ``scenarios`` is
    a list of ``(traffic_label, policy_label, report, slo)``.
    """
    service = _flash_service_times()
    deadlines = {name: 3.0 * service[name] for name in MODELS}
    client_trace = generate_traffic(
        _population(service), duration_s=DURATION_S, seed=SEED
    )
    poisson_trace = poissonized(client_trace, seed=POISSON_SEED)
    pool = _pool(service)
    admission = _admission(deadlines, client_trace.offered_rate)
    scenarios = []
    for traffic_label, trace in (
        ("client", client_trace), ("poisson", poisson_trace)
    ):
        for policy_label, resilience in (
            ("no-admission", RESILIENCE_OFF),
            ("admission", admission),
        ):
            report = simulate_fleet(
                trace, [pool], resilience=resilience
            )
            scenarios.append((
                traffic_label, policy_label, report,
                slo_report(report, deadlines),
            ))
    traces = {"client": client_trace, "poisson": poisson_trace}
    return scenarios, traces, deadlines


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    scenarios, traces, deadlines = _run_scenarios()
    client_trace = traces["client"]
    poisson_trace = traces["poisson"]
    rows: list[list[object]] = []
    goodput: dict[tuple[str, str], float] = {}
    by_key: dict[tuple[str, str], tuple] = {}
    for traffic_label, policy_label, report, slo in scenarios:
        key = (traffic_label, policy_label)
        by_key[key] = (report, slo)
        goodput[key] = slo.goodput
        entry = {m.model: m for m in slo.per_model}
        sd = entry["stable_diffusion"]
        rows.append([
            traffic_label,
            policy_label,
            sum(m.offered for m in slo.per_model),
            f"{sd.p50_s:.2f}",
            f"{sd.p95_s:.2f}",
            f"{sd.p99_s:.2f}",
            f"{slo.goodput * 100:.1f}%",
            slo.shed,
            slo.failed,
        ])

    flip_holds = (
        goodput[("client", "admission")]
        > goodput[("client", "no-admission")]
        and goodput[("poisson", "admission")]
        < goodput[("poisson", "no-admission")]
    )
    disp_client = dispersion_index(client_trace)
    disp_poisson = dispersion_index(poisson_trace)

    tiers = tier_slo_report(
        by_key[("client", "no-admission")][0], client_trace, deadlines
    )
    heavy = tiers.tier("heavy")
    light = tiers.tier("light")
    total_offered = sum(t.offered for t in tiers.per_tier)
    heavy_share = (
        heavy.offered / total_offered if total_offered else 0.0
    )
    heavy_clients = heavy.clients
    client_frac = (
        heavy_clients / client_trace.n_clients
        if client_trace.n_clients else 0.0
    )

    conservation_ok = all(
        report.offered
        == len(report.completed) + len(report.failed) + len(report.shed)
        for _, _, report, _ in scenarios
    )
    equal_load = len(client_trace) == len(poisson_trace) and (
        abs(
            float(client_trace.batch.service_s.sum())
            - float(poisson_trace.batch.service_s.sum())
        ) < 1e-6
    )

    claims = [
        ClaimCheck(
            claim="the admission-control ranking flips with the "
            "traffic model: at equal offered load, shedding raises "
            "goodput under client-structured traffic and lowers it "
            "under the Poisson twin",
            paper="deployability conclusions depend on workload "
            "structure (ServeGen), not only on the cost model",
            measured=(
                f"client {goodput[('client', 'no-admission')] * 100:.1f}%"
                f" -> {goodput[('client', 'admission')] * 100:.1f}% "
                f"with admission; poisson "
                f"{goodput[('poisson', 'no-admission')] * 100:.1f}% -> "
                f"{goodput[('poisson', 'admission')] * 100:.1f}%"
            ),
            holds=flip_holds,
        ),
        ClaimCheck(
            claim="both arms offer identical load: same request "
            "count and total service seconds",
            paper="controlled comparison (poissonized twin)",
            measured=(
                f"{len(client_trace)} requests, "
                f"{float(client_trace.batch.service_s.sum()):.1f} "
                "service-seconds in both arms"
            ),
            holds=equal_load,
        ),
        ClaimCheck(
            claim="client-structured arrivals are strongly "
            "overdispersed relative to the Poisson twin "
            "(index of dispersion in 60 s bins)",
            paper="autocorrelated per-client bursts",
            measured=(
                f"dispersion {disp_client:.1f} vs "
                f"{disp_poisson:.1f} (Poisson ~ 1)"
            ),
            holds=disp_client > 3.0 * disp_poisson,
        ),
        ClaimCheck(
            claim="per-client rates are heavy-tailed: the heavy tier "
            "(top ~5% of clients) carries over a quarter of all "
            "offered requests",
            paper="power-law client rates",
            measured=(
                f"{heavy_clients}/{client_trace.n_clients} clients "
                f"({client_frac * 100:.0f}%) carry "
                f"{heavy_share * 100:.0f}% of requests"
            ),
            holds=heavy_share > 0.25,
        ),
        ClaimCheck(
            claim="every run conserves requests (offered = completed "
            "+ failed + shed) and the tier breakdown partitions them",
            paper="simulator invariant",
            measured=(
                f"conservation {'holds' if conservation_ok else 'FAILS'}"
                f" across {len(scenarios)} runs; tier rows sum to "
                f"{total_offered} offered"
            ),
            holds=conservation_ok and total_offered == (
                len(by_key[("client", "no-admission")][0].completed)
                + len(by_key[("client", "no-admission")][0].failed)
                + len(by_key[("client", "no-admission")][0].shed)
            ),
        ),
    ]
    notes = [
        "Both traffic arms replay the same request multiset; the "
        "poisson arm erases client structure via poissonized().",
        "Client arm: launch-day-spike scenario over a Pareto "
        f"(alpha={TAIL_ALPHA}) population of {N_CLIENTS} clients with "
        "on/off bursts; p50/p95/p99 columns are stable_diffusion "
        "latencies.",
        "Per-tier view (client, no admission): heavy "
        f"p95 {_fmt_tier(heavy.p95_s)} s vs light "
        f"p95 {_fmt_tier(light.p95_s)} s.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Client-structured vs Poisson traffic: the admission "
        "verdict flips at equal offered load",
        headers=[
            "traffic", "policy", "offered", "p50 s", "p95 s",
            "p99 s", "goodput", "shed", "failed",
        ],
        rows=rows,
        claims=claims,
        notes=notes,
    )


def _fmt_tier(value: float | None) -> str:
    from repro.serving.slo import fmt_missing

    return fmt_missing(value)
