"""Distributed scaling + future hardware (Section V projection).

Section V closes the paper by arguing that multi-modal generation will
need new system designs as models and sequence lengths grow — and that
future hardware changes the arithmetic.  This experiment quantifies
that projection with the distributed execution layer: Stable Diffusion
2.1 and Make-A-Video are tensor-parallel sharded across 1/2/4/8 GPUs on
the A100 machine the paper characterized and on an H100 successor, with
communication priced by the interconnect model.

Checked claims: sharding one denoising pass hits diminishing returns
quickly (TP efficiency decays monotonically — the per-kernel work is
already small at inference batch sizes, so launch overhead and
collectives eat the gains); communication's share of latency grows with
the group size until it rivals compute at TP=8 (the interconnect, not
the GPU, limits sharded inference); a faster fabric (NVLink4 vs
NVLink3) cuts absolute collective time; and generation-per-GPU is
maximized at world size 1, which is why serving fleets scale out with
replicas rather than sharding inference (the Figure 1 fleet argument).
"""

from __future__ import annotations

from repro.distributed.scaling import ScalingPoint, strong_scaling
from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import model_instance

EXPERIMENT_ID = "dist1"

WORLDS = (1, 2, 4, 8)
MACHINES = ("dgx-a100-80g", "dgx-h100")
# (display name, suite registry name): the shared suite instances mean
# the A100 profiles are the very traces Figure 5/6 already captured.
MODELS = (
    ("StableDiffusion", "stable_diffusion"),
    ("MakeAVideo", "make_a_video"),
)


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    rows: list[list[object]] = []
    sweeps: dict[tuple[str, str], list[ScalingPoint]] = {}
    for model_name, registry_name in MODELS:
        for machine in MACHINES:
            points = strong_scaling(
                model_instance(registry_name), machine, WORLDS
            )
            sweeps[(model_name, machine)] = points
            for point in points:
                rows.append(
                    [
                        model_name,
                        machine,
                        point.world,
                        f"{point.time_s * 1e3:.0f}",
                        f"{point.compute_time_s * 1e3:.0f}",
                        f"{point.comm_time_s * 1e3:.0f}",
                        f"{point.efficiency * 100:.0f}%",
                    ]
                )

    def monotone_decreasing(points: list[ScalingPoint]) -> bool:
        effs = [point.efficiency for point in points]
        return all(a >= b for a, b in zip(effs, effs[1:]))

    all_monotone = all(monotone_decreasing(pts) for pts in sweeps.values())
    sd_a100 = sweeps[("StableDiffusion", "dgx-a100-80g")]
    sd_h100 = sweeps[("StableDiffusion", "dgx-h100")]
    mav_a100 = sweeps[("MakeAVideo", "dgx-a100-80g")]
    mav_h100 = sweeps[("MakeAVideo", "dgx-h100")]
    h100_speedup = mav_a100[0].time_s / mav_h100[0].time_s
    comm_shares_grow = all(
        points[1].comm_fraction < points[-1].comm_fraction
        for points in sweeps.values()
    )
    comm_at_8 = sd_h100[-1].comm_fraction
    fabric_cuts_comm = (
        sd_h100[-1].comm_time_s < sd_a100[-1].comm_time_s
        and mav_h100[-1].comm_time_s < mav_a100[-1].comm_time_s
    )
    per_gpu_best = all(
        max(
            range(len(points)),
            key=lambda i: points[i].speedup / points[i].world,
        ) == 0
        for points in sweeps.values()
    )
    claims = [
        ClaimCheck(
            claim="tensor-parallel efficiency decays monotonically with "
            "device count for both generators on both machines",
            paper="diminishing returns to sharding one inference",
            measured=(
                f"SD@A100 efficiency {sd_a100[0].efficiency:.2f} -> "
                f"{sd_a100[-1].efficiency:.2f}; MAV@A100 "
                f"{mav_a100[0].efficiency:.2f} -> "
                f"{mav_a100[-1].efficiency:.2f}"
            ),
            holds=all_monotone,
        ),
        ClaimCheck(
            claim="H100-generation hardware speeds up video generation "
            "more than another A100 would",
            paper="future hardware shifts the bottleneck (Section V)",
            measured=(
                f"MAV single-GPU: {mav_a100[0].time_s:.2f}s on A100 vs "
                f"{mav_h100[0].time_s:.2f}s on H100 ({h100_speedup:.2f}x)"
            ),
            holds=h100_speedup > 1.5,
        ),
        ClaimCheck(
            claim="communication's share of latency grows with group "
            "size until it rivals compute at TP=8 — sharded inference "
            "is interconnect-limited",
            paper="new system designs needed as models scale (Sec. V)",
            measured=(
                f"comm share grows TP=2 -> TP=8 in all 4 sweeps; "
                f"SD@H100 TP=8 comm share {comm_at_8 * 100:.0f}%"
            ),
            holds=comm_shares_grow and comm_at_8 > 0.3,
        ),
        ClaimCheck(
            claim="a faster fabric (NVLink4 vs NVLink3) cuts absolute "
            "collective time at TP=8",
            paper="interconnect bandwidth is a lever (Section V)",
            measured=(
                f"SD TP=8 comm: {sd_a100[-1].comm_time_s * 1e3:.0f} ms "
                f"(A100) vs {sd_h100[-1].comm_time_s * 1e3:.0f} ms "
                f"(H100)"
            ),
            holds=fabric_cuts_comm,
        ),
        ClaimCheck(
            claim="generation throughput per GPU is maximized at world "
            "size 1 — fleets should scale out with replicas, not shard "
            "latency-bound inference",
            paper="Figure 1 fleets run single-GPU replicas",
            measured="per-GPU throughput peaks at 1 GPU in all 4 sweeps",
            holds=per_gpu_best,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Strong scaling of SD 2.1 and Make-A-Video across GPUs "
        "and hardware generations",
        headers=["model", "machine", "GPUs", "latency ms", "compute ms",
                 "comm ms", "efficiency"],
        rows=rows,
        claims=claims,
    )
