"""Table I: taxonomy of the four representative TTI models."""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import all_profiles, model_instance
from repro.models.registry import DISPLAY_NAMES

EXPERIMENT_ID = "table1"

# Paper's Table I parameter counts.
PAPER_PARAMS = {
    "imagen": 3.0e9,
    "stable_diffusion": 1.45e9,
    "muse": 3.0e9,
    "parti": 20e9,
}

_TTI_MODELS = ("imagen", "stable_diffusion", "muse", "parti")


def _qualitative(value: float, low: float, high: float) -> str:
    if value < low:
        return "Low"
    if value < high:
        return "Medium"
    return "High"


def generator_params(name: str) -> int:
    """Trainable generator parameters, matching Table I's accounting.

    Imagen and Muse condition on *frozen* pretrained T5 encoders; the
    paper's 3B counts cover the generative stacks only.
    """
    model = model_instance(name)
    total = model.param_count()
    if name in ("imagen", "muse"):
        total -= model.text_encoder.param_count()
    return total


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    profiles = all_profiles()
    rows: list[list[object]] = []
    params_ok: dict[str, bool] = {}
    latencies: dict[str, float] = {}
    computes: dict[str, float] = {}
    for name in _TTI_MODELS:
        model = model_instance(name)
        baseline, _ = profiles[name]
        params = generator_params(name)
        paper = PAPER_PARAMS[name]
        params_ok[name] = paper / 2.0 <= params <= paper * 2.0
        flops = baseline.trace.total_flops
        latency = baseline.total_time_s
        latencies[name] = latency
        computes[name] = flops
        rows.append(
            [
                DISPLAY_NAMES[name],
                model.architecture.value,
                f"{params/1e9:.2f}B",
                f"{paper/1e9:.2f}B",
                _qualitative(flops, 5e13, 2e14),
                _qualitative(latency, 1.0, 2.0),
            ]
        )
    claims = [
        ClaimCheck(
            claim="suite parameter counts track Table I (within 2x)",
            paper="1.45B-20B",
            measured=", ".join(
                f"{DISPLAY_NAMES[n]} {generator_params(n)/1e9:.1f}B"
                for n in _TTI_MODELS
            ),
            holds=all(params_ok.values()),
        ),
        ClaimCheck(
            claim="Parti is the largest model (20B, 'High' memory)",
            paper="Parti 20B",
            measured=f"{generator_params('parti')/1e9:.1f}B",
            holds=generator_params("parti")
            == max(generator_params(n) for n in _TTI_MODELS),
        ),
        ClaimCheck(
            claim="diffusion latency exceeds transformer-TTI latency "
            "(iterative denoising)",
            paper="diffusion 'High', Muse 'Low'",
            measured=(
                f"Imagen {latencies['imagen']:.1f}s vs Muse "
                f"{latencies['muse']:.1f}s"
            ),
            holds=latencies["imagen"] > latencies["muse"],
        ),
        ClaimCheck(
            claim="pixel diffusion has the highest compute",
            paper="Imagen compute 'High'",
            measured=(
                f"Imagen {computes['imagen']:.3g} FLOPs vs Muse "
                f"{computes['muse']:.3g}"
            ),
            holds=computes["imagen"] > computes["muse"],
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Taxonomy of text-to-image models",
        headers=[
            "model", "architecture", "params (ours)", "params (paper)",
            "compute", "latency",
        ],
        rows=rows,
        claims=claims,
        notes=[
            "Parti's whole-run compute is inflated by full-prefix "
            "recompute decoding; the compute/latency qualitative columns "
            "use coarse thresholds.",
        ],
    )
