"""Figure 8: sequence-length frequency distribution vs image size."""

from __future__ import annotations

from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.ir.context import ExecutionContext
from repro.ir.tensor import TensorSpec
from repro.profiler.seqlen import sequence_length_distribution

EXPERIMENT_ID = "fig8"

IMAGE_SIZES = (128, 256, 512, 768)


def distributions() -> dict[int, dict[int, int]]:
    """Seq-length histograms of one SD UNet pass per output size."""
    from repro.models.stable_diffusion import (
        StableDiffusion,
        StableDiffusionConfig,
    )

    out: dict[int, dict[int, int]] = {}
    for size in IMAGE_SIZES:
        config = StableDiffusionConfig().at_image_size(size)
        model = StableDiffusion(config)
        ctx = ExecutionContext()
        latent = TensorSpec(
            (1, config.latent_channels, config.latent_size,
             config.latent_size)
        )
        model.unet(ctx, latent)
        out[size] = sequence_length_distribution(ctx.trace).counts
    return out


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    per_size = distributions()
    rows = []
    for size, counts in per_size.items():
        total = sum(counts.values())
        rows.append(
            [
                f"{size}x{size}",
                ", ".join(
                    f"{seq}:{count/total:.2f}"
                    for seq, count in sorted(counts.items())
                ),
                max(counts),
            ]
        )
    maxima = {size: max(counts) for size, counts in per_size.items()}
    shifts_right = all(
        maxima[a] < maxima[b]
        for a, b in zip(IMAGE_SIZES, IMAGE_SIZES[1:])
    )
    quadratic = all(
        maxima[size] == (size // 8) ** 2 for size in IMAGE_SIZES
    )
    size_512 = per_size[512]
    top_two = sorted(size_512)[-2:]
    balanced = all(
        abs(size_512[seq] / sum(size_512.values()) - 1 / len(size_512))
        < 0.25
        for seq in top_two
    )
    claims = [
        ClaimCheck(
            claim="distribution shifts right as image size grows",
            paper="overlapping bars shift right",
            measured=", ".join(
                f"{size}->{maxima[size]}" for size in IMAGE_SIZES
            ),
            holds=shifts_right,
        ),
        ClaimCheck(
            claim="peak sequence length is quadratic in image size "
            "(latent area)",
            paper="seq = (H/8 * W/8)",
            measured=", ".join(
                f"{size}: {maxima[size]}" for size in IMAGE_SIZES
            ),
            holds=quadratic,
        ),
        ClaimCheck(
            claim="at 512px the distribution over lengths is relatively "
            "even (symmetric UNet)",
            paper="relatively equal distribution",
            measured=", ".join(
                f"{seq}:{size_512[seq]}" for seq in sorted(size_512)
            ),
            holds=balanced,
        ),
        ClaimCheck(
            claim="lengths confine themselves to distinct buckets",
            paper="distinct buckets",
            measured=f"{len(size_512)} distinct lengths at 512px",
            holds=2 <= len(size_512) <= 8,
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Sequence-length frequency distribution for Stable "
        "Diffusion at several image sizes",
        headers=["image size", "seq:frequency", "max seq"],
        rows=rows,
        claims=claims,
    )
