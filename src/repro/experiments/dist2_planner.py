"""dist2: the parallelism auto-planner vs hand-picked strategies.

dist1 swept hand-picked tensor-parallel groups and found the paper's
Section V story: sharding one inference hits diminishing returns fast,
and per-GPU throughput peaks at world size 1.  This experiment closes
the loop — :func:`repro.distributed.planner.plan_parallelism` searches
the (tp, pp, dp, microbatch, sequence-parallel) space symbolically and
has to *rediscover* that result against a hand-picked baseline, per
model and per machine, instead of having it baked in.

The hand-picked baseline is ``tp=8`` — dist1's "shard it across the
whole node" configuration, the strategy an LLM-trained intuition
reaches for.  For every TTI/TTV generator × machine pair the planner's
best feasible plan must strictly beat that baseline's throughput at
the same global batch and GPU budget (the acceptance bar for the
planner subsystem).  The experiment also wires the winning plan into
the fleet simulator via :func:`repro.serving.sharded.planned_pool` and
replays the same request stream against an auto-planned pool and a
tp=8 pool, so the planner's win shows up in goodput, not just in the
analytical model.

Checked claims: the planner strictly beats tp=8 throughput on all six
model × machine combos; its best-latency plan always uses more than
one GPU; every emitted plan respects the 90% HBM cap; the symbolic
basis amortizes (configs costed >= 4x axis builds everywhere); and the
auto-planned pool out-serves the tp=8 pool on a replayed stream.
"""

from __future__ import annotations

from functools import lru_cache

from repro.distributed.planner import (
    ParallelConfig,
    PlannerBasis,
    PlannerResult,
    PlanPoint,
    plan_parallelism,
    pareto_frontier,
)
from repro.experiments.base import ClaimCheck, ExperimentResult
from repro.experiments.suite_cache import model_instance
from repro.profiler.memory_footprint import suite_kv_cache_bytes
from repro.serving.fleet import pool_from_replicas, simulate_fleet
from repro.serving.sharded import planned_pool, replica_from_plan
from repro.serving.slo import slo_report
from repro.serving.workload import WorkloadMix, generate_requests

EXPERIMENT_ID = "dist2"

MACHINES = ("dgx-a100-80g", "dgx-h100")
# (display name, suite registry name): two TTI generators and one TTV,
# sharing the suite's profiled model instances.
MODELS = (
    ("StableDiffusion", "stable_diffusion"),
    ("Muse", "muse"),
    ("MakeAVideo", "make_a_video"),
)
GPU_BUDGET = 8
GLOBAL_BATCH = 8
# dist1's all-shard hand pick: the whole node as one tensor-parallel
# group.
BASELINE = ParallelConfig(tp=8)

# Fleet replay: offered load between the tp=8 pool's capacity and the
# auto-planned pool's, so the planner's headroom becomes goodput.
FLEET_RATE_RPS = 5.0
FLEET_DURATION_S = 300.0
FLEET_SEED = 23
FLEET_DEADLINE_S = 4.0


@lru_cache(maxsize=1)
def _run_searches() -> dict[tuple[str, str], tuple[PlannerResult, PlanPoint]]:
    """Planner search plus the costed tp=8 baseline, per combo (cached)."""
    out: dict[tuple[str, str], tuple[PlannerResult, PlanPoint]] = {}
    for _, registry_name in MODELS:
        model = model_instance(registry_name)
        kv = suite_kv_cache_bytes(registry_name, model)
        for machine in MACHINES:
            basis = PlannerBasis(model, machine, kv_bytes=kv)
            result = plan_parallelism(
                model, machine=machine, gpu_budget=GPU_BUDGET,
                global_batch=GLOBAL_BATCH, basis=basis,
            )
            baseline = basis.cost_config(
                BASELINE, global_batch=GLOBAL_BATCH
            )
            out[(registry_name, machine)] = (result, baseline)
    return out


@lru_cache(maxsize=1)
def _run_fleet() -> dict[str, float]:
    """Replay one stream against the auto-planned and tp=8 SD pools."""
    model = model_instance("stable_diffusion")
    machine = MACHINES[0]
    auto_pool, auto_point = planned_pool(
        "auto-planned", model, machine=machine,
        gpu_budget=GPU_BUDGET, global_batch=GLOBAL_BATCH,
    )
    baseline_replica = replica_from_plan(model, BASELINE, machine=machine)
    baseline_pool = pool_from_replicas(
        "hand-picked-tp8", [baseline_replica], servers=1
    )
    mix = WorkloadMix(
        shares={"stable_diffusion": 1.0},
        service_s={"stable_diffusion": baseline_replica.latency(1)},
    )
    requests = generate_requests(
        mix, arrival_rate=FLEET_RATE_RPS, duration_s=FLEET_DURATION_S,
        seed=FLEET_SEED,
    )
    metrics: dict[str, float] = {
        "auto_throughput_rps": auto_point.throughput_rps,
    }
    for label, pool in (("auto", auto_pool), ("tp8", baseline_pool)):
        report = simulate_fleet(requests, [pool])
        slo = slo_report(report, FLEET_DEADLINE_S)
        metrics[f"{label}_goodput"] = slo.goodput
        metrics[f"{label}_p95_s"] = slo.per_model[0].p95_s
        metrics[f"{label}_completed"] = float(len(report.completed))
    return metrics


def run() -> ExperimentResult:
    """Regenerate this experiment and check its claims."""
    searches = _run_searches()
    fleet = _run_fleet()
    rows: list[list[object]] = []
    beats_baseline = []
    latency_worlds = []
    cap_ok = []
    frontier_ok = []
    amortized = []
    for model_name, registry_name in MODELS:
        for machine in MACHINES:
            result, baseline = searches[(registry_name, machine)]
            best = result.best_throughput()
            fastest = result.best_latency()
            speedup = best.throughput_rps / baseline.throughput_rps
            beats_baseline.append(
                best.throughput_rps > baseline.throughput_rps
            )
            latency_worlds.append(fastest.config.world)
            cap_ok.append(all(p.fits for p in result.feasible))
            frontier_ok.append(
                len(pareto_frontier(result.frontier))
                == len(result.frontier)
            )
            amortized.append(
                result.stats["configs_costed"]
                >= 4 * result.stats["axis_builds"]
            )
            rows.append(
                [
                    model_name,
                    machine,
                    f"{baseline.throughput_rps:.2f}",
                    best.config.label,
                    f"{best.throughput_rps:.2f}",
                    f"{speedup:.2f}x",
                    fastest.config.label,
                    f"{fastest.latency_s * 1e3:.0f}",
                    len(result.frontier),
                ]
            )
    combos = len(MODELS) * len(MACHINES)
    sd_result, sd_baseline = searches[("stable_diffusion", MACHINES[0])]
    sd_best = sd_result.best_throughput()
    claims = [
        ClaimCheck(
            claim="the auto-planner's best feasible plan strictly beats "
            "the hand-picked tp=8 baseline's throughput on every "
            "model x machine combo at equal batch and GPU budget",
            paper="the best parallelism strategy is workload-dependent "
            "(Section V); fleets scale out rather than shard (Fig. 1)",
            measured=(
                f"{sum(beats_baseline)}/{combos} combos; SD@A100 "
                f"{sd_best.config.label} {sd_best.throughput_rps:.2f} "
                f"rps vs tp8 {sd_baseline.throughput_rps:.2f} rps"
            ),
            holds=all(beats_baseline),
        ),
        ClaimCheck(
            claim="the lowest-latency plan for draining a batch-8 round "
            "always spans more than one GPU",
            paper="parallelism still pays for latency even when "
            "sharding one kernel does not",
            measured=(
                "best-latency worlds: "
                + ", ".join(str(w) for w in latency_worlds)
            ),
            holds=all(w > 1 for w in latency_worlds),
        ),
        ClaimCheck(
            claim="every plan the planner emits as feasible fits the "
            "90% per-device HBM cap",
            paper="memory capacity bounds deployable configs "
            "(Section IV's footprint analysis)",
            measured=f"cap respected in {sum(cap_ok)}/{combos} combos",
            holds=all(cap_ok),
        ),
        ClaimCheck(
            claim="the Pareto frontier the planner reports is "
            "non-dominated over (latency, throughput, GPUs)",
            paper="planner contract",
            measured=(
                f"frontier re-filter is a fixed point in "
                f"{sum(frontier_ok)}/{combos} combos"
            ),
            holds=all(frontier_ok),
        ),
        ClaimCheck(
            claim="the symbolic basis amortizes the search: every combo "
            "costs >= 4 configs per partition+pricing pass",
            paper="symbolic costing avoids materializing each config's "
            "trace (STAGE, PAPERS.md)",
            measured=(
                f"SD@A100: {sd_result.stats['configs_costed']} configs "
                f"from {sd_result.stats['axis_builds']} axis builds, "
                f"{sd_result.stats['trace_profiles']} profiles"
            ),
            holds=all(amortized),
        ),
        ClaimCheck(
            claim="wired into the fleet simulator, the auto-planned "
            "pool out-serves the tp=8 pool on the same replayed "
            "request stream",
            paper="planner picks must survive contact with serving "
            "dynamics, not just the analytical model",
            measured=(
                f"goodput {fleet['auto_goodput']:.3f} (auto) vs "
                f"{fleet['tp8_goodput']:.3f} (tp8) at "
                f"{FLEET_RATE_RPS:.0f} rps offered"
            ),
            holds=fleet["auto_goodput"] > fleet["tp8_goodput"],
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Parallelism auto-planner vs hand-picked baselines across "
        "the TTI/TTV zoo and machines",
        headers=["model", "machine", "tp8 rps", "best plan", "best rps",
                 "speedup", "fastest plan", "latency ms", "frontier"],
        rows=rows,
        claims=claims,
    )
