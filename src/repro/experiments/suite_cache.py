"""Shared, lazily computed profiles of the eight-model suite.

Several experiments (Figure 6, Tables II/III, Figure 5) consume the same
baseline/Flash traces; profiling the full suite takes ~10 s, so results
are cached per process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.models.base import GenerativeModel
from repro.models.registry import build_model, suite_names
from repro.profiler.profiler import ProfileResult, profile_both


@lru_cache(maxsize=None)
def model_instance(name: str) -> GenerativeModel:
    return build_model(name)


@lru_cache(maxsize=None)
def suite_profiles(name: str) -> tuple[ProfileResult, ProfileResult]:
    """(baseline, flash) profiles for one suite model, cached."""
    return profile_both(model_instance(name))


def all_profiles() -> dict[str, tuple[ProfileResult, ProfileResult]]:
    """Profiles for the whole suite, in presentation order."""
    return {name: suite_profiles(name) for name in suite_names()}


def clear_cache() -> None:
    """Drop cached traces (used by tuning-sensitivity benchmarks)."""
    suite_profiles.cache_clear()
    model_instance.cache_clear()
