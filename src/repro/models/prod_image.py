"""Production TTI model: the deployment-tuned latent-diffusion stand-in.

The paper augments the open-source suite with an internal production
TTI model "to provide a realistic view of system requirements for
deployment at-scale" (Section III).  Its defining measured property is
that Flash Attention barely helps end-to-end (Table II: 1.04x): a model
tuned for serving cost spends its time in convolution and linear
layers — a small latent grid (short attention sequences), attention only
at coarse UNet levels, few denoising steps, and a heavyweight
convolutional decoder for output quality.  This stand-in reproduces
those properties with a plausible architecture; the real model is
proprietary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.tensor import TensorSpec
from repro.layers.unet import UNet, UNetConfig
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder
from repro.models.text_encoders import CLIP_TEXT_LARGE, TextEncoder


@dataclass(frozen=True)
class ProdImageConfig:
    """Serving-optimized latent diffusion operating point."""

    image_size: int = 1024
    latent_size: int = 32
    latent_channels: int = 8
    denoising_steps: int = 25
    guidance: bool = True
    unet: UNetConfig = UNetConfig(
        in_channels=8,
        model_channels=448,
        channel_mult=(1, 2, 4, 4),
        num_res_blocks=2,
        attention_levels=(1, 2, 3),  # attention only at coarse grids
        attention_style="transformer",
        head_dim=64,
        text_dim=1024,
        text_seq=77,
    )


class ProdImage(GenerativeModel):
    """CLIP-large encoder + coarse-attention UNet + deep conv decoder."""

    architecture = ModelArchitecture.DIFFUSION_LATENT

    def __init__(self, config: ProdImageConfig = ProdImageConfig()):
        super().__init__(name="prod_image")
        self.config = config
        self.text_encoder = TextEncoder(
            CLIP_TEXT_LARGE, name="clip_text_encoder"
        )
        self.unet = UNet(config.unet)
        # 32 -> 1024 requires five doublings: a deep decoder stack that
        # dominates the pipeline with convolution.
        self.decoder = ConvDecoder(
            latent_channels=config.latent_channels,
            channel_schedule=(512, 512, 256, 256, 128, 64),
            name="pixel_decoder",
        )

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        self.text_encoder(ctx, batch)
        unet_batch = batch * (2 if config.guidance else 1)
        latent = TensorSpec(
            (unet_batch, config.latent_channels,
             config.latent_size, config.latent_size)
        )
        for step in range(config.denoising_steps):
            with ctx.named_scope(f"denoise_{step}"):
                self.unet(ctx, latent)
        decode_latent = TensorSpec(
            (batch, config.latent_channels,
             config.latent_size, config.latent_size)
        )
        self.decoder(ctx, decode_latent)
