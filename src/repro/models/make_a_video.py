"""Make-A-Video: the diffusion-based text-to-video representative.

Make-A-Video extends a pixel-diffusion TTI backbone to video
(Section II-B / VI): a spatiotemporal decoder UNet generates 16 key
frames at 64x64, a frame-interpolation network fills in to 76 frames,
and two super-resolution stages lift the result to 256px (still
spatiotemporal) and 768px (per-frame spatial only — temporal layers and
attention are dropped at high resolution because the memory cost is
prohibitive).  Temporal attention layers sit after spatial attention
layers throughout the spatiotemporal UNets; they are the subject of the
paper's Figure 11/12 case study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.tensor import TensorSpec
from repro.layers.transformer import TransformerConfig, TransformerStack
from repro.layers.unet import UNet, UNetConfig
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.text_encoders import CLIP_TEXT_LARGE, TextEncoder


@dataclass(frozen=True)
class MakeAVideoConfig:
    """Make-A-Video-style cascade: 16 x 64px -> 76 x 256px -> 76 x 768px."""

    key_frames: int = 16
    interpolated_frames: int = 76
    base_size: int = 64
    sr1_size: int = 256
    sr2_size: int = 768
    prior_steps: int = 16
    base_steps: int = 50
    interpolation_steps: int = 8
    sr1_steps: int = 8
    sr2_steps: int = 4
    decoder_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=384,
        channel_mult=(1, 2, 3, 4),
        num_res_blocks=2,
        attention_levels=(1, 2, 3),  # spatial attn at 32/16/8 grids
        attention_style="block",
        head_dim=128,
        text_dim=1024,
        text_seq=77,
        temporal=True,
        temporal_attention_levels=(0, 1, 2, 3),
    )
    interpolation_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=256,
        channel_mult=(1, 2, 3, 4),
        num_res_blocks=2,
        attention_levels=(1, 2, 3),
        attention_style="block",
        head_dim=128,
        text_dim=1024,
        text_seq=77,
        temporal=True,
        temporal_attention_levels=(0, 1, 2, 3),
    )
    sr1_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=128,
        channel_mult=(1, 2, 4, 8),
        num_res_blocks=2,
        attention_levels=(),  # spatial attention dropped at 256px
        attention_style="none",
        head_dim=64,
        text_dim=1024,
        text_seq=77,
        temporal=True,
        # Temporal *convolution* only: at 256px even frame attention is
        # dropped for memory reasons (Section VI-B).
        temporal_attention_levels=(),
    )
    sr2_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=64,
        channel_mult=(1, 2, 4, 8),
        num_res_blocks=2,
        attention_levels=(),
        attention_style="none",
        head_dim=64,
        text_dim=1024,
        text_seq=77,
        temporal=False,  # 768px stage is per-frame spatial only
    )


class MakeAVideo(GenerativeModel):
    """CLIP encoder + prior + spatiotemporal decoder/interp/SR cascade."""

    architecture = ModelArchitecture.TTV_DIFFUSION

    def __init__(self, config: MakeAVideoConfig = MakeAVideoConfig()):
        super().__init__(name="make_a_video")
        self.config = config
        self.text_encoder = TextEncoder(
            CLIP_TEXT_LARGE, name="clip_text_encoder"
        )
        # Diffusion prior mapping text embedding -> image embedding.
        self.prior = TransformerStack(
            TransformerConfig(dim=1024, num_layers=12, num_heads=16),
            name="prior",
        )
        self.decoder_unet = UNet(config.decoder_unet, name="decoder_unet")
        self.interpolation_unet = UNet(
            config.interpolation_unet, name="interpolation_unet"
        )
        self.sr1_unet = UNet(config.sr1_unet, name="sr1_unet")
        self.sr2_unet = UNet(config.sr2_unet, name="sr2_unet")

    def _run_stage(
        self,
        ctx: ExecutionContext,
        unet: UNet,
        batch: int,
        frames: int,
        size: int,
        steps: int,
        label: str,
    ) -> None:
        latent = TensorSpec(
            (batch * frames, unet.config.in_channels, size, size)
        )
        with ctx.named_scope(label):
            for step in range(steps):
                with ctx.named_scope(f"denoise_{step}"):
                    unet(ctx, latent, frames=frames)

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        text = self.text_encoder(ctx, batch)
        prior_tokens = TensorSpec((batch, 77, 1024))
        for step in range(config.prior_steps):
            with ctx.named_scope(f"prior_step_{step}"):
                self.prior(ctx, prior_tokens)
        del text
        self._run_stage(
            ctx, self.decoder_unet, batch, config.key_frames,
            config.base_size, config.base_steps, "decoder",
        )
        self._run_stage(
            ctx, self.interpolation_unet, batch, config.interpolated_frames,
            config.base_size, config.interpolation_steps, "interpolation",
        )
        self._run_stage(
            ctx, self.sr1_unet, batch, config.interpolated_frames,
            config.sr1_size, config.sr1_steps, "sr1",
        )
        self._run_stage(
            ctx, self.sr2_unet, batch, config.interpolated_frames,
            config.sr2_size, config.sr2_steps, "sr2",
        )
