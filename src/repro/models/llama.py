"""LLaMA-2: the text-generation baseline of the model suite.

The paper contrasts every TTI/TTV model against LLaMA-2 (Section III).
Inference has the two canonical phases of Table III: *prefill* (the
whole prompt processed at once — large matrices, Flash-Attention
friendly) and *decode* (one token at a time against a growing KV cache —
skinny matrices, little Flash benefit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.ops import Gemm
from repro.ir.tensor import TensorSpec
from repro.layers.embedding import TokenEmbedding
from repro.layers.transformer import TransformerConfig, TransformerStack
from repro.models.base import GenerativeModel, ModelArchitecture


@dataclass(frozen=True)
class LlamaConfig:
    """LLaMA-2-7B by default."""

    dim: int = 4096
    num_layers: int = 32
    num_heads: int = 32
    ffn_hidden: int = 11008
    vocab: int = 32000
    prompt_tokens: int = 8192
    decode_tokens: int = 64
    decode_bucket: int = 16
    """Decode steps are grouped into buckets of this size; each bucket is
    emitted once at its midpoint KV length and repeated (trace-size
    control, totals unchanged to first order)."""


class Llama(GenerativeModel):
    """LLaMA-2 decoder-only LLM (prefill + autoregressive decode)."""

    architecture = ModelArchitecture.LLM

    def __init__(self, config: LlamaConfig = LlamaConfig()):
        super().__init__(name="llama")
        self.config = config
        self.embedding = TokenEmbedding(config.vocab, config.dim)
        self.stack = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.num_layers,
                num_heads=config.num_heads,
                ffn_hidden=config.ffn_hidden,
                causal=True,
                gated_ffn=True,
                rms_norm=True,
            )
        )

    def _lm_head(self, ctx: ExecutionContext, batch: int, seq: int) -> None:
        config = self.config
        ctx.emit(
            Gemm(
                "lm_head",
                m=batch * seq,
                n=config.vocab,
                k=config.dim,
                b_is_weight=True,
            )
        )

    def prefill(self, ctx: ExecutionContext, batch: int = 1) -> TensorSpec:
        """Process the prompt in one pass (Table III: 'training/prefill')."""
        config = self.config
        with ctx.named_scope("prefill"):
            tokens = self.embedding(ctx, batch, config.prompt_tokens)
            hidden = self.stack(ctx, tokens)
            self._lm_head(ctx, batch, 1)
        return hidden

    def decode(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Generate ``decode_tokens`` autoregressively with a KV cache."""
        config = self.config
        token = TensorSpec((batch, 1, config.dim))
        bucket = max(1, config.decode_bucket)
        with ctx.named_scope("decode"):
            for start in range(0, config.decode_tokens, bucket):
                steps = min(bucket, config.decode_tokens - start)
                midpoint = config.prompt_tokens + start + steps // 2
                with ctx.repeat_scope(steps):
                    self.stack(ctx, token, past_length=midpoint)
                    self._lm_head(ctx, batch, 1)

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        self.prefill(ctx, batch=batch)
        self.decode(ctx, batch=batch)
