"""Diffusion noise schedules and the steps/latency trade-off.

Section II-A: "the image traverses through the UNet tens or hundreds of
times as part of the denoising process ... there is an inherent trade
off between number of denoising steps and image quality."  The
characterization treats step count as a fixed per-model constant; this
module supplies the actual scheduler machinery (beta schedules, DDIM
step selection, signal-to-noise curves) so step-count studies are
grounded in the same math real pipelines use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DiffusionSchedule:
    """A discrete noise schedule over ``train_steps`` timesteps.

    Attributes:
        betas: per-step noise variances, shape (train_steps,).
    """

    betas: np.ndarray

    def __post_init__(self) -> None:
        betas = np.asarray(self.betas, dtype=np.float64)
        if betas.ndim != 1 or betas.size == 0:
            raise ValueError("betas must be a non-empty 1-D array")
        if np.any(betas <= 0.0) or np.any(betas >= 1.0):
            raise ValueError("betas must lie in (0, 1)")
        object.__setattr__(self, "betas", betas)

    @property
    def train_steps(self) -> int:
        return int(self.betas.size)

    @property
    def alphas(self) -> np.ndarray:
        return 1.0 - self.betas

    @property
    def alphas_cumprod(self) -> np.ndarray:
        """\\bar{alpha}_t: the signal fraction remaining at step t."""
        return np.cumprod(self.alphas)

    def signal_to_noise(self) -> np.ndarray:
        """SNR_t = \\bar{alpha}_t / (1 - \\bar{alpha}_t)."""
        cumprod = self.alphas_cumprod
        return cumprod / (1.0 - cumprod)

    def ddim_timesteps(self, inference_steps: int) -> np.ndarray:
        """Evenly spaced timestep subsequence for DDIM-style sampling.

        Returned descending (the order inference visits them).
        """
        if not 0 < inference_steps <= self.train_steps:
            raise ValueError(
                f"inference steps must be in [1, {self.train_steps}]"
            )
        stride = self.train_steps / inference_steps
        steps = (np.arange(inference_steps) * stride).round().astype(int)
        return steps[::-1].copy()

    def terminal_signal(self) -> float:
        """Remaining signal at the final training step (≈ pure noise)."""
        return float(self.alphas_cumprod[-1])


def linear_schedule(
    train_steps: int = 1000,
    beta_start: float = 8.5e-4,
    beta_end: float = 1.2e-2,
) -> DiffusionSchedule:
    """The DDPM/Stable-Diffusion linear(-ish) beta schedule."""
    if train_steps <= 0:
        raise ValueError("train_steps must be positive")
    if not 0.0 < beta_start <= beta_end < 1.0:
        raise ValueError("need 0 < beta_start <= beta_end < 1")
    return DiffusionSchedule(
        betas=np.linspace(beta_start, beta_end, train_steps)
    )


def cosine_schedule(
    train_steps: int = 1000, offset: float = 8e-3
) -> DiffusionSchedule:
    """Nichol & Dhariwal's cosine \\bar{alpha} schedule."""
    if train_steps <= 0:
        raise ValueError("train_steps must be positive")
    steps = np.arange(train_steps + 1, dtype=np.float64)
    f = np.cos(
        ((steps / train_steps + offset) / (1.0 + offset)) * np.pi / 2.0
    ) ** 2
    cumprod = f / f[0]
    betas = 1.0 - cumprod[1:] / cumprod[:-1]
    return DiffusionSchedule(betas=np.clip(betas, 1e-8, 0.999))


@dataclass(frozen=True)
class StepLatencyPoint:
    """Latency consequence of one inference step count."""

    steps: int
    latency_s: float
    snr_coverage: float
    """Fraction of the schedule's log-SNR range the visited timesteps
    span — a proxy for how much of the denoising trajectory the step
    budget still covers."""


def steps_latency_tradeoff(
    step_latency_s: float,
    step_counts: list[int],
    schedule: DiffusionSchedule | None = None,
    fixed_overhead_s: float = 0.0,
) -> list[StepLatencyPoint]:
    """Latency vs step count under a schedule.

    ``step_latency_s`` is one UNet pass (measure it with the profiler);
    ``fixed_overhead_s`` covers the text encoder and decoder.
    """
    if step_latency_s <= 0:
        raise ValueError("step latency must be positive")
    if not step_counts:
        raise ValueError("need at least one step count")
    if schedule is None:
        schedule = linear_schedule()
    log_snr = np.log(schedule.signal_to_noise())
    full_range = float(log_snr.max() - log_snr.min())
    points = []
    for steps in sorted(step_counts):
        visited = schedule.ddim_timesteps(steps)
        covered = float(
            log_snr[visited].max() - log_snr[visited].min()
        ) if steps > 1 else 0.0
        points.append(
            StepLatencyPoint(
                steps=steps,
                latency_s=fixed_overhead_s + steps * step_latency_s,
                snr_coverage=covered / full_range if full_range else 1.0,
            )
        )
    return points
