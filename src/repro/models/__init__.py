"""The eight-workload model suite (Section III)."""

from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder
from repro.models.imagen import Imagen, ImagenConfig
from repro.models.llama import Llama, LlamaConfig
from repro.models.make_a_video import MakeAVideo, MakeAVideoConfig
from repro.models.muse import Muse, MuseConfig
from repro.models.parti import Parti, PartiConfig
from repro.models.phenaki import Phenaki, PhenakiConfig
from repro.models.prod_image import ProdImage, ProdImageConfig
from repro.models.cards import ModelCard, build_card, suite_cards
from repro.models.schedulers import (
    DiffusionSchedule,
    StepLatencyPoint,
    cosine_schedule,
    linear_schedule,
    steps_latency_tradeoff,
)
from repro.models.registry import (
    DISPLAY_NAMES,
    MODEL_SUITE,
    MODEL_VARIANTS,
    build_model,
    suite_names,
    variant_names,
)
from repro.models.stable_diffusion import StableDiffusion, StableDiffusionConfig
from repro.models.text_encoders import (
    CLIP_TEXT,
    CLIP_TEXT_LARGE,
    T5_LARGE,
    T5_XL,
    T5_XXL,
    TextEncoder,
    TextEncoderConfig,
)

__all__ = [
    "CLIP_TEXT",
    "CLIP_TEXT_LARGE",
    "ConvDecoder",
    "ModelCard",
    "build_card",
    "suite_cards",
    "DiffusionSchedule",
    "StepLatencyPoint",
    "cosine_schedule",
    "linear_schedule",
    "steps_latency_tradeoff",
    "DISPLAY_NAMES",
    "GenerativeModel",
    "Imagen",
    "ImagenConfig",
    "Llama",
    "LlamaConfig",
    "MODEL_SUITE",
    "MODEL_VARIANTS",
    "MakeAVideo",
    "MakeAVideoConfig",
    "ModelArchitecture",
    "Muse",
    "MuseConfig",
    "Parti",
    "PartiConfig",
    "Phenaki",
    "PhenakiConfig",
    "ProdImage",
    "ProdImageConfig",
    "StableDiffusion",
    "StableDiffusionConfig",
    "T5_LARGE",
    "T5_XL",
    "T5_XXL",
    "TextEncoder",
    "TextEncoderConfig",
    "build_model",
    "suite_names",
    "variant_names",
]
