"""Stable Diffusion: the latent-diffusion representative of the suite.

Pipeline (Figure 2, middle row): CLIP text encoder -> UNet denoising
loop in an 8x-downsampled latent space -> VAE decoder back to pixels.
The latent operating point is why SD's sequence lengths top out at 4096
(64x64 latent for a 512px image, Figure 7) and why its decoder is a
separate convolutional cost the pixel-based Imagen does not pay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.context import ExecutionContext
from repro.ir.tensor import TensorSpec
from repro.layers.unet import UNet, UNetConfig
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder
from repro.models.text_encoders import CLIP_TEXT, TextEncoder


@dataclass(frozen=True)
class StableDiffusionConfig:
    """SD-1.x-style architecture at a 512px operating point."""

    image_size: int = 512
    latent_downsample: int = 8
    latent_channels: int = 4
    denoising_steps: int = 50
    guidance: bool = True
    """Classifier-free guidance doubles the UNet batch at inference."""
    unet: UNetConfig = UNetConfig(
        in_channels=4,
        model_channels=320,
        channel_mult=(1, 2, 4, 4),
        num_res_blocks=2,
        attention_levels=(0, 1, 2),  # Table I: attn res [4, 2, 1]
        attention_style="transformer",
        head_dim=40,
        text_dim=768,
        text_seq=77,
    )

    @property
    def latent_size(self) -> int:
        return self.image_size // self.latent_downsample

    def at_image_size(self, image_size: int) -> "StableDiffusionConfig":
        """The same architecture asked for a different output size.

        This is the Figure 8/9 sweep: the UNet is resolution-agnostic,
        so only the latent grid changes.
        """
        if image_size % self.latent_downsample:
            raise ValueError(
                f"image size {image_size} not divisible by "
                f"{self.latent_downsample}"
            )
        return replace(self, image_size=image_size)


class StableDiffusion(GenerativeModel):
    """CLIP encoder + latent UNet + VAE decoder."""

    architecture = ModelArchitecture.DIFFUSION_LATENT

    def __init__(
        self, config: StableDiffusionConfig = StableDiffusionConfig()
    ):
        super().__init__(name="stable_diffusion")
        self.config = config
        self.text_encoder = TextEncoder(CLIP_TEXT, name="clip_text_encoder")
        self.unet = UNet(config.unet)
        self.vae_decoder = ConvDecoder(
            latent_channels=config.latent_channels,
            channel_schedule=(512, 512, 256, 128),
            name="vae_decoder",
        )

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        self.text_encoder(ctx, batch)
        size = config.latent_size
        unet_batch = batch * (2 if config.guidance else 1)
        latent = TensorSpec(
            (unet_batch, config.latent_channels, size, size)
        )
        for step in range(config.denoising_steps):
            with ctx.named_scope(f"denoise_{step}"):
                self.unet(ctx, latent)
        decode_latent = TensorSpec(
            (batch, config.latent_channels, size, size)
        )
        self.vae_decoder(ctx, decode_latent)
