"""Text encoders: the conditioning front-end of every TTI/TTV model.

TTI/TTV pipelines are stitched from independently trained components
(Section II); the text encoder is the first.  Stable Diffusion uses a
CLIP text encoder, Imagen/Muse use T5 variants — all are plain
transformer encoder stacks at short sequence lengths, so one class with
presets covers them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.tensor import TensorSpec
from repro.layers.embedding import TokenEmbedding
from repro.layers.transformer import TransformerConfig, TransformerStack


@dataclass(frozen=True)
class TextEncoderConfig:
    """Architecture + tokenization of a text encoder."""

    dim: int
    num_layers: int
    num_heads: int
    max_seq: int
    vocab: int = 32000
    ffn_hidden: int | None = None


CLIP_TEXT = TextEncoderConfig(
    dim=768, num_layers=12, num_heads=12, max_seq=77, vocab=49408
)
CLIP_TEXT_LARGE = TextEncoderConfig(
    dim=1024, num_layers=24, num_heads=16, max_seq=77, vocab=49408
)
T5_LARGE = TextEncoderConfig(
    dim=1024, num_layers=24, num_heads=16, max_seq=128, vocab=32128,
    ffn_hidden=2816,
)
T5_XL = TextEncoderConfig(
    dim=2048, num_layers=24, num_heads=32, max_seq=128, vocab=32128,
    ffn_hidden=5120,
)
T5_XXL = TextEncoderConfig(
    dim=4096, num_layers=24, num_heads=64, max_seq=128, vocab=32128,
    ffn_hidden=10240,
)


class TextEncoder(Module):
    """Transformer text encoder producing (B, seq, dim) conditioning."""

    def __init__(self, config: TextEncoderConfig, name: str | None = None):
        super().__init__(name=name or "text_encoder")
        self.config = config
        self.embedding = TokenEmbedding(config.vocab, config.dim)
        self.stack = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.num_layers,
                num_heads=config.num_heads,
                ffn_hidden=config.ffn_hidden,
                causal=False,
            )
        )

    def forward(
        self, ctx: ExecutionContext, batch: int, seq: int | None = None
    ) -> TensorSpec:
        seq = seq or self.config.max_seq
        if seq > self.config.max_seq:
            raise ValueError(
                f"{self.name}: seq {seq} exceeds max {self.config.max_seq}"
            )
        tokens = self.embedding(ctx, batch, seq)
        return self.stack(ctx, tokens)
