"""Parti: the autoregressive transformer TTI representative.

Parti is an encoder-decoder transformer (80 layers, model dim 4096, 20B
parameters — Table I) that predicts the 32x32 = 1024 image-token grid
one token at a time, conditioned on the encoded prompt.  The decode
loop is exactly the LLM Decode phase of Table III: skinny 1xN queries
against a growing KV cache, which is why its per-call sequence length
ramps linearly in Figure 7 and why Flash Attention helps it less than
diffusion models (Table II: 1.17x).  A ViT-VQGAN decoder renders the
tokens to pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.ops import Gemm
from repro.ir.tensor import TensorSpec
from repro.layers.embedding import TokenEmbedding
from repro.layers.transformer import TransformerConfig, TransformerStack
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder


@dataclass(frozen=True)
class PartiConfig:
    """Parti-20B-style configuration (Table I column)."""

    dim: int = 4096
    encoder_layers: int = 32
    decoder_layers: int = 48
    num_heads: int = 64
    ffn_hidden: int = 16384
    image_grid: int = 32
    vocab: int = 8192
    text_vocab: int = 32000
    text_seq: int = 128
    decode_bucket: int = 32
    use_kv_cache: bool = False
    """Research inference code (the paper profiles public
    implementations) typically re-runs the transformer over the whole
    generated prefix each step instead of caching K/V — which is also
    what Figure 7's per-call sequence-length ramp shows.  Set True for a
    serving-style KV-cached decode."""

    @property
    def image_tokens(self) -> int:
        return self.image_grid * self.image_grid


class Parti(GenerativeModel):
    """Encoder-decoder transformer with autoregressive image decoding."""

    architecture = ModelArchitecture.TRANSFORMER_TTI

    def __init__(self, config: PartiConfig = PartiConfig()):
        super().__init__(name="parti")
        self.config = config
        self.text_embedding = TokenEmbedding(config.text_vocab, config.dim)
        self.encoder = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.encoder_layers,
                num_heads=config.num_heads,
                ffn_hidden=config.ffn_hidden,
            ),
            name="encoder",
        )
        self.image_embedding = TokenEmbedding(config.vocab, config.dim)
        self.decoder = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.decoder_layers,
                num_heads=config.num_heads,
                ffn_hidden=config.ffn_hidden,
                causal=True,
                cross_dim=config.dim,
            ),
            name="decoder",
        )
        self.vqgan_decoder = ConvDecoder(
            latent_channels=256,
            channel_schedule=(512, 256, 256, 128),
            name="vit_vqgan_decoder",
        )

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        prompt = self.text_embedding(ctx, batch, config.text_seq)
        text = self.encoder(ctx, prompt)
        token = TensorSpec((batch, 1, config.dim))
        bucket = max(1, config.decode_bucket)
        with ctx.named_scope("autoregressive_decode"):
            for start in range(0, config.image_tokens, bucket):
                steps = min(bucket, config.image_tokens - start)
                midpoint = start + steps // 2
                with ctx.repeat_scope(steps):
                    if config.use_kv_cache:
                        self.image_embedding(ctx, batch, 1)
                        self.decoder(
                            ctx, token, context=text, past_length=midpoint
                        )
                    else:
                        # Full-prefix recompute: every step reprocesses
                        # the generated sequence so far.
                        prefix_len = max(1, midpoint)
                        self.image_embedding(ctx, batch, prefix_len)
                        prefix = TensorSpec((batch, prefix_len, config.dim))
                        self.decoder(ctx, prefix, context=text)
                    ctx.emit(
                        Gemm(
                            "to_logits",
                            m=batch,
                            n=config.vocab,
                            k=config.dim,
                            b_is_weight=True,
                        )
                    )
        latent = TensorSpec((batch, 256, config.image_grid, config.image_grid))
        self.vqgan_decoder(ctx, latent)
