"""Model-suite registry (the paper's eight workloads, Section III)."""

from __future__ import annotations

from typing import Callable

from repro.models.base import GenerativeModel
from repro.models.imagen import Imagen
from repro.models.llama import Llama
from repro.models.make_a_video import MakeAVideo
from repro.models.muse import Muse
from repro.models.parti import Parti
from repro.models.phenaki import Phenaki
from repro.models.prod_image import ProdImage
from repro.models.stable_diffusion import StableDiffusion

MODEL_SUITE: dict[str, Callable[[], GenerativeModel]] = {
    "llama": Llama,
    "imagen": Imagen,
    "stable_diffusion": StableDiffusion,
    "muse": Muse,
    "parti": Parti,
    "prod_image": ProdImage,
    "make_a_video": MakeAVideo,
    "phenaki": Phenaki,
}

# Display names matching the paper's tables/figures.
DISPLAY_NAMES: dict[str, str] = {
    "llama": "LLaMA",
    "imagen": "Imagen",
    "stable_diffusion": "StableDiffusion",
    "muse": "Muse",
    "parti": "Parti",
    "prod_image": "Prod Image",
    "make_a_video": "MakeAVideo",
    "phenaki": "Phenaki",
}


def _sd_at(image_size: int) -> GenerativeModel:
    from repro.models.stable_diffusion import StableDiffusionConfig

    return StableDiffusion(
        StableDiffusionConfig().at_image_size(image_size)
    )


def _parti_kv_cache() -> GenerativeModel:
    from repro.models.parti import PartiConfig

    return Parti(PartiConfig(use_kv_cache=True))


def _llama_serving() -> GenerativeModel:
    from repro.models.llama import LlamaConfig

    return Llama(
        LlamaConfig(prompt_tokens=512, decode_tokens=512,
                    decode_bucket=32)
    )


MODEL_VARIANTS: dict[str, Callable[[], GenerativeModel]] = {
    # Alternative operating points used by the scaling studies.
    "stable_diffusion@256": lambda: _sd_at(256),
    "stable_diffusion@768": lambda: _sd_at(768),
    "parti@kv_cache": _parti_kv_cache,
    "llama@serving": _llama_serving,
}


def build_model(name: str) -> GenerativeModel:
    """Instantiate a model by registry name.

    Plain names (``"stable_diffusion"``) give the paper's profiled
    configuration; ``name@variant`` forms from :data:`MODEL_VARIANTS`
    give alternative operating points (other image sizes, serving-style
    decode, ...).
    """
    if name in MODEL_SUITE:
        return MODEL_SUITE[name]()
    if name in MODEL_VARIANTS:
        return MODEL_VARIANTS[name]()
    known = sorted([*MODEL_SUITE, *MODEL_VARIANTS])
    raise ValueError(f"unknown model {name!r}; known: {known}")


def suite_names() -> list[str]:
    """Registry names in the paper's presentation order."""
    return list(MODEL_SUITE)


def variant_names() -> list[str]:
    """Names of the alternative operating points."""
    return sorted(MODEL_VARIANTS)
