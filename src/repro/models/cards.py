"""Model cards: auto-generated documentation for the suite.

One markdown card per model — architecture class, pipeline components,
parameters, profiled behaviour — produced from the same objects the
experiments use, so the documentation cannot drift from the code.
``tools/gen_models_md.py`` writes docs/MODELS.md from these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ops import OpCategory
from repro.ir.trace import Trace
from repro.models.base import GenerativeModel
from repro.profiler.breakdown import breakdown


@dataclass(frozen=True)
class ModelCard:
    """Structured facts about one suite model."""

    name: str
    display_name: str
    architecture: str
    parameters: int
    components: tuple[tuple[str, int], ...]
    baseline_time_s: float
    flash_time_s: float
    dominant_op_flash: str
    attention_calls: int
    max_seq_len: int

    @property
    def flash_speedup(self) -> float:
        return self.baseline_time_s / self.flash_time_s

    def to_markdown(self) -> str:
        """Render the card as a markdown section."""
        lines = [
            f"## {self.display_name} (`{self.name}`)",
            "",
            f"*{self.architecture}* — "
            f"{self.parameters/1e9:.2f}B parameters.",
            "",
            "| component | parameters |",
            "|---|---|",
        ]
        for component, params in self.components:
            lines.append(f"| `{component}` | {params/1e6:,.1f}M |")
        lines += [
            "",
            f"Simulated A100 inference: "
            f"{self.baseline_time_s:.2f} s baseline, "
            f"{self.flash_time_s:.2f} s with Flash Attention "
            f"({self.flash_speedup:.2f}x). "
            f"Dominant operator after Flash: "
            f"**{self.dominant_op_flash}**. "
            f"{self.attention_calls} attention calls per inference, "
            f"peak sequence length {self.max_seq_len}.",
            "",
        ]
        return "\n".join(lines)


def build_card(
    name: str,
    display_name: str,
    model: GenerativeModel,
    baseline_trace: Trace,
    flash_trace: Trace,
) -> ModelCard:
    """Assemble a card from a model and its two profiles."""
    from repro.profiler.seqlen import sequence_length_distribution

    flash_breakdown = breakdown(flash_trace)
    distribution = sequence_length_distribution(baseline_trace)
    dominant: OpCategory = flash_breakdown.dominant_category()
    return ModelCard(
        name=name,
        display_name=display_name,
        architecture=model.architecture.value,
        parameters=model.param_count(),
        components=tuple(
            (key, child.param_count())
            for key, child in model.named_children()
        ),
        baseline_time_s=baseline_trace.total_time_s,
        flash_time_s=flash_trace.total_time_s,
        dominant_op_flash=dominant.value,
        attention_calls=len(baseline_trace.attention_anchors()),
        max_seq_len=distribution.max_length,
    )


def suite_cards() -> list[ModelCard]:
    """Cards for the whole suite (uses the cached profiles)."""
    from repro.experiments.suite_cache import all_profiles, model_instance
    from repro.models.registry import DISPLAY_NAMES

    cards = []
    for name, (baseline, flash) in all_profiles().items():
        cards.append(
            build_card(
                name,
                DISPLAY_NAMES[name],
                model_instance(name),
                baseline.trace,
                flash.trace,
            )
        )
    return cards
