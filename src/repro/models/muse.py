"""Muse: the parallel-decoding transformer TTI representative.

Muse is a decoder-only masked transformer (48 layers, model dim 2048 —
Table I) that predicts all image tokens of a 16x16 grid in a fixed
number of parallel refinement steps instead of autoregressively; a
second, smaller transformer refines a 64x64 super-resolution token
grid, and a VQGAN decoder maps tokens to pixels.  Its constant sequence
length per step is the flat line of Figure 7, and its modest matrix
sizes are why it sees the smallest Flash-Attention benefit of the TTI
models (Table II: 1.11x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.ops import Gemm
from repro.ir.tensor import TensorSpec
from repro.layers.embedding import TokenEmbedding
from repro.layers.transformer import TransformerConfig, TransformerStack
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder
from repro.models.text_encoders import T5_XL, TextEncoder, TextEncoderConfig


@dataclass(frozen=True)
class MuseConfig:
    """Muse-3B-style configuration."""

    dim: int = 2048
    num_layers: int = 48
    num_heads: int = 8
    base_grid: int = 16
    base_steps: int = 24
    sr_dim: int = 1024
    sr_layers: int = 16
    sr_heads: int = 8
    sr_grid: int = 64
    sr_steps: int = 8
    vocab: int = 8192
    text_encoder: TextEncoderConfig = T5_XL
    text_seq: int = 128

    @property
    def base_tokens(self) -> int:
        return self.base_grid * self.base_grid

    @property
    def sr_tokens(self) -> int:
        return self.sr_grid * self.sr_grid


class Muse(GenerativeModel):
    """T5 encoder + masked parallel-decode transformers + VQGAN decoder."""

    architecture = ModelArchitecture.TRANSFORMER_TTI

    def __init__(self, config: MuseConfig = MuseConfig()):
        super().__init__(name="muse")
        self.config = config
        self.text_encoder = TextEncoder(config.text_encoder, name="t5_encoder")
        self.token_embedding = TokenEmbedding(config.vocab, config.dim)
        self.base_transformer = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.num_layers,
                num_heads=config.num_heads,
                cross_dim=config.text_encoder.dim,
            ),
            name="base_transformer",
        )
        self.sr_token_embedding = TokenEmbedding(config.vocab, config.sr_dim)
        self.sr_transformer = TransformerStack(
            TransformerConfig(
                dim=config.sr_dim,
                num_layers=config.sr_layers,
                num_heads=config.sr_heads,
                cross_dim=config.text_encoder.dim,
            ),
            name="sr_transformer",
        )
        self.vqgan_decoder = ConvDecoder(
            latent_channels=256,
            channel_schedule=(256, 256, 128, 128, 64),
            name="vqgan_decoder",
        )

    def _logits(
        self, ctx: ExecutionContext, rows: int, dim: int
    ) -> None:
        ctx.emit(
            Gemm("to_logits", m=rows, n=self.config.vocab, k=dim,
                 b_is_weight=True)
        )

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        text = self.text_encoder(ctx, batch, seq=config.text_seq)
        # Base grid: every refinement step re-processes the full token
        # grid (parallel decoding) — constant sequence length.
        tokens = self.token_embedding(ctx, batch, config.base_tokens)
        for step in range(config.base_steps):
            with ctx.named_scope(f"base_step_{step}"):
                self.base_transformer(ctx, tokens, context=text)
                self._logits(ctx, batch * config.base_tokens, config.dim)
        sr_tokens = self.sr_token_embedding(ctx, batch, config.sr_tokens)
        for step in range(config.sr_steps):
            with ctx.named_scope(f"sr_step_{step}"):
                self.sr_transformer(ctx, sr_tokens, context=text)
                self._logits(ctx, batch * config.sr_tokens, config.sr_dim)
        latent = TensorSpec((batch, 256, config.sr_grid, config.sr_grid))
        self.vqgan_decoder(ctx, latent)
        del tokens
