"""Phenaki: the transformer-based text-to-video representative.

Phenaki compresses video into discrete spatio-temporal tokens with a
C-ViViT encoder-decoder and generates those tokens with a masked
bidirectional transformer conditioned on text (Section II-B).  From a
systems view it behaves like a transformer TTI model whose token grid
includes a temporal axis: parallel refinement over a ~1.5k-token
sequence, then a convolution+transformer detokenizer back to frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.ops import Gemm
from repro.ir.tensor import TensorSpec
from repro.layers.embedding import TokenEmbedding
from repro.layers.transformer import TransformerConfig, TransformerStack
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.decoders import ConvDecoder
from repro.models.text_encoders import T5_XL, TextEncoder, TextEncoderConfig


@dataclass(frozen=True)
class PhenakiConfig:
    """Phenaki-style configuration: 11 frames at 128px."""

    frames: int = 11
    frame_size: int = 128
    patch_grid: int = 16  # 16x16 spatial tokens per frame
    dim: int = 2048
    num_layers: int = 24
    num_heads: int = 8
    refine_steps: int = 24
    vocab: int = 8192
    text_encoder: TextEncoderConfig = T5_XL
    text_seq: int = 128
    detokenizer_layers: int = 8

    @property
    def video_tokens(self) -> int:
        # C-ViViT tokenizes the first frame fully and subsequent frames
        # in temporal groups of 2.
        spatial = self.patch_grid * self.patch_grid
        temporal_slots = 1 + (self.frames - 1) // 2
        return spatial * temporal_slots


class Phenaki(GenerativeModel):
    """T5 encoder + masked video-token transformer + C-ViViT decoder."""

    architecture = ModelArchitecture.TTV_TRANSFORMER

    def __init__(self, config: PhenakiConfig = PhenakiConfig()):
        super().__init__(name="phenaki")
        self.config = config
        self.text_encoder = TextEncoder(config.text_encoder, name="t5_encoder")
        self.token_embedding = TokenEmbedding(config.vocab, config.dim)
        self.transformer = TransformerStack(
            TransformerConfig(
                dim=config.dim,
                num_layers=config.num_layers,
                num_heads=config.num_heads,
                cross_dim=config.text_encoder.dim,
            ),
            name="maskgit_transformer",
        )
        # C-ViViT decoder: a small transformer over tokens, then a conv
        # decoder applied per frame.
        self.detokenizer_transformer = TransformerStack(
            TransformerConfig(
                dim=512, num_layers=config.detokenizer_layers, num_heads=8
            ),
            name="cvivit_decoder_transformer",
        )
        self.detokenizer_conv = ConvDecoder(
            latent_channels=512,
            channel_schedule=(256, 128, 64),
            name="cvivit_decoder_conv",
        )

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        text = self.text_encoder(ctx, batch, seq=config.text_seq)
        tokens = self.token_embedding(ctx, batch, config.video_tokens)
        for step in range(config.refine_steps):
            with ctx.named_scope(f"refine_step_{step}"):
                self.transformer(ctx, tokens, context=text)
                ctx.emit(
                    Gemm(
                        "to_logits",
                        m=batch * config.video_tokens,
                        n=config.vocab,
                        k=config.dim,
                        b_is_weight=True,
                    )
                )
        decoder_tokens = TensorSpec((batch, config.video_tokens, 512))
        self.detokenizer_transformer(ctx, decoder_tokens)
        grid = config.patch_grid
        frame_latents = TensorSpec((batch * config.frames, 512, grid, grid))
        self.detokenizer_conv(ctx, frame_latents)
