"""Image decoders: latent -> pixel back-ends.

Latent diffusion models pay for their cheap denoising loop with a
VAE/VQGAN decoder that upsamples the latent back to pixel space
(Section II-A); transformer TTI models decode their token grid through
a VQGAN.  Both are convolutional upsampling stacks, so they contribute
to the Convolution share of the Figure 6 breakdowns.
"""

from __future__ import annotations

from repro.ir.context import ExecutionContext
from repro.ir.module import Module
from repro.ir.ops import Elementwise
from repro.ir.tensor import TensorSpec
from repro.layers.conv import Conv2dLayer, Upsample
from repro.layers.norm import GroupNormLayer
from repro.layers.resnet import ResnetBlock2D


class ConvDecoder(Module):
    """Generic convolutional decoder: latent grid -> full-res image.

    Each upsampling stage doubles resolution; ``channel_schedule`` gives
    the width at each stage from deepest (latent) to shallowest (pixel).
    Covers both the SD VAE decoder and VQGAN decoders.
    """

    def __init__(
        self,
        latent_channels: int,
        channel_schedule: tuple[int, ...] = (512, 512, 256, 128),
        blocks_per_stage: int = 2,
        out_channels: int = 3,
        name: str | None = None,
    ):
        super().__init__(name=name or "conv_decoder")
        if not channel_schedule:
            raise ValueError("channel schedule must be non-empty")
        self.latent_channels = latent_channels
        self.channel_schedule = channel_schedule
        self.blocks_per_stage = blocks_per_stage
        self.conv_in = Conv2dLayer(
            latent_channels, channel_schedule[0], name="conv_in"
        )
        self.stages: list[tuple[list[ResnetBlock2D], Upsample | None]] = []
        in_ch = channel_schedule[0]
        for stage, out_ch in enumerate(channel_schedule):
            blocks = []
            for index in range(blocks_per_stage):
                blocks.append(
                    self.add_module(
                        f"stage{stage}_block{index}",
                        ResnetBlock2D(in_ch, out_ch),
                    )
                )
                in_ch = out_ch
            upsample = None
            if stage < len(channel_schedule) - 1:
                upsample = self.add_module(
                    f"stage{stage}_upsample", Upsample(out_ch)
                )
            self.stages.append((blocks, upsample))
        self.out_norm = GroupNormLayer(channel_schedule[-1])
        self.conv_out = Conv2dLayer(
            channel_schedule[-1], out_channels, name="conv_out"
        )

    @property
    def upsample_factor(self) -> int:
        return 2 ** (len(self.channel_schedule) - 1)

    def forward(self, ctx: ExecutionContext, latent: TensorSpec) -> TensorSpec:
        if latent.rank != 4 or latent.shape[1] != self.latent_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.latent_channels}, H, W), "
                f"got {latent.shape}"
            )
        x = self.conv_in(ctx, latent)
        for blocks, upsample in self.stages:
            for block in blocks:
                x = block(ctx, x)
            if upsample is not None:
                x = upsample(ctx, x)
        self.out_norm(ctx, x)
        ctx.emit(
            Elementwise("silu", numel=x.numel, inputs=1, flops_per_element=5.0)
        )
        return self.conv_out(ctx, x)
