"""Imagen: the pixel-space diffusion representative of the suite.

Pipeline (Figure 2, top row): frozen T5 text encoder -> 64x64 base
diffusion UNet -> two super-resolution diffusion UNets upsampling to
mid- and full resolution.  Because the denoising happens in pixel space,
the SR networks are themselves UNets that mostly *drop attention* at
high resolution (memory-prohibitive, Section V-B) and replace it with
convolution — which is why pixel-based models spend ~15% more time in
Convolution than latent-based ones (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.context import ExecutionContext
from repro.ir.tensor import TensorSpec
from repro.layers.unet import UNet, UNetConfig
from repro.models.base import GenerativeModel, ModelArchitecture
from repro.models.text_encoders import T5_XL, TextEncoder, TextEncoderConfig


@dataclass(frozen=True)
class ImagenConfig:
    """Imagen-style cascade: 64 -> 256 -> 1024."""

    base_size: int = 64
    sr1_size: int = 256
    sr2_size: int = 1024
    base_steps: int = 64
    sr1_steps: int = 8
    sr2_steps: int = 4
    text_encoder: TextEncoderConfig = T5_XL
    text_seq: int = 128
    base_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=448,
        channel_mult=(1, 2, 3, 4),
        num_res_blocks=3,
        attention_levels=(1, 2, 3),  # attn res [32, 16, 8] on a 64px input
        attention_style="transformer",
        head_dim=32,
        text_dim=2048,
        text_seq=128,
        transformer_depth=3,
    )
    sr1_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=128,
        channel_mult=(1, 2, 4, 8),
        num_res_blocks=2,
        attention_levels=(3,),  # cross-attention only at the bottleneck
        attention_style="block",
        head_dim=64,
        text_dim=2048,
        text_seq=128,
    )
    sr2_unet: UNetConfig = UNetConfig(
        in_channels=3,
        model_channels=64,
        channel_mult=(1, 2, 4, 8),
        num_res_blocks=2,
        attention_levels=(),  # no attention at all at 1024px
        attention_style="none",
        head_dim=64,
        text_dim=2048,
        text_seq=128,
    )


class Imagen(GenerativeModel):
    """T5 encoder + pixel-space base UNet + two SR UNets."""

    architecture = ModelArchitecture.DIFFUSION_PIXEL

    def __init__(self, config: ImagenConfig = ImagenConfig()):
        super().__init__(name="imagen")
        self.config = config
        self.text_encoder = TextEncoder(
            config.text_encoder, name="t5_encoder"
        )
        self.base_unet = UNet(config.base_unet, name="base_unet")
        self.sr1_unet = UNet(config.sr1_unet, name="sr1_unet")
        self.sr2_unet = UNet(config.sr2_unet, name="sr2_unet")

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        config = self.config
        self.text_encoder(ctx, batch, seq=config.text_seq)
        stages = (
            (self.base_unet, config.base_size, config.base_steps),
            (self.sr1_unet, config.sr1_size, config.sr1_steps),
            (self.sr2_unet, config.sr2_size, config.sr2_steps),
        )
        for unet, size, steps in stages:
            latent = TensorSpec(
                (batch, unet.config.in_channels, size, size)
            )
            with ctx.named_scope(f"stage_{size}px"):
                for step in range(steps):
                    with ctx.named_scope(f"denoise_{step}"):
                        unet(ctx, latent)
