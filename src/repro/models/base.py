"""Model-suite base class and taxonomy labels."""

from __future__ import annotations

import enum

from repro.ir.context import ExecutionContext
from repro.ir.module import Module


class ModelArchitecture(enum.Enum):
    """The paper's taxonomy (Section II / Figure 2)."""

    LLM = "llm"
    DIFFUSION_PIXEL = "diffusion-pixel"
    DIFFUSION_LATENT = "diffusion-latent"
    TRANSFORMER_TTI = "transformer-tti"
    TTV_DIFFUSION = "ttv-diffusion"
    TTV_TRANSFORMER = "ttv-transformer"

    @property
    def is_diffusion(self) -> bool:
        return self in (
            ModelArchitecture.DIFFUSION_PIXEL,
            ModelArchitecture.DIFFUSION_LATENT,
            ModelArchitecture.TTV_DIFFUSION,
        )

    @property
    def is_transformer_generator(self) -> bool:
        return self in (
            ModelArchitecture.TRANSFORMER_TTI,
            ModelArchitecture.TTV_TRANSFORMER,
        )

    @property
    def is_video(self) -> bool:
        return self in (
            ModelArchitecture.TTV_DIFFUSION,
            ModelArchitecture.TTV_TRANSFORMER,
        )


class GenerativeModel(Module):
    """A complete inference pipeline from the model suite.

    Subclasses set :attr:`architecture` and implement
    :meth:`run_inference`, which emits the *entire* forward pipeline of
    Figure 2 — text encoding, the generator (denoising loop or token
    decoding), and pixel decoding — into the execution context.
    """

    architecture: ModelArchitecture

    def run_inference(self, ctx: ExecutionContext, batch: int = 1) -> None:
        """Emit one complete inference of the pipeline into ``ctx``."""
        raise NotImplementedError

    def forward(self, ctx: ExecutionContext, batch: int = 1) -> None:
        self.run_inference(ctx, batch=batch)

    def describe(self) -> dict[str, object]:
        """Taxonomy row for this model (Table I analog)."""
        return {
            "name": self.name,
            "architecture": self.architecture.value,
            "parameters": self.param_count(),
        }
