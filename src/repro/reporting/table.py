"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value: object) -> str:
    """Render one table cell (floats get magnitude-aware formatting)."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e15 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with aligned columns."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render (x, y1, y2, ...) series as a table — a figure in rows."""
    return render_table([x_label, *y_labels], points, title=title)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_flops(flops: float) -> str:
    """Human-readable FLOP count."""
    value = float(flops)
    for unit in ("FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP", "PFLOP"):
        if abs(value) < 1000.0 or unit == "PFLOP":
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")
