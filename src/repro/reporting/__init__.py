"""Text rendering of tables and figure series."""

from repro.reporting.table import (
    format_bytes,
    format_flops,
    format_value,
    render_series,
    render_table,
)

__all__ = [
    "format_bytes",
    "format_flops",
    "format_value",
    "render_series",
    "render_table",
]
